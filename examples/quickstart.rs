//! Quickstart: relations → join → join graph → pebbling.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Shows the full pipeline of the paper's model on a tiny equijoin: build
//! two single-column relations, join them, extract the join graph, and
//! pebble it perfectly (Theorem 3.2) in linear time (Theorem 4.1).

use join_predicates::prelude::*;
use join_predicates::relalg::algorithms;

fn main() {
    // Two single-column multiset relations (§2 of the paper).
    let r = Relation::from_ints("R", [1, 1, 2, 5, 7, 7, 7]);
    let s = Relation::from_ints("S", [1, 2, 2, 7, 9]);
    println!("{r} ⋈ {s} under equality\n");

    // Join them with a real algorithm — hash join — and sanity-check
    // against sort-merge.
    let pairs = algorithms::equi::hash_join(&r, &s);
    assert_eq!(pairs, algorithms::equi::sort_merge(&r, &s));
    println!("join result ({} tuples): {pairs:?}\n", pairs.len());

    // The join graph: one vertex per tuple, one edge per joining pair.
    let g = join_graph(&r, &s, &Equality).unwrap();
    assert_eq!(g.edges(), &pairs[..]);
    println!("join graph: {g}");
    println!(
        "equijoin join graphs are unions of complete bipartite graphs: {}\n",
        join_predicates::graph::properties::is_equijoin_graph(&g)
    );

    // Pebble it. Equijoins pebble *perfectly* — effective cost π equals
    // the output size m — and the scheme is found in linear time.
    let scheme = pebble_equijoin(&g).expect("equijoin graph");
    scheme.validate(&g).expect("scheme is valid");
    println!("pebbling scheme: {scheme}");
    println!(
        "effective cost π = {} = m = {} (perfect, Theorem 3.2)",
        scheme.effective_cost(&g),
        g.edge_count()
    );
    println!(
        "total cost π̂ = {} = m + β₀ = {} + {}",
        scheme.cost(),
        g.edge_count(),
        betti_number(&g)
    );

    // Walk the first few configurations.
    println!("\nfirst configurations (pebble positions):");
    for c in scheme.configs().iter().take(6) {
        println!("  {c}");
    }

    // Compare with a predicate that is NOT an equijoin: the same data as
    // a band join produces a graph that may not pebble perfectly.
    let band = join_graph(&r, &s, &join_predicates::relalg::predicate::Band(1)).unwrap();
    let (band, _, _) = band.strip_isolated();
    let dfs = dfs_partition::pebble_dfs_partition(&band).unwrap();
    println!(
        "\nband-join graph (|r−s| ≤ 1): m = {}, 1.25-approximation π = {} (ratio {:.3})",
        band.edge_count(),
        dfs.effective_cost(&band),
        dfs.effective_cost(&band) as f64 / band.edge_count() as f64
    );
}
