//! A guided tour through every theorem of the paper, executed.
//!
//! ```text
//! cargo run --example complexity_tour --release
//! ```
//!
//! Walks §2 (the pebble game and its TSP view), §3 (the combinatorial
//! separation) and §4 (the computational separation) with live numbers.

use join_predicates::graph::{generators, hamilton, line_graph};
use join_predicates::pebble::approx::{pebble_dfs_partition, pebble_equijoin};
use join_predicates::pebble::{bounds, exact, families, tsp::Tsp12};

fn main() {
    println!("═══ §2: the pebble game ═══\n");
    let g = generators::spider(4);
    println!("take G_4 (Figure 1): {g}");
    let m = g.edge_count();
    println!(
        "Lemma 2.1/2.3 bounds: {} ≤ π̂ ≤ {}, {} ≤ π ≤ {}",
        m + 1,
        2 * m,
        m,
        2 * m - 1
    );
    let pi = exact::optimal_effective_cost(&g).unwrap();
    println!("exact: π(G_4) = {pi}\n");

    println!("§2.2: pebbling is TSP(1,2) over the line graph:");
    let lg = line_graph(&g);
    let (tour, jumps) = exact::min_jump_tour(&lg);
    let tsp = Tsp12::from_join_graph(&g);
    println!(
        "  optimal tour {tour:?} has {jumps} jumps, cost {} = π − 1 ✓",
        tsp.tour_cost(&tour)
    );
    println!(
        "  Prop 2.1: L(G_4) traceable? {} — so π > m ({} > {})\n",
        hamilton::has_hamiltonian_path(&lg),
        pi,
        m
    );

    println!("═══ §3: combinatorial separation ═══\n");
    println!("equijoins (Theorem 3.2): every component is complete bipartite;");
    let kg = generators::complete_bipartite(4, 6);
    let s = pebble_equijoin(&kg).unwrap();
    println!(
        "  K_4,6 pebbles perfectly: π = {} = m = {}\n",
        s.effective_cost(&kg),
        kg.edge_count()
    );

    println!("general bipartite graphs (Theorem 3.1): π ≤ 1.25m, constructively;");
    let rg = generators::random_connected_bipartite(30, 30, 100, 5);
    let s = pebble_dfs_partition(&rg).unwrap();
    println!(
        "  random m=100 graph: construction gives π = {} (≤ ⌈1.25m⌉ = 125)\n",
        s.effective_cost(&rg)
    );

    println!("the worst case exists and is a *join graph* (Theorems 3.3, L3.3, L3.4):");
    for n in [4u64, 6, 8] {
        println!(
            "  G_{n}: m = {}, π = {} = 1.25m − 1 (pendant certificate: {})",
            2 * n,
            families::spider_optimal_cost(n),
            bounds::pendant_lower_bound(&generators::spider(n as u32))
        );
    }
    println!("  … realizable by set-containment (Lemma 3.3) and rectangles (Lemma 3.4),");
    println!("  … never by an equijoin (not complete bipartite).\n");

    println!("═══ §4: computational separation ═══\n");
    println!("Theorem 4.1: equijoin pebbling is linear-time (see example `quickstart`,");
    println!("experiment E10 for the scaling table).\n");

    println!("Theorem 4.2: PEBBLE(D) is NP-complete. Exact cost of the decision:");
    for m in [12usize, 16, 20] {
        let g = generators::random_connected_bipartite(5, 5, m, 42 + m as u64);
        let t0 = std::time::Instant::now();
        let pi = exact::optimal_effective_cost(&g).unwrap();
        println!(
            "  m = {m}: π = {pi}, Held–Karp took {:.1} ms (doubling per edge)",
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    println!("\nTheorem 4.4: PEBBLE is MAX-SNP-complete — no PTAS unless P = NP;");
    println!("the constant-factor world is the best possible: 1.25 constructive here,");
    println!("7/6 known (Papadimitriou–Yannakakis), 1 + ε impossible for small ε.");
    println!("(Run experiments E12/E13 for the verified L-reduction inequalities.)");
}
