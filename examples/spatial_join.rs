//! Spatial-overlap joins: filter-and-refine algorithms, the worst-case
//! join graph of Lemma 3.4, and what it costs to pebble.
//!
//! ```text
//! cargo run --example spatial_join --release
//! ```

use join_predicates::pebble::approx::{pebble_dfs_partition, pebble_euler_trails};
use join_predicates::pebble::{bounds, exact};
use join_predicates::relalg::{algorithms, realize, spatial_graph, workload};
use std::time::Instant;

fn main() {
    // A realistic workload: two sets of uniformly scattered rectangles.
    let r = workload::uniform_rects(4_000, 30_000, 120, 1);
    let s = workload::uniform_rects(4_000, 30_000, 120, 2);
    println!("spatial workload: {r} ⋈ {s} under overlap\n");

    // Three real spatial join algorithms, cross-checked.
    let t0 = Instant::now();
    let sweep = algorithms::spatial::sweep(&r, &s);
    let t_sweep = t0.elapsed();
    let t0 = Instant::now();
    let pbsm = algorithms::spatial::pbsm(&r, &s);
    let t_pbsm = t0.elapsed();
    let t0 = Instant::now();
    let rtree = algorithms::spatial::rtree(&r, &s);
    let t_rtree = t0.elapsed();
    assert_eq!(sweep, pbsm);
    assert_eq!(sweep, rtree);
    println!(
        "output {} pairs — sweep {:.1} ms | PBSM grid {:.1} ms | R-tree {:.1} ms\n",
        sweep.len(),
        t_sweep.as_secs_f64() * 1e3,
        t_pbsm.as_secs_f64() * 1e3,
        t_rtree.as_secs_f64() * 1e3,
    );

    // The pebble-game view: how hard is this join graph?
    let g = spatial_graph(&r, &s).unwrap();
    let (g, _, _) = g.strip_isolated();
    let m = g.edge_count();
    let scheme = pebble_euler_trails(&g).unwrap();
    println!(
        "join graph: m = {m}, β₀ = {}, linear-time pebbling π = {} (ratio {:.4}, lower bound ratio {:.4})\n",
        join_predicates::graph::betti_number(&g),
        scheme.effective_cost(&g),
        scheme.effective_cost(&g) as f64 / m as f64,
        bounds::best_lower_bound(&g) as f64 / m as f64,
    );

    // Lemma 3.4: spatial joins can produce the *worst-case* family G_n —
    // with plain rectangles. No equijoin can produce this graph.
    let (wr, ws) = realize::spatial_spider_instance(8);
    let wg = spatial_graph(&wr, &ws).unwrap();
    let m = wg.edge_count();
    println!(
        "Lemma 3.4: G_8 realized as rectangles ({} × {} rects)",
        wr.len(),
        ws.len()
    );
    println!(
        "  is an equijoin graph? {}",
        join_predicates::graph::properties::is_equijoin_graph(&wg)
    );
    let pi = exact::optimal_effective_cost(&wg).unwrap();
    println!("  exact optimal π = {pi} = 1.25·m − 1 = {}", 5 * m / 4 - 1);
    let dfs = pebble_dfs_partition(&wg).unwrap();
    println!(
        "  Theorem 3.1 construction achieves π = {} (guarantee ≤ ⌈1.25m⌉ = {})",
        dfs.effective_cost(&wg),
        (5 * m).div_ceil(4),
    );
}
