//! The §4 L-reductions, end to end on one concrete instance.
//!
//! ```text
//! cargo run --example reductions_demo --release
//! ```
//!
//! Builds a TSP-4(1,2) instance, reduces it to TSP-3(1,2) with the
//! diamond gadget (Theorem 4.3), reduces *that* to a PEBBLE instance via
//! the incidence graph (Theorem 4.4), and carries an optimal solution
//! back out through both `g` maps, checking the L-reduction inequalities
//! at each step.

use join_predicates::graph::generators;
use join_predicates::pebble::exact::{self, min_jump_tour};
use join_predicates::pebble::reductions::{diamond::Diamond, tsp3_to_pebble, tsp4_to_tsp3};
use join_predicates::pebble::tsp::Tsp12;

fn main() {
    // The gadget first (Figure 2's role).
    let d = Diamond::new();
    println!("diamond gadget: 9 nodes, corners a,b,c,d;");
    println!("  Hamiltonian path a→c: {:?}", d.corner_path(0, 2));
    println!(
        "  no two disjoint corner-to-corner paths cover it: {}\n",
        d.no_two_disjoint_corner_paths_cover()
    );

    // A TSP-4(1,2) instance with exactly one degree-4 node (so the
    // reduced instance stays within the exact solver's reach).
    let ones = (0..200u64)
        .map(|seed| generators::random_bounded_degree(5, 4, 7, seed))
        .find(|g| {
            g.is_connected() && (0..g.vertex_count()).filter(|&v| g.degree(v) == 4).count() == 1
        })
        .expect("such an instance exists");
    let g = Tsp12::new(ones);
    let (g_tour, gj) = min_jump_tour(g.ones());
    let opt_g = g.n() - 1 + gj;
    println!(
        "TSP-4(1,2) instance G: {} nodes, {} weight-1 edges, OPT = {opt_g}",
        g.n(),
        g.ones().edge_count()
    );

    // Theorem 4.3: G → H.
    let red43 = tsp4_to_tsp3::reduce(&g);
    println!(
        "f(G) = H: {} nodes, max degree {} (≤ 3 ✓)",
        red43.h().n(),
        red43.h().ones().max_degree()
    );
    let (h_tour, hj) = min_jump_tour(red43.h().ones());
    let opt_h = red43.h().n() - 1 + hj;
    println!("OPT(H) = {opt_h} ≤ α·OPT(G) = {}·{opt_g} ✓", red43.alpha());
    let fwd = red43.forward_tour(&g_tour, &g);
    println!(
        "forward tour of H from optimal G tour: cost {} (jumps preserved: {})",
        red43.h().tour_cost(&fwd),
        red43.h().tour_jumps(&fwd) == gj
    );
    let back = red43.back_tour(&h_tour);
    let cost_back = g.tour_cost(&back);
    println!(
        "g(optimal H tour) costs {cost_back}; β = 1 check: {} ≤ {} ✓\n",
        cost_back - opt_g,
        red43.h().tour_cost(&h_tour) - opt_h
    );

    // Theorem 4.4: H → PEBBLE (H has degree ≤ 3 by construction, but its
    // incidence graph is large; demo the reduction on G's core instead if
    // needed — here we reduce a fresh TSP-3 instance of solvable size).
    let ones3 = generators::random_bounded_degree(6, 3, 8, 13);
    let g3 = Tsp12::new(ones3);
    assert!(g3.ones().is_connected());
    let red44 = tsp3_to_pebble::reduce(&g3);
    let b = red44.b();
    println!(
        "TSP-3(1,2) instance: {} nodes; f gives PEBBLE instance B = incidence graph: {b}",
        g3.n()
    );
    let (t3, j3) = min_jump_tour(g3.ones());
    let opt_g3 = g3.n() - 1 + j3;
    let opt_b = exact::optimal_effective_cost(b).unwrap();
    println!("OPT_tsp(G) = {opt_g3}; optimal pebbling π(B) = {opt_b} (α = 3 regime)");
    let scheme = red44.forward_scheme(&t3).unwrap();
    println!(
        "forward pebbling from the optimal tour: π = {} with {} jumps (= tour jumps {j3})",
        scheme.effective_cost(b),
        scheme.jumps(b)
    );
    let tour_back = red44.back_tour(&exact::optimal_scheme(b).unwrap());
    println!(
        "g(optimal pebbling) is a G tour of cost {} (OPT = {opt_g3}); β = 1 check: {} ≤ {}",
        g3.tour_cost(&tour_back),
        g3.tour_cost(&tour_back) - opt_g3,
        0,
    );
}
