//! Set-containment joins: index vs signature algorithms, and the
//! universality of Lemma 3.3 — *any* bipartite graph is a containment
//! join graph, which is why these joins inherit the general worst case.
//!
//! ```text
//! cargo run --example set_containment --release
//! ```

use join_predicates::graph::generators;
use join_predicates::pebble::exact;
use join_predicates::relalg::{algorithms, containment_graph, realize, workload};
use std::time::Instant;

fn main() {
    // A workload with planted containments (random sets almost never
    // contain one another, so the rate is a parameter).
    let (r, s) = workload::set_workload(2_000, 1_500, 5_000, 3..=8, 10..=24, 0.35, 9);
    println!("containment workload: {r} ⋈ {s} under r.A ⊆ s.B\n");

    let t0 = Instant::now();
    let inv = algorithms::containment::inverted_index(&r, &s);
    let t_inv = t0.elapsed();
    let t0 = Instant::now();
    let sig = algorithms::containment::signature(&r, &s);
    let t_sig = t0.elapsed();
    assert_eq!(inv, sig);
    println!(
        "output {} pairs — inverted index {:.1} ms | signature filter {:.1} ms\n",
        inv.len(),
        t_inv.as_secs_f64() * 1e3,
        t_sig.as_secs_f64() * 1e3,
    );

    // Lemma 3.3 in action: pick ANY bipartite graph — here the paper's
    // worst-case spider G_10 and a random graph — and build a containment
    // instance whose join graph is exactly that graph.
    for (name, g0) in [
        ("G_10 (Figure 1 family)".to_string(), generators::spider(10)),
        (
            "random bipartite".to_string(),
            generators::random_bipartite(9, 9, 0.3, 4),
        ),
    ] {
        let (cr, cs) = realize::set_containment_instance(&g0);
        let rebuilt = containment_graph(&cr, &cs).unwrap();
        println!(
            "Lemma 3.3 on {name}: join graph rebuilt exactly: {}",
            rebuilt == g0
        );
    }

    // Consequence: containment joins hit the 1.25m − 1 pebbling worst
    // case that equijoins can never reach.
    let g = generators::spider(8);
    let (cr, cs) = realize::set_containment_instance(&g);
    let jg = containment_graph(&cr, &cs).unwrap();
    let m = jg.edge_count();
    let pi = exact::optimal_effective_cost(&jg).unwrap();
    println!(
        "\npebbling the containment-realized G_8: optimal π = {pi} vs m = {m} \
         (ratio {:.3}; equijoins are always 1.0)",
        pi as f64 / m as f64
    );
}
