//! §5 in practice: fragment a join for parallel execution, then schedule
//! its page fetches — the two derived problems the paper closes with.
//!
//! ```text
//! cargo run --example fragment_and_schedule --release
//! ```

use join_predicates::graph::{generators, quotient};
use join_predicates::pebble::fragmentation::{
    balanced_capacity, component_pack, connected_lower_bound, local_search,
};
use join_predicates::pebble::paging::{page_fetches, schedule_page_fetches, PageLayout};
use join_predicates::relalg::predicate::Equality;
use join_predicates::relalg::{equijoin_graph, parallel, realize, workload};

fn main() {
    // ----- fragmenting an equijoin for parallelism (§5) -----
    let (r, s) = workload::zipf_equijoin(600, 600, 200, 0.6, 99);
    let g = equijoin_graph(&r, &s).unwrap();
    println!("equijoin workload: m = {} result pairs", g.edge_count());

    let (p, q) = (4u32, 4u32);
    let cap_l = balanced_capacity(g.left_count() as usize, p) + 8;
    let cap_r = balanced_capacity(g.right_count() as usize, q) + 8;
    let mapping = local_search(&g, component_pack(&g, p, q, cap_l, cap_r), cap_l, cap_r, 3);
    println!(
        "component packing into a {p}×{q} grid schedules {} sub-joins (naive grid: {})",
        mapping.cost(&g),
        p * q
    );

    // execute the fragmented plan on scoped threads and check the result
    let pairs =
        parallel::fragmented_join(&r, &s, &Equality, &mapping.left, p, &mapping.right, q, 4);
    assert_eq!(pairs, g.edges().to_vec());
    println!("parallel fragmented execution matches the sequential join ✓");

    // the quotient view: investigated pairs are the fragment graph's edges
    let fragment_graph = quotient(&g, &mapping.left, p, &mapping.right, q);
    assert_eq!(fragment_graph.edge_count(), mapping.cost(&g));
    println!(
        "fragment quotient graph has exactly those {} edges\n",
        fragment_graph.edge_count()
    );

    // the connected worst case cannot be fragmented away
    let worst = generators::spider(32);
    let capw_l = balanced_capacity(worst.left_count() as usize, p);
    let capw_r = balanced_capacity(worst.right_count() as usize, q);
    let wm = component_pack(&worst, p, q, capw_l, capw_r);
    println!(
        "G_32 (containment/spatial-only, connected): packing needs {} sub-joins, \
         provable minimum ≥ {} (equijoins above needed {})",
        wm.cost(&worst),
        connected_lower_bound(&worst, capw_l, capw_r),
        4
    );

    // ----- page-fetch scheduling (the model's §2 ancestry) -----
    println!("\npage-fetch scheduling with a two-page buffer:");
    let (wr, ws) = realize::spatial_spider_instance(32);
    let wg = join_predicates::relalg::spatial_graph(&wr, &ws).unwrap();
    for cap in [1usize, 2, 4] {
        let layout =
            PageLayout::sequential(wg.left_count() as usize, wg.right_count() as usize, cap)
                .unwrap();
        let (pg, schedule) = schedule_page_fetches(&wg, &layout).unwrap();
        println!(
            "  {cap} tuple(s)/page: page graph has {} edges, schedule costs {} fetches \
             ({:.2} per page edge)",
            pg.edge_count(),
            page_fetches(&schedule),
            page_fetches(&schedule) as f64 / pg.edge_count().max(1) as f64,
        );
    }
    println!("\nbigger pages shrink the page graph, but the spider's shape (and its");
    println!("NP-hard scheduling problem) survives every granularity — Theorem 4.2.");
}
