//! Tail-based request sampling for jp-serve.
//!
//! Capturing a full jp-obs trace of a serving run is the right tool in
//! CI, where the workload is small and the bytes are cheap. A
//! long-lived server wants the opposite trade: keep the *interesting*
//! requests at full detail and throw the rest away. The interesting
//! ones are in the tail — a request is worth keeping only once it has
//! finished slow or wrong, which is after its spans were emitted. So
//! the sampler must buffer first and decide later; that is tail-based
//! sampling.
//!
//! [`Xray`] is a secondary jp-obs sink (installed with
//! [`jp_obs::set_tap`], so it composes with a full `--trace` capture
//! rather than replacing it) that:
//!
//! * buffers every request-stamped event in a bounded ring keyed by
//!   request id — at most `xray_ring` in-flight requests are held, and
//!   admitting a new request past the bound evicts the oldest buffer
//!   whole (counted, never silently);
//! * on [`Xray::finish`] — called by the connection handler once the
//!   response frame is on the wire, so the `serve.wire` span is
//!   already in the buffer — flushes the request's *entire* event set
//!   to the xray file when it ran slower than `slow_us` or errored (an
//!   **exemplar**), and only its `serve.request` root span otherwise
//!   (**downsampled**: latency accounting survives, detail does not) —
//!   in both cases parent links pointing outside the request's own
//!   buffered spans are severed, so each flushed request is
//!   self-contained and `jp trace request` reconstructs it COMPLETE
//!   without the surrounding full trace;
//! * reports itself through jp-pulse: the `xray.ring_requests` gauge
//!   (buffer occupancy) and the `xray.exemplars` /
//!   `xray.dropped_requests` counters.
//!
//! The output file is ordinary schema-v2 JSONL, so `jp trace request`,
//! `jp trace flame --request`, and every other trace reader consume it
//! directly.

use jp_obs::{Event, EventKind, Sink};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tail-sampler configuration; the serve CLI exposes each knob as a
/// named flag.
#[derive(Debug, Clone)]
pub struct XrayConfig {
    /// Latency threshold in microseconds: a request at or above it is
    /// flushed at full detail.
    pub slow_us: u64,
    /// Bound on concurrently buffered requests (the ring); at least 1.
    pub ring: usize,
    /// Where the sampled JSONL goes (created/truncated at install).
    pub path: PathBuf,
}

/// In-flight buffers: insertion-ordered so eviction is oldest-first.
#[derive(Default)]
struct Ring {
    order: VecDeque<u64>,
    buf: HashMap<u64, Vec<Event>>,
}

impl Ring {
    /// Buffers one event, evicting oldest requests to respect `cap`.
    /// Returns how many whole requests were evicted.
    fn push(&mut self, id: u64, event: Event, cap: usize) -> u64 {
        if let Some(events) = self.buf.get_mut(&id) {
            events.push(event);
            return 0;
        }
        let mut evicted = 0;
        while self.order.len() >= cap.max(1) {
            if let Some(old) = self.order.pop_front() {
                self.buf.remove(&old);
                evicted += 1;
            } else {
                break;
            }
        }
        self.order.push_back(id);
        self.buf.insert(id, vec![event]);
        evicted
    }

    /// Removes and returns one request's buffer, if it survived.
    fn take(&mut self, id: u64) -> Option<Vec<Event>> {
        let events = self.buf.remove(&id)?;
        self.order.retain(|&q| q != id);
        Some(events)
    }
}

/// The tail sampler. One per [`crate::Server`] lifetime; installed as
/// the process-wide jp-obs tap for the duration of `run`.
pub struct Xray {
    cfg: XrayConfig,
    ring: Mutex<Ring>,
    out: Mutex<std::fs::File>,
    exemplars: AtomicU64,
    downsampled: AtomicU64,
    dropped: AtomicU64,
}

impl Xray {
    /// Creates (truncating) the output file and an empty ring.
    // audit:allow(obs-coverage) sink construction — the sampler consumes obs events, emitting its own would recurse
    pub fn create(cfg: XrayConfig) -> io::Result<Xray> {
        let file = std::fs::File::create(cfg.path.as_path())?;
        Ok(Xray {
            cfg,
            ring: Mutex::new(Ring::default()),
            out: Mutex::new(file),
            exemplars: AtomicU64::new(0),
            downsampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// The configured output path.
    // audit:allow(obs-coverage) trivial accessor
    pub fn path(&self) -> &Path {
        self.cfg.path.as_path()
    }

    /// Requests flushed at full detail (slow or errored).
    // audit:allow(obs-coverage) trivial accessor
    pub fn exemplars(&self) -> u64 {
        // race:order(monotone accounting counter, no ordering dependency)
        self.exemplars.load(Ordering::Relaxed)
    }

    /// Requests reduced to their root span line.
    // audit:allow(obs-coverage) trivial accessor
    pub fn downsampled(&self) -> u64 {
        // race:order(monotone accounting counter, no ordering dependency)
        self.downsampled.load(Ordering::Relaxed)
    }

    /// Requests evicted from the ring before they finished.
    // audit:allow(obs-coverage) trivial accessor
    pub fn dropped(&self) -> u64 {
        // race:order(monotone accounting counter, no ordering dependency)
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ends one request's buffering and applies the tail-sampling
    /// decision. `micros` is the handler-observed total (parse →
    /// response written), which is the latency a client saw; `error`
    /// forces exemplar treatment regardless of latency.
    // audit:allow(obs-coverage) runs inside the request's already-open serve spans; opening another here would self-trace the sampler
    pub fn finish(&self, request: u64, micros: u64, error: bool) {
        let (events, occupancy) = {
            let mut ring = lock(&self.ring);
            let events = ring.take(request);
            (events, ring.order.len() as u64)
        };
        jp_pulse::gauge_set("xray.ring_requests", occupancy);
        let Some(events) = events else {
            // evicted before it finished (already counted), or the
            // request predates the sampler — nothing to decide
            return;
        };
        let exemplar = error || micros >= self.cfg.slow_us;
        let kept: Vec<&Event> = events
            .iter()
            .filter(|event| {
                exemplar
                    || (event.kind == EventKind::Span
                        && event.component == "serve"
                        && event.name == "request")
            })
            .collect();
        // The buffer holds only this request's stamped events; a parent
        // link reaching outside it (the dispatcher's unstamped batch
        // span) would dangle in the sidecar file and read as a hole to
        // `jp trace request`. Sever those links so each flushed request
        // is self-contained and reconstructs COMPLETE on its own.
        let own_spans: std::collections::BTreeSet<u64> = kept
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| e.seq)
            .collect();
        let mut lines = String::new();
        for event in kept {
            let mut event = event.clone();
            if event.parent.is_some_and(|p| !own_spans.contains(&p)) {
                event.parent = None;
            }
            if let Ok(line) = serde_json::to_string(&event) {
                lines.push_str(&line);
                lines.push('\n');
            }
        }
        {
            let mut out = lock(&self.out);
            // a full disk must not take the server down; the drop is
            // visible as a short xray file, not a crash
            let _ = out.write_all(lines.as_bytes());
        }
        if exemplar {
            // race:order(monotone accounting counter, no ordering dependency)
            self.exemplars.fetch_add(1, Ordering::Relaxed);
            jp_pulse::counter_add("xray.exemplars", 1);
        } else {
            // race:order(monotone accounting counter, no ordering dependency)
            self.downsampled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Sink for Xray {
    /// Buffers one request-stamped event; everything unstamped (global
    /// totals, dispatcher telemetry) is not this sampler's business.
    // audit:allow(obs-coverage) sink callback — runs inside jp-obs dispatch, emitting from here would recurse
    fn record(&self, event: &Event) {
        let Some(id) = event.request else {
            return;
        };
        let (evicted, occupancy) = {
            let mut ring = lock(&self.ring);
            let evicted = ring.push(id, event.clone(), self.cfg.ring);
            (evicted, ring.order.len() as u64)
        };
        if evicted > 0 {
            // race:order(monotone accounting counter, no ordering dependency)
            self.dropped.fetch_add(evicted, Ordering::Relaxed);
            jp_pulse::counter_add("xray.dropped_requests", evicted);
        }
        jp_pulse::gauge_set("xray.ring_requests", occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_obs::Event;

    fn dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("jp-xray-unit-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("temp dir");
        d
    }

    fn stamped(seq: u64, component: &str, name: &str, request: u64) -> Event {
        let mut e = Event::span(component, name, 10);
        e.seq = seq;
        e.request = Some(request);
        e
    }

    fn read_lines(path: &Path) -> Vec<String> {
        std::fs::read_to_string(path)
            .expect("xray file")
            .lines()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn slow_requests_keep_full_detail_fast_ones_keep_the_root() {
        let path = dir().join("tail.jsonl");
        let xr = Xray::create(XrayConfig {
            slow_us: 1000,
            ring: 8,
            path: path.clone(),
        })
        .expect("create");
        for (req, seqs) in [(1u64, [1u64, 2, 3]), (2, [4, 5, 6])] {
            xr.record(&stamped(seqs[0], "memo", "probe", req));
            xr.record(&stamped(seqs[1], "serve", "request", req));
            xr.record(&stamped(seqs[2], "serve", "wire", req));
        }
        xr.finish(1, 5000, false); // slow: exemplar
        xr.finish(2, 40, false); // fast: root span only
        assert_eq!((xr.exemplars(), xr.downsampled(), xr.dropped()), (1, 1, 0));
        let lines = read_lines(&path);
        assert_eq!(lines.len(), 4, "{lines:#?}");
        let of_req1: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"request\":1"))
            .collect();
        assert_eq!(of_req1.len(), 3, "exemplar keeps every span");
        let of_req2: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"request\":2"))
            .collect();
        assert_eq!(of_req2.len(), 1, "downsampled keeps the root");
        assert!(of_req2[0].contains("\"name\":\"request\""), "{of_req2:?}");
    }

    #[test]
    fn errors_are_exemplars_at_any_latency() {
        let path = dir().join("err.jsonl");
        let xr = Xray::create(XrayConfig {
            slow_us: u64::MAX,
            ring: 8,
            path: path.clone(),
        })
        .expect("create");
        xr.record(&stamped(1, "serve", "request", 9));
        xr.record(&stamped(2, "serve", "wire", 9));
        xr.finish(9, 1, true);
        assert_eq!(xr.exemplars(), 1);
        assert_eq!(read_lines(&path).len(), 2);
    }

    #[test]
    fn the_ring_bound_evicts_oldest_and_counts_the_drop() {
        let path = dir().join("ring.jsonl");
        let xr = Xray::create(XrayConfig {
            slow_us: 0,
            ring: 2,
            path: path.clone(),
        })
        .expect("create");
        xr.record(&stamped(1, "serve", "request", 1));
        xr.record(&stamped(2, "serve", "request", 2));
        xr.record(&stamped(3, "serve", "request", 3)); // evicts request 1
        assert_eq!(xr.dropped(), 1);
        xr.finish(1, 10_000, false); // gone: no line, no exemplar
        assert_eq!(xr.exemplars(), 0);
        assert_eq!(read_lines(&path).len(), 0);
        xr.finish(2, 10_000, false);
        xr.finish(3, 10_000, false);
        assert_eq!(xr.exemplars(), 2);
        assert_eq!(read_lines(&path).len(), 2);
    }

    #[test]
    fn parent_links_outside_the_request_are_severed_on_flush() {
        let path = dir().join("sever.jsonl");
        let xr = Xray::create(XrayConfig {
            slow_us: 0,
            ring: 4,
            path: path.clone(),
        })
        .expect("create");
        // root parents under an unstamped dispatcher span (seq 99, not
        // buffered); the wire span parents under the root (seq 2, kept)
        let mut root = stamped(2, "serve", "request", 7);
        root.parent = Some(99);
        let mut wire = stamped(3, "serve", "wire", 7);
        wire.parent = Some(2);
        xr.record(&root);
        xr.record(&wire);
        xr.finish(7, 50, false);
        let lines = read_lines(&path);
        assert_eq!(lines.len(), 2, "{lines:#?}");
        let root_line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"request\""))
            .unwrap();
        assert!(!root_line.contains("\"parent\""), "{root_line}");
        let wire_line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"wire\""))
            .unwrap();
        assert!(wire_line.contains("\"parent\":2"), "{wire_line}");
    }

    #[test]
    fn unstamped_events_are_ignored() {
        let path = dir().join("unstamped.jsonl");
        let xr = Xray::create(XrayConfig {
            slow_us: 0,
            ring: 2,
            path,
        })
        .expect("create");
        xr.record(&Event::counter("serve", "completed_total", 7));
        let ring = lock(&xr.ring);
        assert!(ring.buf.is_empty());
    }
}
