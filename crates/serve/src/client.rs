//! A blocking client for the jp-serve wire protocol.

use crate::proto::{self, FrameRead, Request, RequestBody, Response, WIRE_VERSION};
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Read timeout per poll; combined with [`MAX_IDLE_POLLS`] this bounds
/// how long [`Client::request`] waits for an answer.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Idle polls tolerated before a request is declared timed out
/// (~60 s at the 50 ms poll interval — generous for a solver job,
/// finite for a hung server).
const MAX_IDLE_POLLS: u32 = 1200;

/// One connection to a jp-serve server; requests are synchronous, one
/// in flight at a time.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects and configures the socket timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, body: RequestBody) -> io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            v: WIRE_VERSION,
            id,
            body,
        };
        {
            let mut w = BufWriter::new(&mut self.stream);
            proto::write_message(&mut w, &req)?;
            w.flush()?;
        }
        let mut idle = 0u32;
        loop {
            match proto::read_frame(&mut self.stream)? {
                FrameRead::Frame(payload) => {
                    return proto::parse_response(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                }
                FrameRead::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection before answering",
                    ));
                }
                FrameRead::Idle => {
                    idle += 1;
                    if idle > MAX_IDLE_POLLS {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no response within the client timeout",
                        ));
                    }
                }
            }
        }
    }
}
