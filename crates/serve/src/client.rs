//! A blocking client for the jp-serve wire protocol.

use crate::proto::{self, FrameRead, Request, RequestBody, Response, WIRE_VERSION};
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Source of tracing ids, shared by every [`Client`] in the process so
/// concurrent loadgen clients never mint the same id.
static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh tracing id: the process id in the high 32 bits (so
/// ids from separate client processes hitting one server stay
/// distinct) and a process-wide counter in the low 32.
fn mint_request_id() -> u64 {
    // race:order(monotonic id allocation only needs uniqueness)
    let n = NEXT_REQUEST.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 32) | (n & 0xFFFF_FFFF)
}

/// Read timeout per poll; combined with [`MAX_IDLE_POLLS`] this bounds
/// how long [`Client::request`] waits for an answer.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Idle polls tolerated before a request is declared timed out
/// (~60 s at the 50 ms poll interval — generous for a solver job,
/// finite for a hung server).
const MAX_IDLE_POLLS: u32 = 1200;

/// One connection to a jp-serve server; requests are synchronous, one
/// in flight at a time.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects and configures the socket timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, body: RequestBody) -> io::Result<Response> {
        self.request_traced(body).map(|(_, resp)| resp)
    }

    /// Sends one request and blocks for its response, also returning
    /// the tracing id minted for the frame — the id the server stamps
    /// into every jp-obs event the request causes, and the handle
    /// `jp trace request <id>` reconstructs from.
    pub fn request_traced(&mut self, body: RequestBody) -> io::Result<(u64, Response)> {
        let id = self.next_id;
        self.next_id += 1;
        let request = mint_request_id();
        let req = Request {
            v: WIRE_VERSION,
            id,
            request: Some(request),
            body,
        };
        {
            let mut w = BufWriter::new(&mut self.stream);
            proto::write_message(&mut w, &req)?;
            w.flush()?;
        }
        let mut idle = 0u32;
        loop {
            match proto::read_frame(&mut self.stream)? {
                FrameRead::Frame(payload) => {
                    return proto::parse_response(&payload)
                        .map(|resp| (request, resp))
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                }
                FrameRead::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection before answering",
                    ));
                }
                FrameRead::Idle => {
                    idle += 1;
                    if idle > MAX_IDLE_POLLS {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no response within the client timeout",
                        ));
                    }
                }
            }
        }
    }
}
