//! jp-serve: a long-lived pebbling/join-planning service.
//!
//! A join planner is most useful warm: the memo store that makes
//! repeated shapes cheap ([`jp_pebble::memo`]) only pays off if it
//! outlives a single CLI invocation. This crate keeps it alive behind
//! a small TCP service:
//!
//! * [`proto`] — the versioned, length-prefixed JSON wire format;
//! * [`server`] — the service itself: acceptor, per-connection
//!   handlers, admission control, and a dispatcher that schedules
//!   solver batches on the jp-par runtime over one shared
//!   [`jp_pebble::memo::Memo`];
//! * [`client`] — a blocking client;
//! * [`loadgen`] — a deterministic Zipf-skewed workload driver with
//!   answer verification, for benchmarks, tests, and CI;
//! * [`xray`] — tail-based request sampling: every request-stamped
//!   jp-obs event is buffered in a bounded ring, and only slow or
//!   failing requests are flushed at full detail (exemplars).
//!
//! Zero dependencies beyond the workspace: the wire format rides the
//! vendored serde, networking is `std::net`, and concurrency is
//! scoped threads — the same discipline as the rest of the
//! workspace.

#![forbid(unsafe_code)]

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod xray;

pub use client::Client;
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, ServerSnapshot, SlowRequest};
pub use proto::{PebbleAlgo, Request, RequestBody, Response, ResponseBody, WIRE_VERSION};
pub use server::{ServeConfig, ServeReport, Server};
pub use xray::{Xray, XrayConfig};
