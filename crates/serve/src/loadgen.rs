//! Workload generator for jp-serve: N concurrent clients replaying a
//! Zipf-skewed mix of join-graph queries against one server.
//!
//! The query pool is deterministic (seeded generators, no wall-clock
//! anywhere), so the same `(pool, seed, clients, requests, theta)`
//! tuple replays the same workload — that is what lets the bench
//! baseline and the CI burst compare server-side traces at all.
//!
//! With `verify` on, every returned cost is checked against the
//! sequential solver's answer for the same graph, computed locally
//! before the run: a serving stack that drops, reorders, or corrupts
//! an answer under load turns into a non-zero `mismatches` count.
//!
//! The generator emits **no jp-obs events of its own** while driving
//! load (client I/O is silent and the verification pre-pass runs
//! before the measured window), so a scoped capture around the server
//! sees only server-side telemetry.

use crate::client::Client;
use crate::proto::{PebbleAlgo, RequestBody, ResponseBody};
use jp_graph::{generators, BipartiteGraph};
use jp_pebble::portfolio::portfolio_effective_cost;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io;
use std::time::Instant;

/// Workload shape; every field is a named CLI flag on `jp loadgen`.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address to drive.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Zipf skew exponent θ: 0 = uniform over the pool, larger =
    /// more of the traffic concentrated on the first few shapes.
    pub theta: f64,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// Distinct query shapes in the pool.
    pub pool: usize,
    /// Check every answer against the sequential solver.
    pub verify: bool,
    /// Send a `Shutdown` request after the run (and the final stats
    /// probe), so the server drains and exits.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7411".to_string(),
            clients: 4,
            requests: 25,
            theta: 0.8,
            seed: 42,
            pool: 8,
            verify: true,
            shutdown: false,
        }
    }
}

/// The server's own accounting, read with a `Stats` request after the
/// load completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServerSnapshot {
    /// Entries in the warm memo store.
    pub entries: u64,
    /// Memo cache hits over the server lifetime.
    pub hits: u64,
    /// Memo misses (fresh solves) over the server lifetime.
    pub misses: u64,
    /// Recognizer answers over the server lifetime.
    pub recognized: u64,
    /// Pebble requests answered with a cost.
    pub completed: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Failed requests.
    pub errors: u64,
}

impl ServerSnapshot {
    /// Fraction of memo lookups served without running the solver
    /// ladder (recognizers + validated cache hits). A freshly warmed
    /// server replaying the same workload should sit near 1.0.
    pub fn serve_rate(&self) -> f64 {
        let served = self.hits + self.recognized;
        let total = served + self.misses;
        if total == 0 {
            return 1.0;
        }
        served as f64 / total as f64
    }
}

/// One request from the latency tail, identified by the tracing id the
/// client minted for its frame — the handle `jp trace request <id>`
/// (and `jp trace flame --request <id>`) reconstructs from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SlowRequest {
    /// Tracing id (`Request::request`) stamped into the server's
    /// jp-obs events for this request.
    pub request: u64,
    /// Client-observed latency, microseconds.
    pub micros: u64,
}

/// Aggregated outcome of one loadgen run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LoadgenReport {
    /// Pebble requests sent across all clients.
    pub sent: u64,
    /// Requests answered with a cost.
    pub ok: u64,
    /// Requests refused by admission control (or the drain).
    pub rejected: u64,
    /// Requests that failed (I/O or server error).
    pub errors: u64,
    /// Answers that disagreed with the sequential solver (`verify`).
    pub mismatches: u64,
    /// Sum of all answered costs.
    pub cost_sum: u64,
    /// Wall time of the load window, microseconds.
    pub wall_micros: u64,
    /// Client-observed latency percentiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Tracing ids of answers that disagreed with the sequential
    /// solver — exactly the requests worth pulling out of a trace (or
    /// the server's xray file) with `jp trace request`.
    pub mismatch_requests: Vec<u64>,
    /// The latency tail: every answered request at or above the p99
    /// latency, slowest first, capped at [`SLOWEST_CAP`] entries.
    pub slowest_p99: Vec<SlowRequest>,
    /// The server's own counters after the run, when reachable.
    pub server: Option<ServerSnapshot>,
}

/// Bound on [`LoadgenReport::slowest_p99`], so a huge run's JSON
/// report stays readable.
pub const SLOWEST_CAP: usize = 16;

/// Per-client tallies, merged after the scope joins.
#[derive(Default)]
struct ClientTally {
    sent: u64,
    ok: u64,
    rejected: u64,
    errors: u64,
    mismatches: u64,
    cost_sum: u64,
    /// `(latency, tracing id)` per answered request.
    timed: Vec<SlowRequest>,
    /// Tracing ids of answers that failed verification.
    mismatch_requests: Vec<u64>,
}

/// The deterministic query pool: a rotation of recognized closed-form
/// families (spiders, complete bipartite), seeded random connected
/// blocks (exercise fresh-solve-then-cache), and multi-component
/// unions (exercise per-component attribution).
pub fn query_pool(n: usize) -> Vec<BipartiteGraph> {
    (0..n.max(1))
        .map(|i| {
            let k = (i / 4) as u32;
            match i % 4 {
                0 => generators::spider(3 + k % 5),
                1 => generators::complete_bipartite(2 + k % 3, 3 + k % 3),
                2 => generators::random_connected_bipartite(4, 4, 9 + i % 3, 100 + i as u64),
                _ => generators::matching(2 + k % 3).disjoint_union(&generators::path(3 + k % 4)),
            }
        })
        .collect()
}

/// The sequential solver's answer for every pool entry — the ground
/// truth `verify` holds the server to.
pub fn expected_costs(pool: &[BipartiteGraph]) -> io::Result<Vec<u64>> {
    let mut out = Vec::with_capacity(pool.len());
    for g in pool {
        let cost = portfolio_effective_cost(g, 1)
            .map_err(|e| io::Error::other(format!("solving a pool graph locally: {e}")))?;
        out.push(cost as u64);
    }
    Ok(out)
}

/// Cumulative (unnormalized) Zipf weights over `n` ranks.
fn zipf_cumulative(n: usize, theta: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(theta);
        cum.push(total);
    }
    cum
}

/// Samples a pool index from the Zipf distribution.
fn sample(cum: &[f64], rng: &mut SmallRng) -> usize {
    let total = cum.last().copied().unwrap_or(1.0);
    let u = rng.random::<f64>() * total;
    cum.iter().position(|&c| u < c).unwrap_or(0)
}

/// Runs the workload: spawns the clients, drives the mix, aggregates
/// latencies, probes the server's stats, and optionally shuts it
/// down.
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let pool = query_pool(cfg.pool);
    let expected: Option<Vec<u64>> = if cfg.verify {
        Some(expected_costs(&pool)?)
    } else {
        None
    };
    let cum = zipf_cumulative(pool.len(), cfg.theta);
    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|ci| {
                let (pool, cum, expected) = (&pool, &cum, &expected);
                s.spawn(move || client_loop(cfg, ci, pool, cum, expected.as_deref()))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;

    let mut report = LoadgenReport {
        wall_micros,
        ..LoadgenReport::default()
    };
    let mut timed: Vec<SlowRequest> = Vec::new();
    for t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.rejected += t.rejected;
        report.errors += t.errors;
        report.mismatches += t.mismatches;
        report.cost_sum += t.cost_sum;
        timed.extend(t.timed);
        report.mismatch_requests.extend(t.mismatch_requests);
    }
    let mut lats: Vec<u64> = timed.iter().map(|s| s.micros).collect();
    lats.sort_unstable();
    report.p50_us = jp_obs::nearest_rank(&lats, 0.50);
    report.p95_us = jp_obs::nearest_rank(&lats, 0.95);
    report.p99_us = jp_obs::nearest_rank(&lats, 0.99);
    // the tail itself, by id: everything at/above p99, slowest first
    timed.retain(|s| s.micros >= report.p99_us && report.p99_us > 0);
    timed.sort_by(|a, b| b.micros.cmp(&a.micros).then(a.request.cmp(&b.request)));
    timed.truncate(SLOWEST_CAP);
    report.slowest_p99 = timed;
    report.mismatch_requests.sort_unstable();

    if let Ok(mut probe) = Client::connect(cfg.addr.as_str()) {
        if let Ok(resp) = probe.request(RequestBody::Stats) {
            if let ResponseBody::Stats {
                entries,
                hits,
                misses,
                recognized,
                completed,
                rejected,
                errors,
            } = resp.body
            {
                report.server = Some(ServerSnapshot {
                    entries,
                    hits,
                    misses,
                    recognized,
                    completed,
                    rejected,
                    errors,
                });
            }
        }
        if cfg.shutdown {
            let _ack = probe.request(RequestBody::Shutdown);
        }
    }
    Ok(report)
}

/// One client's request loop.
fn client_loop(
    cfg: &LoadgenConfig,
    ci: usize,
    pool: &[BipartiteGraph],
    cum: &[f64],
    expected: Option<&[u64]>,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let Ok(mut client) = Client::connect(cfg.addr.as_str()) else {
        tally.errors += 1;
        return tally;
    };
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(ci as u64));
    for _ in 0..cfg.requests {
        let qi = sample(cum, &mut rng);
        let Some(g) = pool.get(qi) else { continue };
        tally.sent += 1;
        let t0 = Instant::now();
        match client.request_traced(RequestBody::Pebble {
            graph: g.clone(),
            algo: PebbleAlgo::Auto,
        }) {
            Ok((request, resp)) => {
                let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                match resp.body {
                    ResponseBody::Cost { cost, .. } => {
                        tally.ok += 1;
                        tally.cost_sum += cost;
                        tally.timed.push(SlowRequest {
                            request,
                            micros: us,
                        });
                        if let Some(exp) = expected {
                            if exp.get(qi).copied() != Some(cost) {
                                tally.mismatches += 1;
                                tally.mismatch_requests.push(request);
                            }
                        }
                    }
                    ResponseBody::Rejected { .. } | ResponseBody::ShuttingDown => {
                        tally.rejected += 1;
                    }
                    _ => tally.errors += 1,
                }
            }
            Err(_) => {
                // connection-level failure: this client can't continue
                tally.errors += 1;
                return tally;
            }
        }
    }
    tally
}
