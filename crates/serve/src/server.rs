//! The jp-serve server: a long-lived planning service over one warm
//! memo store.
//!
//! ## Thread structure
//!
//! Everything runs under a single [`std::thread::scope`], so shutdown
//! is structural — `run` cannot return with a thread still alive:
//!
//! * the **acceptor** (the thread that called [`Server::run`]) polls a
//!   non-blocking listener and spawns one **handler** per connection;
//! * each handler speaks the [`crate::proto`] frame protocol
//!   synchronously: read a request, admit or reject it, and — for
//!   admitted pebble jobs — block on a reply channel while the
//!   dispatcher works;
//! * the **dispatcher** drains the admitted-job queue in batches and
//!   executes each batch on the jp-par runtime
//!   ([`jp_par::run_tasks`]), so solver parallelism, work stealing,
//!   and `par.*` telemetry are exactly the library's.
//!
//! ## Admission control
//!
//! A request is *rejected with a named reason* rather than queued
//! without bound:
//!
//! * `--max-edges`: graphs above the size cap never enter the queue;
//! * `--max-pending`: at most this many admitted-but-unanswered jobs
//!   exist at once (claimed with a compare-exchange, so the bound is
//!   exact under concurrency);
//! * `--budget`: branch-and-bound requests that exhaust the node
//!   budget are answered `Rejected`, mapping
//!   [`PebbleError::BudgetExhausted`] to back-pressure instead of
//!   failure;
//! * during shutdown every new pebble request is answered
//!   `ShuttingDown` while in-flight jobs drain.
//!
//! ## Telemetry
//!
//! Per request: a `serve.request` jp-obs span (with a
//! `serve.queue_wait_us` counter inside it), a `serve.wire` span for
//! the response write, and a `serve.latency_us` jp-pulse histogram
//! (p50/p95/p99 in every pulse snapshot), plus a `serve.queue_depth`
//! gauge from the dispatcher. When the client sent a tracing id (see
//! [`crate::proto::Request::request`]) every one of those events — and
//! everything the solver emits underneath them — is stamped with it,
//! which is what `jp trace request <id>` reconstructs. At end of run
//! the server emits one deterministic set of jp-obs totals
//! (`serve.completed_total`, `serve.cost_sum`, `serve.errors_total`,
//! …) — these are what `jp trace check` gates as answer-class
//! counters. With `--xray-file` set, a [`crate::xray::Xray`] tail
//! sampler additionally keeps slow/failing requests at full detail.

use crate::proto::{
    self, FrameRead, PebbleAlgo, RequestBody, Response, ResponseBody, WIRE_VERSION,
};
use crate::xray::{Xray, XrayConfig};
use jp_graph::{BipartiteGraph, ComponentMap};
use jp_pebble::memo::{solve_with_memo_report, Memo, MemoStats};
use jp_pebble::{exact_bb, PebbleError};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long the acceptor sleeps when `accept` has nothing for it.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on handler sockets; bounds how long a handler takes to
/// notice the shutdown flag.
const HANDLER_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Write timeout on handler sockets, so one dead-but-unclosed peer
/// cannot pin a handler thread forever.
const HANDLER_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the dispatcher waits on the queue condvar before
/// re-checking the shutdown flag.
const DISPATCH_WAIT: Duration = Duration::from_millis(100);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Server configuration; every limit here is a named CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7411` (`:0` for an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// jp-par worker threads for solver batches. 1 executes jobs
    /// sequentially on the dispatcher thread — the deterministic mode
    /// the trace gate runs.
    pub threads: usize,
    /// Admission bound: maximum admitted-but-unanswered pebble jobs.
    pub max_pending: usize,
    /// Admission bound: maximum edges in a submitted graph.
    pub max_edges: usize,
    /// Node budget for branch-and-bound ([`PebbleAlgo::Bb`]) requests.
    pub budget: u64,
    /// Warm-store checkpoint: loaded (if present) at bind, written
    /// atomically at shutdown.
    pub memo_file: Option<PathBuf>,
    /// When non-zero the server initiates shutdown on its own after
    /// answering this many pebble requests (a test/CI harness bound;
    /// 0 = serve until a `Shutdown` request arrives).
    pub max_requests: u64,
    /// Tail-sampling latency threshold (`--slow-us`): a request whose
    /// handler-observed total reaches it becomes an exemplar.
    pub slow_us: u64,
    /// When set (`--xray-file`), install the [`crate::xray::Xray`]
    /// tail sampler for the lifetime of the run and write sampled
    /// request traces here as schema-v2 JSONL.
    pub xray_file: Option<PathBuf>,
    /// Bound on concurrently buffered requests in the sampler ring
    /// (`--xray-ring`).
    pub xray_ring: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            max_pending: 64,
            max_edges: 4096,
            budget: 50_000_000,
            memo_file: None,
            max_requests: 0,
            slow_us: 5_000,
            xray_file: None,
            xray_ring: 64,
        }
    }
}

/// What one [`Server::run`] lifetime did, loaded after every thread
/// has joined (so the counters are final, not snapshots).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Pebble jobs admitted past admission control.
    pub accepted: u64,
    /// Pebble jobs answered with a cost.
    pub completed: u64,
    /// Requests refused (size cap, pending cap, budget, shutdown).
    pub rejected: u64,
    /// Requests that failed (protocol or solver errors).
    pub errors: u64,
    /// Sum of all answered costs — one number that differs if any
    /// single answer differs, which is what the trace gate wants.
    pub cost_sum: u64,
    /// Whether the queue was empty and no job was in flight when the
    /// dispatcher exited — i.e. shutdown drained cleanly.
    pub drained: bool,
    /// Entries in the warm store at exit.
    pub memo_entries: usize,
    /// Entries loaded from the checkpoint file at bind.
    pub preloaded: usize,
    /// Warm-store counters for the whole lifetime.
    pub memo: MemoStats,
    /// Requests the tail sampler kept at full detail (slow/errored).
    pub exemplars: u64,
    /// Requests the tail sampler reduced to their root span.
    pub downsampled: u64,
    /// Requests evicted from the sampler ring before finishing.
    pub xray_dropped: u64,
}

/// One admitted pebble job, queued handler → dispatcher. The reply
/// channel closes (dispatcher side) if execution dies, so the handler
/// always learns the outcome — a response or a closed channel, never
/// silence.
struct Job {
    graph: BipartiteGraph,
    algo: PebbleAlgo,
    /// Client-minted tracing id, stamped into every jp-obs event the
    /// job emits (old clients send none — the job still runs, its
    /// events just stay unstamped).
    request: Option<u64>,
    /// When the handler queued the job; the gap to execution start is
    /// the `serve.queue_wait_us` counter.
    enqueued: Instant,
    reply: mpsc::Sender<ResponseBody>,
}

/// State shared by acceptor, handlers, and dispatcher. All counters
/// are SeqCst: this is control-plane accounting on a network service,
/// not a solver hot loop, and the strongest ordering keeps every
/// cross-thread invariant (admission bound, drain condition) easy to
/// believe.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Admitted-but-unanswered pebble jobs (queued + executing).
    pending: AtomicUsize,
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    cost_sum: AtomicU64,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cost_sum: AtomicU64::new(0),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Claims one pending slot iff fewer than `cap` are taken. The
    /// compare-exchange loop makes the admission bound exact: two
    /// handlers racing for the last slot cannot both win.
    fn try_admit(&self, cap: usize) -> bool {
        let mut cur = self.pending.load(Ordering::SeqCst);
        while cur < cap {
            match self
                .pending
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
        false
    }
}

/// Releases one pending slot on drop, so even a panicking solver task
/// (contained by jp-par) cannot strand the drain condition above zero.
struct PendingGuard<'a>(&'a Shared);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound jp-serve instance; [`Server::run`] serves until shutdown.
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    memo: Memo,
    preloaded: usize,
}

impl Server {
    /// Binds the listen socket and warms the memo store from the
    /// checkpoint file, when one is configured and present.
    // audit:allow(obs-coverage) setup I/O — per-request spans live in execute_job/handle_conn
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let memo = Memo::new();
        let mut preloaded = 0;
        if let Some(path) = &cfg.memo_file {
            if path.exists() {
                let (loaded, _skipped) = memo.load_jsonl(path)?;
                preloaded = loaded;
            }
        }
        Ok(Server {
            cfg,
            listener,
            memo,
            preloaded,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    // audit:allow(obs-coverage) trivial accessor
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Entries loaded from the memo checkpoint at bind time.
    // audit:allow(obs-coverage) trivial accessor
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// Serves until a `Shutdown` request (or the `max_requests` bound)
    /// fires, drains in-flight work, checkpoints the memo atomically,
    /// and returns the lifetime report.
    // audit:allow(obs-coverage) lifetime loop — emits the end-of-run counter set; per-request spans live in execute_job/handle_conn
    pub fn run(self) -> io::Result<ServeReport> {
        // When a scoped obs/pulse capture is active (the bench serve
        // axis runs the server on a spawned thread inside one), join
        // it so the end-of-run totals below land in the capture. With
        // no scope active both guards are no-ops.
        let _obs = jp_obs::adopt();
        let _pulse = jp_pulse::adopt();
        self.listener.set_nonblocking(true)?;
        let shared = Shared::new();
        let cfg = &self.cfg;
        let memo = &self.memo;
        // Tail sampler: installed as the jp-obs *tap* so it rides
        // alongside (never instead of) a full --trace capture. The
        // guard uninstalls it before the report reads its counters.
        let xray = match &cfg.xray_file {
            Some(path) => Some(std::sync::Arc::new(Xray::create(XrayConfig {
                slow_us: cfg.slow_us,
                ring: cfg.xray_ring,
                path: path.clone(),
            })?)),
            None => None,
        };
        let tap = xray
            .as_ref()
            .map(|x| jp_obs::set_tap(x.clone() as std::sync::Arc<dyn jp_obs::Sink>));
        std::thread::scope(|s| {
            s.spawn(|| dispatch_loop(&shared, memo, cfg));
            accept_loop(&self.listener, s, &shared, memo, cfg, xray.as_deref());
        });
        drop(tap);
        let drained = lock(&shared.queue).is_empty() && shared.pending.load(Ordering::SeqCst) == 0;
        let report = ServeReport {
            connections: shared.connections.load(Ordering::SeqCst),
            accepted: shared.accepted.load(Ordering::SeqCst),
            completed: shared.completed.load(Ordering::SeqCst),
            rejected: shared.rejected.load(Ordering::SeqCst),
            errors: shared.errors.load(Ordering::SeqCst),
            cost_sum: shared.cost_sum.load(Ordering::SeqCst),
            drained,
            memo_entries: self.memo.len(),
            preloaded: self.preloaded,
            memo: self.memo.stats(),
            exemplars: xray.as_ref().map_or(0, |x| x.exemplars()),
            downsampled: xray.as_ref().map_or(0, |x| x.downsampled()),
            xray_dropped: xray.as_ref().map_or(0, |x| x.dropped()),
        };
        // One deterministic set of end-of-run totals: for a fixed
        // workload these are identical run to run (the per-request
        // spans above them are timing and scheduling, gated softly).
        if jp_obs::enabled() {
            jp_obs::counter("serve", "connections", report.connections);
            jp_obs::counter("serve", "accepted", report.accepted);
            jp_obs::counter("serve", "completed_total", report.completed);
            jp_obs::counter("serve", "rejected_total", report.rejected);
            jp_obs::counter("serve", "errors_total", report.errors);
            jp_obs::counter("serve", "cost_sum", report.cost_sum);
        }
        if let Some(path) = &cfg.memo_file {
            // atomic temp+rename checkpoint: a crash mid-save (or a
            // kill -9) leaves the previous checkpoint intact
            self.memo.save_jsonl(path)?;
        }
        Ok(report)
    }
}

/// The acceptor: polls the non-blocking listener, spawns a handler
/// per connection, and initiates shutdown when the `max_requests`
/// bound fires. Returns once shutdown is flagged.
fn accept_loop<'scope, 'env>(
    listener: &'scope TcpListener,
    s: &'scope std::thread::Scope<'scope, 'env>,
    shared: &'scope Shared,
    memo: &'scope Memo,
    cfg: &'scope ServeConfig,
    xray: Option<&'scope Xray>,
) {
    while !shared.shutting_down() {
        if cfg.max_requests > 0 && shared.completed.load(Ordering::SeqCst) >= cfg.max_requests {
            shared.begin_shutdown();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::SeqCst);
                s.spawn(move || handle_conn(stream, shared, memo, cfg, xray));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // a broken listener cannot serve anyone: drain and exit
                shared.errors.fetch_add(1, Ordering::SeqCst);
                shared.begin_shutdown();
            }
        }
    }
    // make sure the dispatcher re-checks the flag even if no handler
    // ever enqueued anything
    shared.available.notify_all();
}

/// One connection: a synchronous request/response loop over the frame
/// protocol. Exits on peer close, connection error, or (when idle)
/// server shutdown.
fn handle_conn(
    mut stream: TcpStream,
    shared: &Shared,
    memo: &Memo,
    cfg: &ServeConfig,
    xray: Option<&Xray>,
) {
    let _obs = jp_obs::adopt();
    let _pulse = jp_pulse::adopt();
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(HANDLER_READ_TIMEOUT)).is_err()
        || stream
            .set_write_timeout(Some(HANDLER_WRITE_TIMEOUT))
            .is_err()
    {
        shared.errors.fetch_add(1, Ordering::SeqCst);
        return;
    }
    loop {
        let payload = match proto::read_frame(&mut stream) {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Idle) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                return;
            }
        };
        let (id, request, body) = match proto::parse_request(&payload) {
            Ok(req) => (req.id, req.request, req.body),
            Err(reason) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                jp_pulse::counter_add("serve.errors", 1);
                if respond(&mut stream, 0, ResponseBody::Error { reason }).is_err() {
                    return;
                }
                continue;
            }
        };
        // Stamp every event this request causes on the handler thread
        // with its tracing id; the dispatcher hands the id onward so
        // solver-side events carry it too. Dropped at loop end.
        let _req = jp_obs::with_request(request);
        let t0 = Instant::now();
        let reply = match body {
            RequestBody::Ping => ResponseBody::Pong,
            RequestBody::Stats => stats_body(shared, memo),
            RequestBody::Shutdown => {
                shared.begin_shutdown();
                ResponseBody::ShuttingDown
            }
            RequestBody::Pebble { graph, algo } => admit(graph, algo, request, shared, cfg),
        };
        let failed = matches!(reply, ResponseBody::Error { .. });
        let wrote = {
            // serve.wire: response serialization + socket write, the
            // last leg of the request's critical path
            let _wire = jp_obs::span("serve", "wire");
            respond(&mut stream, id, reply)
        };
        if let (Some(x), Some(rid)) = (xray, request) {
            let micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            x.finish(rid, micros, failed || wrote.is_err());
        }
        if wrote.is_err() {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            return;
        }
    }
}

/// Admission control for one pebble request; blocks on the reply
/// channel once the job is admitted.
fn admit(
    graph: BipartiteGraph,
    algo: PebbleAlgo,
    request: Option<u64>,
    shared: &Shared,
    cfg: &ServeConfig,
) -> ResponseBody {
    if shared.shutting_down() {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        jp_pulse::counter_add("serve.rejected", 1);
        return ResponseBody::ShuttingDown;
    }
    if graph.edge_count() > cfg.max_edges {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        jp_pulse::counter_add("serve.rejected", 1);
        return ResponseBody::Rejected {
            reason: format!(
                "graph has {} edges, above the --max-edges cap of {}",
                graph.edge_count(),
                cfg.max_edges
            ),
        };
    }
    if !shared.try_admit(cfg.max_pending) {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        jp_pulse::counter_add("serve.rejected", 1);
        return ResponseBody::Rejected {
            reason: format!(
                "{} jobs already pending, the --max-pending admission bound; retry later",
                cfg.max_pending
            ),
        };
    }
    shared.accepted.fetch_add(1, Ordering::SeqCst);
    let (tx, rx) = mpsc::channel();
    {
        let mut q = lock(&shared.queue);
        q.push_back(Job {
            graph,
            algo,
            request,
            enqueued: Instant::now(),
            reply: tx,
        });
    }
    shared.available.notify_one();
    match rx.recv() {
        Ok(body) => body,
        Err(_) => {
            // the dispatcher dropped the job without answering (a
            // contained solver panic); the slot was released by the
            // job's PendingGuard — report, don't hang
            shared.errors.fetch_add(1, Ordering::SeqCst);
            jp_pulse::counter_add("serve.errors", 1);
            ResponseBody::Error {
                reason: "the solver task died before producing an answer".to_string(),
            }
        }
    }
}

/// Builds the `Stats` response from the shared counters and the warm
/// store.
fn stats_body(shared: &Shared, memo: &Memo) -> ResponseBody {
    let st = memo.stats();
    ResponseBody::Stats {
        entries: memo.len() as u64,
        hits: st.hits,
        misses: st.misses,
        recognized: st.recognized,
        completed: shared.completed.load(Ordering::SeqCst),
        rejected: shared.rejected.load(Ordering::SeqCst),
        errors: shared.errors.load(Ordering::SeqCst),
    }
}

/// Writes one response frame.
fn respond(stream: &mut TcpStream, id: u64, body: ResponseBody) -> io::Result<()> {
    let resp = Response {
        v: WIRE_VERSION,
        id,
        body,
    };
    let mut w = io::BufWriter::new(&mut *stream);
    proto::write_message(&mut w, &resp)?;
    w.flush()
}

/// The dispatcher: drains the admitted-job queue in batches and runs
/// each batch on the jp-par runtime. Exits only when shutdown is
/// flagged *and* no work is queued or in flight — that is the clean
/// drain the report's `drained` field attests.
fn dispatch_loop(shared: &Shared, memo: &Memo, cfg: &ServeConfig) {
    let _obs = jp_obs::adopt();
    let _pulse = jp_pulse::adopt();
    loop {
        let (depth, batch) = {
            let mut q = lock(&shared.queue);
            while q.is_empty() && !shared.shutting_down() {
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(q, DISPATCH_WAIT)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let depth = q.len();
            (depth, q.drain(..).collect::<Vec<Job>>())
        };
        jp_pulse::gauge_set("serve.queue_depth", depth as u64);
        if batch.is_empty() {
            if shared.shutting_down() && shared.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            continue;
        }
        // jp-par contains per-task panics but re-throws them here;
        // catching keeps the dispatcher alive, and the dropped reply
        // senders tell the affected handlers exactly what happened.
        let threads = cfg.threads.max(1);
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            jp_par::run_tasks(threads, batch, |_w, job| {
                execute_job(job, memo, cfg, shared)
            });
        }));
        if run.is_err() {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            jp_pulse::counter_add("serve.errors", 1);
        }
        jp_pulse::gauge_set("serve.queue_depth", 0);
    }
}

/// Executes one admitted job on a jp-par worker (or the dispatcher
/// itself at `threads == 1`), answers the waiting handler, and does
/// the per-request accounting.
fn execute_job(job: Job, memo: &Memo, cfg: &ServeConfig, shared: &Shared) {
    let _slot = PendingGuard(shared);
    let t0 = Instant::now();
    // Adopt the job's tracing id for everything the solve emits —
    // worker threads don't inherit the handler's context, the id rides
    // the Job itself.
    let _req = jp_obs::with_request(job.request);
    let queue_wait = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let body = {
        let _span = jp_obs::span("serve", "request");
        jp_obs::counter("serve", "queue_wait_us", queue_wait);
        solve_body(&job.graph, job.algo, memo, cfg)
    };
    let micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let body = match body {
        ResponseBody::Cost {
            cost,
            components,
            served,
            fresh,
            micros: _,
        } => ResponseBody::Cost {
            cost,
            components,
            served,
            fresh,
            micros,
        },
        other => other,
    };
    match &body {
        ResponseBody::Cost { cost, .. } => {
            shared.completed.fetch_add(1, Ordering::SeqCst);
            shared.cost_sum.fetch_add(*cost, Ordering::SeqCst);
            jp_pulse::counter_add("serve.completed", 1);
        }
        ResponseBody::Rejected { .. } => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            jp_pulse::counter_add("serve.rejected", 1);
        }
        _ => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            jp_pulse::counter_add("serve.errors", 1);
        }
    }
    jp_pulse::observe("serve.latency_us", micros);
    if job.reply.send(body).is_err() {
        // the handler is gone (its client vanished mid-request); the
        // answer is computed and recorded, just undeliverable
        shared.errors.fetch_add(1, Ordering::SeqCst);
        jp_pulse::counter_add("serve.errors", 1);
    }
}

/// Runs the requested solver rung. Jobs solve single-threaded
/// (`threads == 1` inside the solve): parallelism comes from jp-par
/// running many jobs at once, and a sequential solve per job is what
/// makes the memo counters of a fixed workload deterministic.
fn solve_body(
    g: &BipartiteGraph,
    algo: PebbleAlgo,
    memo: &Memo,
    cfg: &ServeConfig,
) -> ResponseBody {
    match algo {
        PebbleAlgo::Auto => match solve_with_memo_report(g, memo, 1) {
            Ok((scheme, rep)) => ResponseBody::Cost {
                cost: scheme.effective_cost(g) as u64,
                components: rep.components,
                served: rep.served(),
                fresh: rep.fresh,
                micros: 0,
            },
            Err(e) => ResponseBody::Error {
                reason: format!("solver error: {e}"),
            },
        },
        PebbleAlgo::Bb => match exact_bb::optimal_scheme_bb_par(g, cfg.budget, 1) {
            Ok(scheme) => {
                let components = u64::from(ComponentMap::new(g).count);
                ResponseBody::Cost {
                    cost: scheme.effective_cost(g) as u64,
                    components,
                    served: 0,
                    fresh: components,
                    micros: 0,
                }
            }
            Err(e @ PebbleError::BudgetExhausted { .. }) => ResponseBody::Rejected {
                reason: format!("{e}"),
            },
            Err(e) => ResponseBody::Error {
                reason: format!("solver error: {e}"),
            },
        },
    }
}
