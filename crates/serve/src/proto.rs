//! Versioned wire format for the jp-serve TCP service.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! +----------------------+--------------------------+
//! | length: u32 (BE)     | payload: `length` bytes  |
//! +----------------------+--------------------------+
//! ```
//!
//! The payload is a single JSON document (the same serde discipline the
//! workspace uses for traces and memo checkpoints), so a captured
//! conversation replays with any JSONL tooling once the frames are
//! stripped. The length prefix makes message boundaries explicit on a
//! stream socket: a reader never has to guess where one JSON document
//! ends and the next begins, and a partial write is detected as a short
//! frame instead of being misparsed.
//!
//! Versioning: [`Request::v`] / [`Response::v`] carry [`WIRE_VERSION`].
//! A server answers a request with an unknown version with
//! [`ResponseBody::Error`] naming both versions, never by guessing.
//!
//! Reading is poll-friendly: sockets used by the server carry a short
//! read timeout, and [`read_frame`] reports a timeout *before any byte
//! of a frame* as [`FrameRead::Idle`] so the caller can check its
//! shutdown flag and come back. A timeout *inside* a frame is retried
//! (bounded), because the bytes are already in flight.

use jp_graph::BipartiteGraph;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Version stamped into every frame payload; bump on any breaking
/// change to the message types below.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on a single frame payload. Large enough for any graph
/// the admission control would accept anyway, small enough that a
/// corrupt or hostile length prefix cannot OOM the server.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// How many consecutive timed-out reads *mid-frame* are tolerated
/// before the connection is declared stalled. With the server's 50 ms
/// read timeout this allows a peer roughly 10 s to finish a frame it
/// has started.
const MAX_MID_FRAME_STALLS: u32 = 200;

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Wire format version ([`WIRE_VERSION`]).
    pub v: u32,
    /// Client-chosen correlation id, echoed in the [`Response`].
    /// Scoped to one connection (the client numbers its own frames).
    pub id: u64,
    /// Process-unique tracing id minted by [`crate::Client`], carried
    /// into every jp-obs event the request causes server-side (the
    /// `request` field of schema v2) so `jp trace request <id>` can
    /// reconstruct its critical path.
    ///
    /// A *compatible* frame extension within [`WIRE_VERSION`] 1:
    /// field-lookup deserialization reads a missing key as `None` (old
    /// client → new server) and ignores unknown keys (new client → old
    /// server), so peers on either side of the extension interoperate.
    pub request: Option<u64>,
    /// What is being asked.
    pub body: RequestBody,
}

/// The request payload variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Liveness probe; answered with [`ResponseBody::Pong`].
    Ping,
    /// Plan a join graph: compute its effective pebbling cost.
    Pebble {
        /// The join graph to pebble.
        graph: BipartiteGraph,
        /// Which rung of the solver ladder to use.
        algo: PebbleAlgo,
    },
    /// Ask for server-lifetime counters and warm-store statistics.
    Stats,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,
}

/// Solver selection for a [`RequestBody::Pebble`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PebbleAlgo {
    /// The memoized portfolio: recognizers and the warm store first,
    /// the full race on a miss. This is what a planning service wants.
    Auto,
    /// Branch-and-bound exact search under the server's node budget;
    /// exhaustion is reported as a rejection, not an error.
    Bb,
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Wire format version ([`WIRE_VERSION`]).
    pub v: u32,
    /// The correlation id of the request being answered (0 when the
    /// request was too malformed to carry one).
    pub id: u64,
    /// The answer.
    pub body: ResponseBody,
}

/// The response payload variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answer to [`RequestBody::Ping`].
    Pong,
    /// A completed pebbling answer.
    Cost {
        /// Effective pebbling cost of the submitted graph.
        cost: u64,
        /// Connected components the graph decomposed into.
        components: u64,
        /// Components served by a recognizer or the warm store.
        served: u64,
        /// Components that ran the full solver ladder.
        fresh: u64,
        /// Server-side service time for this request, microseconds.
        micros: u64,
    },
    /// The request was refused by admission control (queue full, graph
    /// too large, budget exhausted, or the server is shutting down).
    /// The reason names the limit that fired.
    Rejected {
        /// Human-readable reason, naming the flag/limit involved.
        reason: String,
    },
    /// The request failed (malformed frame, version mismatch, solver
    /// error). The connection stays usable unless framing itself broke.
    Error {
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// Answer to [`RequestBody::Stats`].
    Stats {
        /// Entries currently in the warm memo store.
        entries: u64,
        /// Memo lookups served from the cache (validated hits).
        hits: u64,
        /// Memo lookups that found nothing usable.
        misses: u64,
        /// Memo lookups answered by a closed-form recognizer.
        recognized: u64,
        /// Pebble requests answered with a cost since startup.
        completed: u64,
        /// Requests refused by admission control since startup.
        rejected: u64,
        /// Requests that failed since startup.
        errors: u64,
    },
    /// Answer to [`RequestBody::Shutdown`], and to any request that
    /// arrives while the server is draining.
    ShuttingDown,
}

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// The read timed out before any byte of a new frame arrived; the
    /// connection is healthy, there is just nothing to read yet.
    Idle,
}

/// Whether an I/O error is a read-timeout (both kinds a timed-out
/// socket read can surface, depending on platform and socket mode).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads until `buf` holds `want` bytes. Returns `Ok(false)` when the
/// very first read of an empty `buf` reports EOF (clean close) or a
/// timeout (idle) — the caller distinguishes the two via `buf` still
/// being empty plus the returned `idle` flag in [`read_frame`].
fn fill(r: &mut impl Read, buf: &mut Vec<u8>, want: usize) -> io::Result<Fill> {
    let mut chunk = [0u8; 4096];
    let mut stalls = 0u32;
    while buf.len() < want {
        let need = (want - buf.len()).min(chunk.len());
        let dst = match chunk.get_mut(..need) {
            Some(d) => d,
            None => break, // unreachable: need ≤ chunk.len()
        };
        match r.read(dst) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(Fill::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => {
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Ok(Fill::Idle);
                }
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// Internal outcome of [`fill`].
enum Fill {
    /// `buf` holds `want` bytes.
    Full,
    /// EOF before the first byte.
    Eof,
    /// Timeout before the first byte.
    Idle,
}

/// Reads one length-prefixed frame. See [`FrameRead`] for the
/// non-error outcomes; errors mean the connection is no longer usable
/// (mid-frame close, stall, oversized length prefix, or a genuine I/O
/// failure).
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut header: Vec<u8> = Vec::with_capacity(4);
    match fill(r, &mut header, 4)? {
        Fill::Eof => return Ok(FrameRead::Eof),
        Fill::Idle => return Ok(FrameRead::Idle),
        Fill::Full => {}
    }
    let len = header
        .iter()
        .fold(0usize, |acc, &b| (acc << 8) | usize::from(b));
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload: Vec<u8> = Vec::with_capacity(len);
    loop {
        match fill(r, &mut payload, len)? {
            Fill::Full => return Ok(FrameRead::Frame(payload)),
            Fill::Eof if len == 0 => return Ok(FrameRead::Frame(payload)),
            Fill::Eof => {
                // the header arrived but the peer closed before the
                // first payload byte: a truncated frame, not a message
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            // the header already arrived, so the frame has started:
            // keep waiting for the payload under fill's stall budget
            Fill::Idle => {}
        }
    }
}

/// Writes one length-prefixed frame and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "refusing to write a {}-byte frame (cap {MAX_FRAME_BYTES})",
                payload.len()
            ),
        ));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Serializes `msg` and writes it as one frame.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let payload = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encoding frame: {e}")))?;
    write_frame(w, &payload)
}

/// Parses a frame payload as a [`Request`], enforcing the wire
/// version. The error string is what goes into the
/// [`ResponseBody::Error`] reply.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    let req: Request =
        serde_json::from_str(text).map_err(|e| format!("malformed request JSON: {e}"))?;
    if req.v != WIRE_VERSION {
        return Err(format!(
            "unsupported wire version {} (this server speaks {WIRE_VERSION})",
            req.v
        ));
    }
    Ok(req)
}

/// Parses a frame payload as a [`Response`], enforcing the wire
/// version.
pub fn parse_response(payload: &[u8]) -> Result<Response, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    let resp: Response =
        serde_json::from_str(text).map_err(|e| format!("malformed response JSON: {e}"))?;
    if resp.v != WIRE_VERSION {
        return Err(format!(
            "unsupported wire version {} (this client speaks {WIRE_VERSION})",
            resp.v
        ));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_graph::generators;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut r = io::Cursor::new(buf);
        for want in [&b"hello"[..], b"", b"world"] {
            match read_frame(&mut r).unwrap() {
                FrameRead::Frame(p) => assert_eq!(p, want),
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        assert!(matches!(read_frame(&mut r).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        // 0xFFFF_FFFF length prefix: must error out without trying to
        // read (or reserve) 4 GiB.
        let mut r = io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mid_frame_close_is_an_error_not_a_short_frame() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(9); // header + 5 of 12 payload bytes
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let g = generators::spider(4);
        let req = Request {
            v: WIRE_VERSION,
            id: 7,
            request: Some(1009),
            body: RequestBody::Pebble {
                graph: g,
                algo: PebbleAlgo::Auto,
            },
        };
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &req).unwrap();
        let mut r = io::Cursor::new(buf);
        let FrameRead::Frame(p) = read_frame(&mut r).unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(parse_request(&p).unwrap(), req);
    }

    #[test]
    fn responses_round_trip_through_the_wire_format() {
        let resp = Response {
            v: WIRE_VERSION,
            id: 9,
            body: ResponseBody::Cost {
                cost: 12,
                components: 3,
                served: 2,
                fresh: 1,
                micros: 480,
            },
        };
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &resp).unwrap();
        let mut r = io::Cursor::new(buf);
        let FrameRead::Frame(p) = read_frame(&mut r).unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(parse_response(&p).unwrap(), resp);
    }

    #[test]
    fn wrong_version_is_refused_with_both_versions_named() {
        let req = Request {
            v: WIRE_VERSION + 1,
            id: 1,
            request: None,
            body: RequestBody::Ping,
        };
        let payload = serde_json::to_vec(&req).unwrap();
        let err = parse_request(&payload).unwrap_err();
        assert!(err.contains(&format!("{}", WIRE_VERSION + 1)), "{err}");
        assert!(err.contains(&format!("{WIRE_VERSION}")), "{err}");
    }

    #[test]
    fn frames_without_the_request_field_still_parse() {
        // A frame from a client built before the tracing-id extension:
        // same wire version, no `request` key. Must parse with `None`,
        // not error — the extension is compatible, not breaking.
        let legacy = format!(r#"{{"v":{WIRE_VERSION},"id":3,"body":"Ping"}}"#);
        let req = parse_request(legacy.as_bytes()).unwrap();
        assert_eq!(req.id, 3);
        assert_eq!(req.request, None);
        assert_eq!(req.body, RequestBody::Ping);
    }

    #[test]
    fn unknown_request_keys_are_ignored_like_old_servers_do() {
        // The mirror direction: an old server reading a stamped frame
        // ignores the key it does not know. Our deserializer has the
        // same skip-unknown-keys semantics, demonstrated with a key no
        // build declares.
        let stamped =
            format!(r#"{{"v":{WIRE_VERSION},"id":4,"request":88,"zz_later":1,"body":"Ping"}}"#);
        let req = parse_request(stamped.as_bytes()).unwrap();
        assert_eq!(req.request, Some(88));
        assert_eq!(req.body, RequestBody::Ping);
    }

    #[test]
    fn garbage_payload_is_a_classified_error() {
        assert!(parse_request(b"not json")
            .unwrap_err()
            .contains("malformed"));
        let bad_utf8 = [0xC0u8, 0x80];
        assert!(parse_request(&bad_utf8).unwrap_err().contains("UTF-8"));
    }
}
