//! End-to-end tests for jp-serve: a real server on an ephemeral port,
//! real TCP clients from the loadgen, and the acceptance criteria of
//! the serving design checked directly — answer parity with the
//! sequential solver under concurrency, exact admission bounds, clean
//! drains, and a warm restart that serves from the checkpoint.

use jp_serve::loadgen::{expected_costs, query_pool, run_loadgen, LoadgenConfig};
use jp_serve::proto::{PebbleAlgo, Request, RequestBody, ResponseBody, WIRE_VERSION};
use jp_serve::{Client, ServeConfig, ServeReport, Server};
use std::path::PathBuf;

/// Binds a server on an ephemeral loopback port and runs it on a
/// spawned thread; returns the address and the join handle.
fn start_server(
    cfg: ServeConfig,
) -> (
    String,
    std::thread::JoinHandle<std::io::Result<ServeReport>>,
) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn concurrent_load_gets_sequential_answers_and_a_clean_drain() {
    let (addr, handle) = start_server(ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    });
    let cfg = LoadgenConfig {
        addr,
        clients: 8,
        requests: 15,
        verify: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg).expect("loadgen run");
    let served = handle.join().expect("server thread").expect("server run");

    // every single answer equals the sequential solver's answer
    assert_eq!(report.mismatches, 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.sent, 8 * 15);
    assert_eq!(report.ok, report.sent, "{report:?}");
    assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);

    // the two sides of the wire agree on what happened
    assert_eq!(served.completed, report.ok, "{served:?}");
    assert_eq!(served.cost_sum, report.cost_sum, "{served:?}");
    assert_eq!(served.errors, 0, "{served:?}");
    // 8 workload clients + the stats/shutdown probe connection
    assert_eq!(served.connections, 9, "{served:?}");
    assert!(
        served.drained,
        "shutdown must drain in-flight work: {served:?}"
    );
}

#[test]
fn oversized_graphs_are_rejected_with_the_flag_named() {
    let (addr, handle) = start_server(ServeConfig {
        max_edges: 5,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let big = jp_graph::generators::complete_bipartite(4, 4); // 16 edges
    let resp = client
        .request(RequestBody::Pebble {
            graph: big,
            algo: PebbleAlgo::Auto,
        })
        .expect("request");
    match resp.body {
        ResponseBody::Rejected { reason } => {
            assert!(reason.contains("--max-edges"), "{reason}");
            assert!(reason.contains("16"), "{reason}");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }
    let _ = client.request(RequestBody::Shutdown).expect("shutdown");
    let served = handle.join().expect("server thread").expect("server run");
    assert_eq!(served.rejected, 1, "{served:?}");
    assert_eq!(served.completed, 0, "{served:?}");
}

#[test]
fn the_pending_bound_rejects_rather_than_queueing_without_limit() {
    // max_pending = 0: no pebble job can ever claim a slot, so every
    // one must bounce with the admission reason — never hang, never
    // queue.
    let (addr, handle) = start_server(ServeConfig {
        max_pending: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr.as_str()).expect("connect");
    for _ in 0..3 {
        let resp = client
            .request(RequestBody::Pebble {
                graph: jp_graph::generators::spider(4),
                algo: PebbleAlgo::Auto,
            })
            .expect("request");
        match resp.body {
            ResponseBody::Rejected { reason } => {
                assert!(reason.contains("--max-pending"), "{reason}")
            }
            other => panic!("expected a rejection, got {other:?}"),
        }
    }
    let _ = client.request(RequestBody::Shutdown).expect("shutdown");
    let served = handle.join().expect("server thread").expect("server run");
    assert_eq!(served.rejected, 3, "{served:?}");
    assert!(served.drained, "{served:?}");
}

#[test]
fn budget_exhaustion_is_back_pressure_not_an_error() {
    let (addr, handle) = start_server(ServeConfig {
        budget: 1, // one node: any real bb search exhausts immediately
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let resp = client
        .request(RequestBody::Pebble {
            graph: jp_graph::generators::spider(6), // a 1-node budget cannot prove a spider
            algo: PebbleAlgo::Bb,
        })
        .expect("request");
    match resp.body {
        ResponseBody::Rejected { reason } => assert!(reason.contains("--budget"), "{reason}"),
        other => panic!("expected a budget rejection, got {other:?}"),
    }
    let _ = client.request(RequestBody::Shutdown).expect("shutdown");
    let served = handle.join().expect("server thread").expect("server run");
    assert_eq!((served.rejected, served.errors), (1, 0), "{served:?}");
}

#[test]
fn wire_version_mismatch_is_answered_not_dropped() {
    let (addr, handle) = start_server(ServeConfig::default());
    // speak the framing by hand so we can lie about the version
    let mut stream = std::net::TcpStream::connect(addr.as_str()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    let req = Request {
        v: WIRE_VERSION + 7,
        id: 3,
        request: None,
        body: RequestBody::Ping,
    };
    jp_serve::proto::write_message(&mut stream, &req).expect("write");
    let payload = match jp_serve::proto::read_frame(&mut stream).expect("read") {
        jp_serve::proto::FrameRead::Frame(p) => p,
        other => panic!("expected a frame, got {other:?}"),
    };
    let resp = jp_serve::proto::parse_response(&payload).expect("parse");
    match resp.body {
        ResponseBody::Error { reason } => {
            assert!(reason.contains("unsupported wire version"), "{reason}")
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    drop(stream);
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let _ = client.request(RequestBody::Shutdown).expect("shutdown");
    let served = handle.join().expect("server thread").expect("server run");
    assert_eq!(served.errors, 1, "{served:?}");
}

#[test]
fn warm_restart_serves_the_second_pass_from_the_checkpoint() {
    let dir = fresh_dir("warm");
    let memo_file = dir.join("memo.jsonl");

    // first lifetime: cold store, mixed workload, checkpoint at exit
    let (addr, handle) = start_server(ServeConfig {
        memo_file: Some(memo_file.clone()),
        ..ServeConfig::default()
    });
    let cfg = LoadgenConfig {
        addr,
        clients: 4,
        requests: 20,
        verify: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let first = run_loadgen(&cfg).expect("first loadgen");
    let served1 = handle.join().expect("server thread").expect("server run");
    assert_eq!(first.mismatches, 0, "{first:?}");
    assert!(memo_file.exists(), "checkpoint must be written at shutdown");
    assert!(served1.memo_entries > 0, "{served1:?}");

    // second lifetime: same checkpoint, same workload — the warm
    // store (plus recognizers) must serve ≥90% of lookups without
    // running the solver ladder, at identical answers
    let (addr2, handle2) = start_server(ServeConfig {
        memo_file: Some(memo_file.clone()),
        ..ServeConfig::default()
    });
    let cfg2 = LoadgenConfig { addr: addr2, ..cfg };
    let second = run_loadgen(&cfg2).expect("second loadgen");
    let served2 = handle2.join().expect("server thread").expect("server run");
    assert_eq!(second.mismatches, 0, "{second:?}");
    assert_eq!(
        second.cost_sum, first.cost_sum,
        "same workload, same answers"
    );
    assert!(served2.preloaded > 0, "{served2:?}");
    let snap = second.server.expect("final stats probe");
    assert!(
        snap.serve_rate() >= 0.90,
        "second pass must be served warm: rate {:.3}, {snap:?}",
        snap.serve_rate()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_tail_sampler_keeps_slow_requests_and_downsamples_fast_ones() {
    let dir = fresh_dir("xray");

    // first lifetime: a 0µs threshold makes every request an exemplar
    let slow_file = dir.join("all-slow.jsonl");
    let (addr, handle) = start_server(ServeConfig {
        slow_us: 0,
        xray_file: Some(slow_file.clone()),
        ..ServeConfig::default()
    });
    let cfg = LoadgenConfig {
        addr,
        clients: 2,
        requests: 5,
        verify: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg).expect("loadgen");
    let served = handle.join().expect("server thread").expect("server run");
    assert_eq!(report.mismatches, 0, "{report:?}");
    assert!(report.mismatch_requests.is_empty(), "{report:?}");
    // the client-side tail carries tracing ids to chase with
    // `jp trace request`
    assert!(!report.slowest_p99.is_empty(), "{report:?}");
    assert!(
        report.slowest_p99.iter().all(|s| s.request > 0),
        "{report:?}"
    );
    assert!(
        served.exemplars >= report.ok,
        "every pebble request must be an exemplar at slow_us=0: {served:?}"
    );
    assert_eq!(served.xray_dropped, 0, "{served:?}");
    let text = std::fs::read_to_string(&slow_file).expect("xray file");
    let roots = text
        .lines()
        .filter(|l| l.contains("\"component\":\"serve\"") && l.contains("\"name\":\"request\""))
        .count() as u64;
    assert_eq!(roots, served.completed, "one root span per answer: {text}");
    assert!(
        text.lines().all(|l| l.contains("\"request\":")),
        "the sampler only keeps request-stamped events"
    );

    // second lifetime: an unreachable threshold downsamples everything
    // to its root span — latency accounting survives, detail does not
    let fast_file = dir.join("all-fast.jsonl");
    let (addr2, handle2) = start_server(ServeConfig {
        slow_us: u64::MAX,
        xray_file: Some(fast_file.clone()),
        ..ServeConfig::default()
    });
    let cfg2 = LoadgenConfig { addr: addr2, ..cfg };
    let report2 = run_loadgen(&cfg2).expect("loadgen");
    let served2 = handle2.join().expect("server thread").expect("server run");
    assert_eq!(report2.errors, 0, "{report2:?}");
    assert_eq!(served2.exemplars, 0, "{served2:?}");
    assert!(served2.downsampled > 0, "{served2:?}");
    let text2 = std::fs::read_to_string(&fast_file).expect("xray file");
    assert_eq!(text2.lines().count() as u64, served2.completed, "{text2}");
    assert!(
        text2
            .lines()
            .all(|l| l.contains("\"name\":\"request\"") && l.contains("\"request\":")),
        "downsampled requests keep exactly their root span: {text2}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_verification_pool_is_deterministic_and_solvable() {
    // the loadgen's ground truth must itself be stable: same pool,
    // same costs, run to run
    let a = query_pool(8);
    let b = query_pool(8);
    assert_eq!(a, b);
    let ca = expected_costs(&a).expect("solve pool");
    let cb = expected_costs(&b).expect("solve pool");
    assert_eq!(ca, cb);
    assert!(ca.iter().all(|&c| c > 0), "{ca:?}");
}

#[test]
fn max_requests_bound_shuts_the_server_down_by_itself() {
    let (addr, handle) = start_server(ServeConfig {
        max_requests: 5,
        ..ServeConfig::default()
    });
    let cfg = LoadgenConfig {
        addr,
        clients: 2,
        requests: 10,
        verify: false,
        shutdown: false, // the server must stop on its own
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg).expect("loadgen");
    let served = handle.join().expect("server thread").expect("server run");
    assert!(served.completed >= 5, "{served:?}");
    assert!(served.drained, "{served:?}");
    // whatever was answered before the bound fired is correct
    assert_eq!(report.mismatches, 0, "{report:?}");
}
