//! E18 — page-fetch scheduling (the §2 related-work model of Merrett et
//! al. \[6\] and Neyer–Widmayer \[7\], reconstructed).

use crate::table::Table;
use jp_pebble::paging::{page_fetches, schedule_page_fetches, PageLayout};
use jp_pebble::{bounds, exact};
use jp_relalg::{equijoin_graph, realize, spatial_graph, workload, Relation};
use std::fmt::Write;

/// E18 — pebbling the page graph is page-fetch scheduling: clustered
/// layouts keep equijoin page graphs cheap and near-perfect, scattered
/// layouts densify them, and spatially-realized worst-case graphs stay
/// hard at page granularity too (the \[7\] phenomenon behind Theorem 4.2's
/// "even spatial" clause).
pub fn e18_page_scheduling() -> (String, bool) {
    let mut out = String::from(
        "## E18\n\n**Claim (paper, §2 related work).** The pebble game originates in \
         page-fetch scheduling: with a two-page buffer, pebbling the page graph *is* \
         the fetch schedule (π̂ = fetches), finding the optimal schedule is \
         NP-complete (\\[6\\]), and it stays NP-complete for spatial layouts \
         (\\[7\\]). Measured: layout quality controls both page-graph size and \
         schedule cost; the worst-case spider survives paging.\n\n",
    );
    let mut table = Table::new([
        "workload / layout",
        "tuple m",
        "page edges",
        "fetches",
        "fetches / page edge",
        "lower bnd (m_pg + β₀)",
    ]);
    let mut pass = true;

    // clustered vs scattered equijoin at two scales
    for (n, keys, cap, seed) in [(512usize, 16usize, 32usize, 401u64), (2_048, 64, 64, 402)] {
        let (r, s) = workload::zipf_equijoin(n, n, keys, 0.3, seed);
        let mut rv: Vec<i64> = r.values().iter().map(|v| v.as_int().unwrap()).collect();
        let mut sv: Vec<i64> = s.values().iter().map(|v| v.as_int().unwrap()).collect();
        rv.sort_unstable();
        sv.sort_unstable();
        let g =
            equijoin_graph(&Relation::from_ints("R", rv), &Relation::from_ints("S", sv)).unwrap();
        let nl = g.left_count() as usize;
        let nr = g.right_count() as usize;
        let layouts = [
            (
                "clustered (sorted)",
                PageLayout::sequential(nl, nr, cap).expect("page ids fit u32"),
            ),
            (
                "scattered (heap)",
                PageLayout::scattered(nl, nr, cap, seed).expect("page ids fit u32"),
            ),
        ];
        for (label, layout) in layouts {
            let (pg, scheme) = schedule_page_fetches(&g, &layout).expect("schedulable");
            scheme.validate(&pg).expect("valid schedule");
            let fetches = page_fetches(&scheme);
            let lb = bounds::lower_bound_total(&pg);
            pass &= fetches >= lb && fetches <= 2 * pg.edge_count().max(1);
            table.row([
                format!("equijoin n={n} / {label}"),
                g.edge_count().to_string(),
                pg.edge_count().to_string(),
                fetches.to_string(),
                format!("{:.3}", fetches as f64 / pg.edge_count().max(1) as f64),
                lb.to_string(),
            ]);
        }
    }

    // the worst-case family survives paging: pages of 2 tuples on G_n
    // reproduce a spider-shaped page graph
    let n = 64u32;
    let (r, s) = realize::spatial_spider_instance(n);
    let g = spatial_graph(&r, &s).unwrap();
    let layout = PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, 2)
        .expect("page ids fit u32");
    let (pg, scheme) = schedule_page_fetches(&g, &layout).expect("schedulable");
    scheme.validate(&pg).expect("valid");
    let fetches = page_fetches(&scheme);
    let lb = bounds::lower_bound_total(&pg);
    pass &= fetches >= lb;
    // paging cannot rescue the spider: the page graph is still not an
    // equijoin graph, so optimal scheduling stays in the NP-hard class
    // ([7]'s point behind Theorem 4.2's "even spatial" clause)
    pass &= !jp_graph::properties::is_equijoin_graph(&pg);
    table.row([
        format!("spatial G_{n} / tiles of 2"),
        g.edge_count().to_string(),
        pg.edge_count().to_string(),
        fetches.to_string(),
        format!("{:.3}", fetches as f64 / pg.edge_count() as f64),
        format!(
            "{lb} (equijoin-class: {})",
            jp_graph::properties::is_equijoin_graph(&pg)
        ),
    ]);

    // exact schedule on a small page graph validates the scheduler
    let (r, s) = workload::zipf_equijoin(48, 48, 6, 0.2, 403);
    let g = equijoin_graph(&r, &s).unwrap();
    let layout = PageLayout::scattered(48, 48, 12, 7).expect("page ids fit u32");
    let (pg, scheme) = schedule_page_fetches(&g, &layout).expect("schedulable");
    if pg.edge_count() <= exact::MAX_EXACT_EDGES {
        let opt = exact::optimal_total_cost(&pg).expect("small page graph");
        pass &= page_fetches(&scheme) >= opt;
        writeln!(
            out,
            "{}\nSmall scattered instance exactly solved: optimal schedule = {opt} \
             fetches, heuristic schedule = {} fetches.",
            table.render(),
            page_fetches(&scheme)
        )
        .unwrap();
    } else {
        out.push_str(&table.render());
    }
    out.push_str(
        "\nClustered equijoin layouts keep the page graph tiny and the schedule at \
         ~1 fetch per page edge; scattering the same tuples multiplies page edges \
         and fetches. The spider's page graph is still outside the equijoin class — \
         scheduling stays intrinsically hard for spatial joins, as \\[7\\] proved.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}
