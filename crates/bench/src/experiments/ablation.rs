//! E15 — ablation study of the design choices DESIGN.md §4 calls out:
//! how much does each rung of the solver ladder buy, and what does it
//! cost? Not a paper claim; an engineering complement to E5/E11.

use crate::table::Table;
use jp_graph::{generators, line_graph};
use jp_pebble::approx::{improve_or_opt, improve_two_opt, nearest_neighbor::nearest_neighbor_tour};
use jp_pebble::exact_bb::bb_min_jump_tour;
use jp_pebble::tsp::Tsp12;
use std::fmt::Write;

/// E15 — the improvement-ladder ablation: nearest neighbour → +2-opt →
/// +or-opt → branch and bound, measured as jump counts on random and
/// worst-case instances.
pub fn e15_ladder_ablation() -> (String, bool) {
    let mut out = String::from(
        "## E15\n\n**Claim (engineering ablation, not from the paper).** Each rung of \
         the solver ladder reduces jumps; branch and bound certifies the optimum \
         the local searches approach.\n\n",
    );
    let mut table = Table::new([
        "instance (m)",
        "nn",
        "nn+2opt",
        "nn+2opt+oropt",
        "path-cover",
        "matching-cover",
        "optimal (bb)",
    ]);
    let mut pass = true;
    let instances: Vec<(String, jp_graph::BipartiteGraph)> = vec![
        ("G_8 spider (16)".into(), generators::spider(8)),
        ("G_14 spider (28)".into(), generators::spider(14)),
        // sparse (near-tree) graphs have pendant edges and real jumps
        (
            "sparse 8×8 m=16".into(),
            generators::random_connected_bipartite(8, 8, 16, 5),
        ),
        (
            "sparse 10×10 m=20".into(),
            generators::random_connected_bipartite(10, 10, 20, 6),
        ),
        (
            "dense 6×6 m=18".into(),
            generators::random_connected_bipartite(6, 6, 18, 7),
        ),
    ];
    for (name, g) in instances {
        let lg = line_graph(&g);
        let tsp = Tsp12::new(lg.clone());
        let mut tour = nearest_neighbor_tour(&lg);
        let nn = tsp.tour_jumps(&tour);
        improve_two_opt(&tsp, &mut tour, 10);
        let two = tsp.tour_jumps(&tour);
        improve_or_opt(&tsp, &mut tour, 10);
        improve_two_opt(&tsp, &mut tour, 10);
        let oro = tsp.tour_jumps(&tour);
        let cover = jp_pebble::approx::pebble_path_cover(&g).unwrap().jumps(&g);
        let mcover = jp_pebble::approx::pebble_matching_cover(&g)
            .unwrap()
            .jumps(&g);
        let bb = bb_min_jump_tour(&lg, 200_000_000);
        let opt = bb.jumps();
        // monotonicity of the ladder + optimality dominance
        pass &= nn >= two && two >= oro && oro >= opt && cover >= opt && mcover >= opt;
        // the matching seed guarantees jumps <= m - 1 - nu(L(G))
        let nu = jp_graph::matching::maximum_matching(&lg).len();
        pass &= mcover <= g.edge_count() - 1 - nu;
        pass &= bb.is_optimal();
        table.row([
            name,
            nn.to_string(),
            two.to_string(),
            oro.to_string(),
            cover.to_string(),
            mcover.to_string(),
            format!("{opt}{}", if bb.is_optimal() { "" } else { "?" }),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nJump counts (π = m + jumps on connected graphs). 2-opt and or-opt close \
         most of the nearest-neighbour gap; the greedy path cover starts near-optimal; \
         branch and bound proves optimality far beyond Held–Karp's 20-edge memory \
         wall (G_14 has m = 28).\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}
