//! E22 — steady-state serving: the pebbling planner as a long-lived
//! service under sustained concurrent load.

use crate::table::Table;
use jp_serve::{run_loadgen, LoadgenConfig, LoadgenReport, ServeConfig, ServeReport, Server};
use std::fmt::Write;

/// One server lifetime under one loadgen run: bind an ephemeral
/// loopback port, drive it, join both sides.
fn round(cfg: ServeConfig, lg: LoadgenConfig) -> (LoadgenReport, ServeReport) {
    let server = Server::bind(cfg).expect("bind an ephemeral loopback port");
    let addr = server.local_addr().expect("local addr").to_string();
    let serving = std::thread::spawn(move || server.run());
    let report = run_loadgen(&LoadgenConfig { addr, ..lg }).expect("loadgen run");
    let served = serving.join().expect("server thread").expect("server run");
    (report, served)
}

fn row(table: &mut Table, phase: &str, lg: &LoadgenReport) {
    let throughput = if lg.wall_micros == 0 {
        0.0
    } else {
        lg.sent as f64 / (lg.wall_micros as f64 / 1e6)
    };
    table.row([
        phase.to_string(),
        lg.sent.to_string(),
        lg.ok.to_string(),
        lg.rejected.to_string(),
        lg.mismatches.to_string(),
        lg.p50_us.to_string(),
        lg.p99_us.to_string(),
        format!("{throughput:.0}"),
        lg.server
            .as_ref()
            .filter(|s| s.hits + s.recognized + s.misses > 0)
            .map_or("—".into(), |s| format!("{:.1}%", s.serve_rate() * 100.0)),
    ]);
}

/// E22 — a cold server lifetime, a warm restart from its checkpoint,
/// and a back-pressure lifetime, all under the Zipf-skewed loadgen mix
/// with every answer checked against the sequential solver.
pub fn e22_serving() -> (String, bool) {
    let mut out = String::from(
        "## E22\n\n**Claim (extension; §5 motivation).** A join planner is a service: \
         the same component shapes arrive over and over, so a long-lived server \
         over the solver ladder plus the canonical-form cache should sustain \
         concurrent load at planner-latency — every answer equal to the \
         sequential solver's, rejections (never unbounded queues) under \
         overload, and a warm restart that serves the repeat traffic from its \
         checkpoint.\n\n",
    );
    let memo_file = std::env::temp_dir().join(format!("jp-e22-memo-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&memo_file);
    let sustained = LoadgenConfig {
        clients: 8,
        requests: 50,
        verify: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let mut table = Table::new([
        "phase",
        "sent",
        "ok",
        "rejected",
        "mismatches",
        "p50 µs",
        "p99 µs",
        "req/s",
        "warm rate",
    ]);
    let mut pass = true;

    // cold lifetime: 8 concurrent clients, checkpoint written at exit
    let (cold, served_cold) = round(
        ServeConfig {
            threads: 4,
            memo_file: Some(memo_file.clone()),
            ..ServeConfig::default()
        },
        sustained.clone(),
    );
    row(&mut table, "cold, 8 clients × 50", &cold);
    pass &= cold.mismatches == 0 && cold.errors == 0 && cold.ok == cold.sent;
    pass &= served_cold.drained && served_cold.completed == cold.ok;

    // warm restart: same workload against the checkpoint just written
    let (warm, served_warm) = round(
        ServeConfig {
            threads: 4,
            memo_file: Some(memo_file.clone()),
            ..ServeConfig::default()
        },
        sustained.clone(),
    );
    row(&mut table, "warm restart, same mix", &warm);
    pass &= warm.mismatches == 0 && warm.errors == 0 && warm.ok == warm.sent;
    pass &= warm.cost_sum == cold.cost_sum && served_warm.preloaded > 0;
    let warm_rate = warm.server.as_ref().map_or(0.0, |s| s.serve_rate());
    pass &= warm_rate >= 0.90;

    // overload: a zero-slot dispatch queue must reject, not queue
    let (pressed, served_pressed) = round(
        ServeConfig {
            max_pending: 0,
            ..ServeConfig::default()
        },
        LoadgenConfig {
            clients: 2,
            requests: 5,
            verify: false,
            shutdown: true,
            ..LoadgenConfig::default()
        },
    );
    row(&mut table, "overload (max_pending 0)", &pressed);
    pass &= pressed.rejected == pressed.sent && pressed.errors == 0;
    pass &= served_pressed.drained && served_pressed.completed == 0;

    let _ = std::fs::remove_file(&memo_file);
    out.push_str(&table.render());
    let _ = write!(
        out,
        "\nEvery one of the {} answers under 8-way concurrency matched the \
         sequential solver, both lifetimes drained cleanly, and the warm \
         restart served {:.1}% of its lookups from the checkpoint plus the \
         closed-form recognizers without touching the solver ladder. Under \
         overload every request bounced with a classified rejection naming \
         the admission bound — back-pressure, not an unbounded queue. \
         Latency numbers are one measured run on one machine (like the wall \
         times below); the gated, deterministic counters for this workload \
         live in the `serve_loadgen` row of `BENCH_pebbling.json`.\n\n\
         **Verdict: {}**\n",
        cold.ok + warm.ok,
        warm_rate * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );
    (out, pass)
}
