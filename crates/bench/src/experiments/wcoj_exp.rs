//! E23 — worst-case-optimal multiway joins: the AGM bound holds
//! empirically, the engines agree with the binary cascade, and skew
//! opens the intermediate-tuple gap worst-case optimality eliminates.

use crate::table::Table;
use jp_relalg::{multiway_solve, query_join_graph, workload, MultiwayAlgo};
use std::fmt::Write;

/// E23 — Leapfrog Triejoin and generic join over trie indexes: on the
/// triangle, 4-clique, and bowtie queries every engine emits the same
/// sorted rows as the binary nested-loops cascade, the output never
/// exceeds the AGM fractional-cover bound, and on the adversarially
/// skewed triangle the cascade materializes ≥10x more intermediate
/// tuples than the worst-case-optimal engines — while the query join
/// graphs themselves stay in the paper's *easy* class (unions of
/// complete bipartite blocks, pebbled perfectly by the memo pipeline).
pub fn e23_wcoj() -> (String, bool) {
    let mut out = String::from(
        "## E23\n\n**Claim (extension; AGM 2008, Veldhuizen 2012, NPRR 2012).** \
         Worst-case-optimal multiway joins bound their *intermediate* work by \
         the AGM fractional-cover bound, which a binary join cascade cannot: \
         on a skewed triangle the cascade's intermediate result is quadratic \
         while LFTJ and generic join stay linear. Meanwhile each *pairwise* \
         join graph of these conjunctive queries is an equijoin graph, so the \
         paper's pebbling hierarchy places the per-pair page access problem in \
         the easy class — the multiway blowup is a property of the join \
         *plan*, not of the predicates.\n\n",
    );
    let mut table = Table::new([
        "workload",
        "algo",
        "rows",
        "AGM bound",
        "seeks",
        "intermediate",
        "vs cascade",
    ]);
    let mut pass = true;

    let instances = vec![
        (
            "triangle rand n=240",
            workload::triangle_random(240, 4, 902),
        ),
        ("triangle skew n=96", workload::triangle_skewed(96, 901)),
        ("4-clique rand n=160", workload::clique4_random(160, 3, 903)),
        ("bowtie rand n=160", workload::bowtie_random(160, 3, 904)),
    ];
    let mut skew_gap = 0.0_f64;
    for (label, (q, rels)) in &instances {
        let cascade = match multiway_solve(q, rels, MultiwayAlgo::Cascade, 1) {
            Ok(o) => o,
            Err(e) => {
                let _ = writeln!(out, "cascade failed on {label}: {e}");
                return (out, false);
            }
        };
        for algo in [
            MultiwayAlgo::Lftj,
            MultiwayAlgo::Generic,
            MultiwayAlgo::Cascade,
        ] {
            let res = match multiway_solve(q, rels, algo, 1) {
                Ok(o) => o,
                Err(e) => {
                    let _ = writeln!(out, "{} failed on {label}: {e}", algo.name());
                    return (out, false);
                }
            };
            // byte-identical sorted output across all engines
            pass &= res.rows == cascade.rows;
            // the empirical AGM bound
            pass &= res.rows.len() as f64 <= res.agm_bound;
            let gap = cascade.stats.intermediate as f64 / res.stats.intermediate.max(1) as f64;
            if *label == "triangle skew n=96" && algo == MultiwayAlgo::Lftj {
                skew_gap = gap;
            }
            table.row([
                label.to_string(),
                algo.name().into(),
                res.rows.len().to_string(),
                format!("{:.0}", res.agm_bound),
                res.stats.seeks.to_string(),
                res.stats.intermediate.to_string(),
                format!("{gap:.1}x"),
            ]);
        }
        // thread parity: 2 and 8 workers reproduce the single-thread rows
        for threads in [2, 8] {
            for algo in [MultiwayAlgo::Lftj, MultiwayAlgo::Generic] {
                pass &= multiway_solve(q, rels, algo, threads)
                    .map(|r| r.rows == cascade.rows)
                    .unwrap_or(false);
            }
        }
    }
    // the acceptance gate: ≥10x intermediate-tuple gap on the skewed triangle
    pass &= skew_gap >= 10.0;

    // the pebbling link: every query join graph is in the easy class
    let mut perfect = true;
    for (_, (q, rels)) in &instances {
        let Ok(g) = query_join_graph(q, rels) else {
            perfect = false;
            break;
        };
        let (g, _, _) = g.strip_isolated();
        perfect &= jp_graph::properties::is_equijoin_graph(&g);
        let memo = jp_pebble::memo::Memo::new();
        perfect &= jp_pebble::memo::memoized_effective_cost(&g, &memo, 1)
            .map(|c| c == g.edge_count())
            .unwrap_or(false);
    }
    pass &= perfect;

    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nAll three engines emit byte-identical sorted rows (also at 2 and 8 \
         threads) and never exceed the AGM bound. On the skewed triangle the \
         cascade materializes {skew_gap:.0}x the intermediate tuples of LFTJ — \
         the quadratic-vs-linear separation worst-case optimality removes. \
         Every pairwise join graph is an equijoin graph pebbled perfectly \
         (π = m) through the memo pipeline: per-pair page scheduling is easy \
         even when the binary join *plan* is catastrophically worse than the \
         multiway one.",
    );
    let _ = writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    );
    (out, pass)
}
