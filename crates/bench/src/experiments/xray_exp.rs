//! E24 — request x-ray: end-to-end blame for individual requests under
//! the Zipf serving mix, reconstructed from the trace and from the
//! tail-sampled exemplar sidecar.

use crate::table::Table;
use jp_serve::{run_loadgen, LoadgenConfig, ServeConfig, Server};
use jp_trace::{read_trace, reconstruct, reconstruct_all};
use std::fmt::Write;
use std::sync::Arc;

/// E24 — one traced server lifetime under the skewed loadgen mix: every
/// request carries a wire-minted tracing id, the full `--trace` capture
/// reconstructs per-request critical paths with queue/solve/memo/wcoj/
/// wire blame, and the tail sampler's sidecar alone suffices to
/// reconstruct the requests the loadgen flagged as slowest.
pub fn e24_xray() -> (String, bool) {
    let mut out = String::from(
        "## E24\n\n**Claim (extension; observability).** Aggregate percentiles cannot \
         answer \"why was *this* request slow\" once one process runs many \
         concurrent solves. With a request id minted at the client, carried \
         on the wire, and stamped into every jp-obs event the request \
         touches, the trace reconstructs each request's cross-thread \
         critical path and splits its latency into queue / solve / memo / \
         wcoj / wire blame — and a bounded tail sampler keeps slow-request \
         detail at full fidelity without keeping the full trace.\n\n",
    );
    let pid = std::process::id();
    let trace_file = std::env::temp_dir().join(format!("jp-e24-trace-{pid}.jsonl"));
    let xray_file = std::env::temp_dir().join(format!("jp-e24-xray-{pid}.jsonl"));

    // One lifetime, both captures at once: the full trace through a
    // stacked jp-obs tap (the experiment harness already owns the
    // scoped sink; taps compose with it), the exemplar sidecar through
    // the server's own tap.
    let sink = Arc::new(jp_obs::JsonlSink::to_file(&trace_file).expect("create trace file"));
    let tap = jp_obs::set_tap(sink);
    let server = Server::bind(ServeConfig {
        threads: 4,
        slow_us: 250,
        xray_file: Some(xray_file.clone()),
        xray_ring: 64,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr().expect("local addr").to_string();
    let serving = std::thread::spawn(move || server.run());
    let lg = run_loadgen(&LoadgenConfig {
        addr,
        clients: 6,
        requests: 40,
        verify: true,
        shutdown: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    let served = serving.join().expect("server thread").expect("server run");
    drop(tap);

    let mut pass = lg.mismatches == 0 && lg.errors == 0 && lg.ok == lg.sent;
    pass &= served.exemplars >= 1 && served.xray_dropped == 0;

    // Full-trace reconstruction: every request id seen, blame for the
    // slowest. The only INCOMPLETE requests a healthy run may contain
    // are rootless non-solve frames (the stats and shutdown requests).
    let (events, _report) = read_trace(&trace_file).expect("read trace");
    let summary = reconstruct_all(&events);
    pass &= summary.requests >= lg.sent && summary.complete_pct >= 95;

    let mut table = Table::new([
        "request (slowest first)",
        "total µs",
        "queue µs",
        "solve µs",
        "memo µs",
        "wcoj µs",
        "wire µs",
        "reconstruction",
    ]);
    for t in summary.traces.iter().take(5) {
        table.row([
            t.request.to_string(),
            t.total_us.to_string(),
            t.blame.queue_us.to_string(),
            t.blame.solve_us.to_string(),
            t.blame.memo_us.to_string(),
            t.blame.wcoj_us.to_string(),
            t.blame.wire_us.to_string(),
            if t.complete() {
                "COMPLETE"
            } else {
                "INCOMPLETE"
            }
            .to_string(),
        ]);
    }

    // Sidecar self-containment: the ids the loadgen names as slowest
    // must reconstruct COMPLETE from the tail sampler's file alone —
    // exemplars at full detail, downsampled requests as a root span.
    let (side_events, _side_report) = read_trace(&xray_file).expect("read xray sidecar");
    let mut sidecar_complete = 0usize;
    for slow in &lg.slowest_p99 {
        match reconstruct(&side_events, slow.request) {
            Some(t) if t.complete() => sidecar_complete += 1,
            _ => pass = false,
        }
    }

    out.push_str(&table.render());
    let _ = write!(
        out,
        "\n{} of the {} stamped requests reconstruct COMPLETE from the full \
         trace ({}%; the remainder are rootless stats/shutdown frames, which \
         carry no solve window by design). The tail sampler kept {} \
         exemplar(s) at full detail and downsampled {} request(s) to their \
         root span, dropping {}; all {} loadgen-flagged slowest-p99 ids \
         reconstruct COMPLETE from the sidecar file alone, so slow-request \
         forensics survive without retaining the full trace. Latencies are \
         one measured run on one machine.\n\n\
         **Verdict: {}**\n",
        summary.complete,
        summary.requests,
        summary.complete_pct,
        served.exemplars,
        served.downsampled,
        served.xray_dropped,
        sidecar_complete,
        if pass { "PASS" } else { "FAIL" }
    );
    let _ = std::fs::remove_file(&trace_file);
    let _ = std::fs::remove_file(&xray_file);
    (out, pass)
}
