//! E16 — the implied pebbling cost of real join algorithms.
//!
//! §2: "any join algorithm has to consider this pair of tuples at some
//! point of time in its execution", so every algorithm's access pattern
//! *is* a pebbling scheme. The paper remarks that the optimal equijoin
//! pebbling "is similar to the merge phase of sort-merge join"
//! (Theorem 4.1) and that the abstract model "does not model all of the
//! costs in a join algorithm (although the merge phase of a sort-merge
//! join does in some sense resemble this pebbling game)". This
//! experiment measures exactly that resemblance.

use crate::table::Table;
use jp_pebble::analysis::implied_scheme;
use jp_pebble::bounds;
use jp_relalg::{equijoin_graph, trace, workload};
use std::fmt::Write;

/// E16 — implied pebbling cost (`π̂(trace)` against the `m + β₀ … 2m`
/// window) of nested loops, hash join, and both sort-merge variants on
/// equijoin workloads.
pub fn e16_implied_costs() -> (String, bool) {
    let mut out = String::from(
        "## E16\n\n**Claim (paper, §2 + Thm 4.1 remark).** Every join algorithm's \
         access pattern implies a pebbling scheme; the merge phase of sort-merge \
         join resembles the optimal equijoin pebbling. Measured: the boustrophedon \
         merge *is* optimal (π = m); the textbook forward merge and hash join pay \
         per-group rescans; nested loops approaches the 2m worst case.\n\n",
    );
    let mut table = Table::new([
        "workload",
        "m",
        "π̂ optimal",
        "π̂ sort-merge (boustrophedon)",
        "π̂ sort-merge (forward)",
        "π̂ hash join",
        "π̂ unordered exec",
        "2m ceiling",
    ]);
    let mut pass = true;
    for (n, keys, theta, seed) in [
        (120usize, 12usize, 0.6f64, 201u64),
        (400, 30, 0.9, 202),
        (1_000, 40, 1.1, 203),
    ] {
        let (r, s) = workload::zipf_equijoin(n, n, keys, theta, seed);
        let g = equijoin_graph(&r, &s).unwrap();
        let m = g.edge_count();
        let b0 = jp_graph::betti_number(&g) as usize;
        let optimal = m + b0; // Theorem 3.2: π = m, so π̂ = m + β₀
        let cost = |t: trace::Trace| -> Result<usize, jp_pebble::PebbleError> {
            let scheme = implied_scheme(&g, &t)?;
            scheme.validate(&g)?;
            Ok(scheme.cost())
        };
        let bst = cost(trace::sort_merge_boustrophedon(&r, &s)).expect("valid trace");
        let fwd = cost(trace::sort_merge_forward(&r, &s)).expect("valid trace");
        let hash = cost(trace::hash_join_trace(&r, &s)).expect("valid trace");
        let unord = cost(trace::unordered_executor_trace(&r, &s, seed)).expect("valid trace");
        // the paper's claims, as inequalities
        pass &= bst == optimal; // boustrophedon merge is the Thm 4.1 optimum
        pass &= fwd >= bst && hash >= bst && unord >= hash;
        for c in [bst, fwd, hash, unord] {
            pass &= c >= bounds::lower_bound_total(&g);
            pass &= c <= bounds::upper_bound_total(&g); // Lemma 2.1: ≤ 2m
        }
        // the unordered executor should sit near the 2m ceiling
        pass &= unord as f64 >= 1.8 * m as f64;
        table.row([
            format!("zipf n={n} θ={theta}"),
            m.to_string(),
            optimal.to_string(),
            bst.to_string(),
            fwd.to_string(),
            hash.to_string(),
            unord.to_string(),
            (2 * m).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nπ̂ is the total pebble-move count of each algorithm's actual access \
         pattern. The boustrophedon merge meets the optimum exactly (Theorem 4.1's \
         construction *is* that merge); the forward merge pays one jump per rescan; \
         an unordered RID-pair executor lands near Lemma 2.1's 2m ceiling. The model prices tuple revisits, not hashing — \
         which is the paper's point about what the pebble game does and does not \
         measure.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}
