//! E17 — the §5 open problem, measured: fragment mappings for
//! parallel/memory-constrained joins.

use crate::table::Table;
use jp_graph::{generators, BipartiteGraph};
use jp_pebble::fragmentation::{
    balanced_capacity, component_pack, connected_lower_bound, exact_min_investigated, local_search,
};
use jp_relalg::{equijoin_graph, workload};
use std::fmt::Write;

/// E17 — fragment-mapping costs across predicates: equijoin join graphs
/// shatter into components and pack near the diagonal; the connected
/// worst-case graphs that only containment/spatial joins can produce are
/// pinned at `used_left + used_right − 1` sub-joins. Exact optima verify
/// the heuristics on tiny instances (the problem is NP-complete, §5).
pub fn e17_fragmentation() -> (String, bool) {
    let mut out = String::from(
        "## E17\n\n**Claim (paper, §5).** Finding the optimal mapping of tuples into \
         fragments R₁…R_p, S₁…S_q (minimizing scheduled sub-joins) is NP-complete \
         for all three predicate classes, but equijoins are conjectured to \
         approximate well. Measured: component packing is optimal or near-optimal \
         on every tested equijoin instance, while connected worst-case graphs \
         (containment/spatial-only) are forced to ~2× more sub-joins by the \
         contraction lower bound.\n\n",
    );
    let mut pass = true;

    // Part 1: exhaustive optima on tiny instances.
    let mut t1 = Table::new([
        "instance",
        "p×q",
        "caps",
        "exact",
        "component-pack",
        "+local",
        "lower bnd",
    ]);
    let tiny: Vec<(String, BipartiteGraph, u32, u32)> = vec![
        (
            "matching(4) [equijoin]".into(),
            generators::matching(4),
            2,
            2,
        ),
        (
            "2×K_{2,2} [equijoin]".into(),
            generators::complete_bipartite(2, 2)
                .disjoint_union(&generators::complete_bipartite(2, 2)),
            2,
            2,
        ),
        (
            "G_3 spider [⊆/spatial only]".into(),
            generators::spider(3),
            2,
            2,
        ),
        ("path(6) [⊆/spatial only]".into(), generators::path(6), 2, 2),
        (
            "K_{3,3} split [any]".into(),
            generators::complete_bipartite(3, 3),
            2,
            2,
        ),
    ];
    for (name, g, p, q) in tiny {
        let cap_l = balanced_capacity(g.left_count() as usize, p);
        let cap_r = balanced_capacity(g.right_count() as usize, q);
        let (_, exact) = exact_min_investigated(&g, p, q, cap_l, cap_r);
        let packed = component_pack(&g, p, q, cap_l, cap_r);
        packed
            .validate(&g, cap_l, cap_r)
            .expect("heuristic respects capacity");
        let pc = packed.cost(&g);
        let improved = local_search(&g, packed, cap_l, cap_r, 6).cost(&g);
        let lb = connected_lower_bound(&g, cap_l, cap_r);
        pass &= exact >= lb && pc >= exact && improved >= exact && improved <= pc;
        t1.row([
            name,
            format!("{p}×{q}"),
            format!("{cap_l}/{cap_r}"),
            exact.to_string(),
            pc.to_string(),
            improved.to_string(),
            lb.to_string(),
        ]);
    }
    out.push_str(&t1.render());

    // Part 2: the conjecture at scale — equijoin workloads pack near the
    // per-fragment minimum; connected spiders cannot.
    let mut t2 = Table::new([
        "workload",
        "m",
        "p×q",
        "sub-joins (pack+local)",
        "connected lower bnd",
        "p·q (naive grid)",
    ]);
    for (n, keys, p, q, seed) in [
        (300usize, 150usize, 4u32, 4u32, 301u64),
        (800, 400, 6, 6, 302),
    ] {
        let (r, s) = workload::zipf_equijoin(n, n, keys, 0.7, seed);
        let g = equijoin_graph(&r, &s).unwrap();
        let cap_l = balanced_capacity(g.left_count() as usize, p) + 8; // slack
        let cap_r = balanced_capacity(g.right_count() as usize, q) + 8;
        let m0 = component_pack(&g, p, q, cap_l, cap_r);
        m0.validate(&g, cap_l, cap_r).expect("valid");
        let cost = local_search(&g, m0, cap_l, cap_r, 2).cost(&g);
        // equijoin: many small components pack into few pairs — well
        // below the full grid and near the diagonal
        pass &= cost <= (p + q) as usize;
        t2.row([
            format!("equijoin zipf n={n}"),
            g.edge_count().to_string(),
            format!("{p}×{q}"),
            cost.to_string(),
            connected_lower_bound(&g, cap_l, cap_r).to_string(),
            (p * q).to_string(),
        ]);
    }
    for (n, p, q) in [(24u32, 4u32, 4u32), (60, 6, 6)] {
        let g = generators::spider(n);
        let cap_l = balanced_capacity(g.left_count() as usize, p);
        let cap_r = balanced_capacity(g.right_count() as usize, q);
        let m0 = component_pack(&g, p, q, cap_l, cap_r);
        let cost = local_search(&g, m0, cap_l, cap_r, 2).cost(&g);
        let lb = connected_lower_bound(&g, cap_l, cap_r);
        // connected: at least p + q − 1 sub-joins
        pass &= lb >= (p + q - 1) as usize && cost >= lb;
        t2.row([
            format!("G_{n} spider (⊆/spatial)"),
            g.edge_count().to_string(),
            format!("{p}×{q}"),
            cost.to_string(),
            lb.to_string(),
            (p * q).to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\nEquijoin graphs shatter into complete-bipartite components, so whole \
         components pack into few fragment pairs (supporting the paper's \
         conjecture); a connected worst-case graph contracts onto a connected \
         quotient, forcing ≥ used_left + used_right − 1 sub-joins no matter how \
         tuples are mapped.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}
