//! E5, E6, E10, E11: the algorithmic claims of §3–§4.

use crate::table::Table;
use jp_graph::generators;
use jp_pebble::approx::{
    pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_nearest_neighbor,
    pebble_path_cover,
};
use jp_pebble::exact;
use jp_relalg::{equijoin_graph, workload};
use std::fmt::Write;
use std::time::Instant;

fn report_header(id: &str, claim: &str) -> String {
    format!("## {id}\n\n**Claim (paper).** {claim}\n\n")
}

fn verdict_line(out: &mut String, pass: bool) {
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
}

/// E5 — Theorem 3.1 / Lemma 3.1: the DFS-partition construction pebbles
/// every connected bipartite graph within `⌈1.25m⌉`, across sizes and
/// densities; the heuristic ladder (Euler trails, path cover, nearest
/// neighbour) is measured alongside.
pub fn e5_dfs_partition() -> (String, bool) {
    let mut out = report_header(
        "E5",
        "Any connected bipartite graph can be pebbled with π ≤ 1.25m, constructively \
         (DFS tree of L(G), twin elimination, path peeling).",
    );
    let mut table = Table::new([
        "k×l, m",
        "π(dfs)/m",
        "π(euler)/m",
        "π(cover)/m",
        "π(nn)/m",
        "dfs ≤ 1.25m",
    ]);
    let mut pass = true;
    let shapes = [
        (10u32, 10u32, 25usize),
        (20, 20, 60),
        (40, 40, 110),
        (60, 60, 150),
        (25, 100, 200),
        (80, 80, 400),
        (100, 100, 1_000),
    ];
    for (i, &(k, l, m)) in shapes.iter().enumerate() {
        let g = generators::random_connected_bipartite(k, l, m, 1_000 + i as u64);
        let run = |s: Result<jp_pebble::PebblingScheme, _>| -> f64 {
            let s = s.expect("pebbler succeeds");
            debug_assert!(s.validate(&g).is_ok());
            s.effective_cost(&g) as f64 / m as f64
        };
        let dfs = run(pebble_dfs_partition(&g));
        let euler = run(pebble_euler_trails(&g));
        let cover = run(pebble_path_cover(&g));
        let nn = run(pebble_nearest_neighbor(&g));
        let ok = dfs * (m as f64) <= (5.0 * m as f64 / 4.0).ceil() + 1e-9;
        pass &= ok;
        table.row([
            format!("{k}×{l}, {m}"),
            format!("{dfs:.4}"),
            format!("{euler:.4}"),
            format!("{cover:.4}"),
            format!("{nn:.4}"),
            ok.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe guaranteed construction respects 1.25m everywhere; the unguaranteed \
         heuristics often do better on random graphs but carry no worst-case bound \
         (the spider family of E8 defeats nearest-neighbour, for example).\n",
    );
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E6 — Lemma 3.2 / Theorem 3.2: equijoin join graphs (from real Zipf
/// workloads through the hash-join graph builder) always pebble
/// perfectly: `π = m`, `π̂ = m + β₀`.
pub fn e6_equijoin_perfect() -> (String, bool) {
    let mut out = report_header(
        "E6",
        "The join graph of an equijoin can always be pebbled perfectly: π(G) = m \
         (every component is complete bipartite; boustrophedon order).",
    );
    let mut table = Table::new([
        "|R|,|S|", "keys", "θ", "m", "β₀", "π̂", "π", "π/m", "perfect",
    ]);
    let mut pass = true;
    for (n, keys, theta, seed) in [
        (100usize, 20usize, 0.0f64, 11u64),
        (300, 40, 0.5, 12),
        (1_000, 100, 1.0, 13),
        (3_000, 50, 1.2, 14),
        (10_000, 1_000, 0.8, 15),
    ] {
        let (r, s) = workload::zipf_equijoin(n, n, keys, theta, seed);
        let g = equijoin_graph(&r, &s).unwrap();
        let m = g.edge_count();
        let scheme = pebble_equijoin(&g).expect("equijoin graph");
        let ok = scheme.validate(&g).is_ok() && scheme.effective_cost(&g) == m;
        pass &= ok;
        table.row([
            format!("{n},{n}"),
            keys.to_string(),
            format!("{theta:.1}"),
            m.to_string(),
            jp_graph::betti_number(&g).to_string(),
            scheme.cost().to_string(),
            scheme.effective_cost(&g).to_string(),
            format!("{:.3}", scheme.effective_cost(&g) as f64 / m as f64),
            ok.to_string(),
        ]);
    }
    out.push_str(&table.render());
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E10 — Theorem 4.1: the equijoin pebbler runs in linear time — wall
/// time per edge stays flat across three orders of magnitude (and the
/// Euler-trail pebbler matches on general graphs).
pub fn e10_linear_time() -> (String, bool) {
    let mut out = report_header(
        "E10",
        "PEBBLE can be solved in linear time for equijoin graphs (Theorem 4.1).",
    );
    let mut table = Table::new([
        "m",
        "equijoin pebble ms",
        "ns/edge",
        "euler pebble ms",
        "ns/edge",
    ]);
    let mut per_edge: Vec<f64> = Vec::new();
    for exp in [3u32, 4, 5, 6] {
        let m_target = 10usize.pow(exp);
        // many K_{5,20} components (100 edges each), built in one pass
        let comps = (m_target / 100) as u32;
        let mut edges = Vec::with_capacity(m_target);
        for c in 0..comps {
            for i in 0..5u32 {
                for j in 0..20u32 {
                    edges.push((c * 5 + i, c * 20 + j));
                }
            }
        }
        let g = jp_graph::BipartiteGraph::new(comps * 5, comps * 20, edges);
        let m = g.edge_count();
        let t0 = Instant::now();
        let s = pebble_equijoin(&g).expect("equijoin graph");
        let dt = t0.elapsed();
        assert_eq!(s.effective_cost(&g), m);
        let ns_edge = dt.as_nanos() as f64 / m as f64;
        per_edge.push(ns_edge);
        let t1 = Instant::now();
        let s2 = pebble_euler_trails(&g).expect("pebbler succeeds");
        let dt2 = t1.elapsed();
        assert!(s2.effective_cost(&g) >= m);
        table.row([
            m.to_string(),
            format!("{:.2}", dt.as_secs_f64() * 1e3),
            format!("{ns_edge:.0}"),
            format!("{:.2}", dt2.as_secs_f64() * 1e3),
            format!("{:.0}", dt2.as_nanos() as f64 / m as f64),
        ]);
    }
    // linearity: per-edge time at 10^6 within 8x of per-edge time at 10^3
    // (slack for cache effects on a shared machine)
    let pass = per_edge.last().unwrap() / per_edge.first().unwrap() < 8.0;
    out.push_str(&table.render());
    out.push_str("\nPer-edge cost stays flat across 10³–10⁶ edges: linear time.\n");
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E11 — Theorem 4.2 (NP-completeness, empirically): exact `PEBBLE`
/// explodes exponentially with `m` while the 1.25-approximation stays
/// linear — on *spatial-overlap join graphs* (every instance here is
/// spatially realized per Lemma 3.4's machinery and re-derived from the
/// geometry before solving).
pub fn e11_exact_scaling() -> (String, bool) {
    let mut out = report_header(
        "E11",
        "PEBBLE(D) is NP-complete, even for spatial-overlap join graphs (Theorem 4.2). \
         Empirical signature: exact solving is exponential in m; approximation is not.",
    );
    let mut table = Table::new([
        "m (spatial join graph)",
        "exact ms",
        "approx ms",
        "π exact",
        "π approx",
    ]);
    let mut times: Vec<f64> = Vec::new();
    let mut pass = true;
    for m in [12usize, 14, 16, 18, 20] {
        let g0 = generators::random_connected_bipartite(5, 5, m, 42 + m as u64);
        // realize spatially, then recover the join graph from geometry
        let (r, s) = jp_relalg::realize::spatial_universal_instance(&g0);
        let g = jp_relalg::spatial_graph(&r, &s).unwrap();
        assert_eq!(g, g0, "spatial realization must reproduce the graph");
        let t0 = Instant::now();
        let pi = exact::optimal_effective_cost(&g).expect("within solver limit");
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        times.push(exact_ms);
        let t1 = Instant::now();
        let approx = pebble_dfs_partition(&g).unwrap().effective_cost(&g);
        let approx_ms = t1.elapsed().as_secs_f64() * 1e3;
        pass &= approx >= pi && (approx as f64) <= 1.25 * m as f64 + 1.0;
        table.row([
            m.to_string(),
            format!("{exact_ms:.2}"),
            format!("{approx_ms:.3}"),
            pi.to_string(),
            approx.to_string(),
        ]);
    }
    // exponential growth: time roughly quadruples per +2 edges; require
    // the last/first ratio to exceed 16 (theory: 2^8 = 256)
    let growth = times.last().unwrap() / times.first().unwrap().max(1e-3);
    pass &= growth > 16.0;
    out.push_str(&table.render());
    writeln!(
        out,
        "\nExact-time growth ratio across m = 12 → 20: {growth:.0}× (Held–Karp is \
         Θ(2^m·m·Δ); a polynomial algorithm would contradict Theorem 4.2 unless P = NP)."
    )
    .unwrap();
    verdict_line(&mut out, pass);
    (out, pass)
}
