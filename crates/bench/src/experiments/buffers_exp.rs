//! E21 — the `B`-buffer generalization: the paper's worst case is a
//! two-pebble artifact.

use crate::table::Table;
use jp_graph::generators;
use jp_pebble::buffers::{lower_bound, schedule_greedy};
use jp_pebble::families;
use std::fmt::Write;

/// E21 — buffer-size sweep over the paper's extreme families: the spider
/// collapses to the every-vertex-once floor at `B = 3`; the dense
/// complete-bipartite family needs `B = min(k, l) + 1`; costs are
/// monotone in `B` and never beat the floor.
pub fn e21_buffer_sweep() -> (String, bool) {
    let mut out = String::from(
        "## E21\n\n**Claim (extension; the paper fixes B = 2).** The two-pebble game is \
         the B = 2 instance of buffer scheduling. Sweeping B shows the 1.25m − 1 \
         worst case is specific to two pebbles: G_n reaches the |V| floor at \
         B = 3, while dense K_{k,k} needs B = k + 1 — memory, not predicate \
         structure, separates them once B > 2.\n\n",
    );
    let mut table = Table::new([
        "graph",
        "m",
        "|V| floor",
        "B=2",
        "B=3",
        "B=5",
        "B=8",
        "first floor B",
    ]);
    let mut pass = true;
    let cases: Vec<(String, jp_graph::BipartiteGraph)> = vec![
        ("G_8 spider".into(), generators::spider(8)),
        ("G_32 spider".into(), generators::spider(32)),
        ("K_{4,4}".into(), generators::complete_bipartite(4, 4)),
        ("K_{6,6}".into(), generators::complete_bipartite(6, 6)),
        (
            "random 8×8 m=24".into(),
            generators::random_connected_bipartite(8, 8, 24, 9),
        ),
    ];
    for (name, g) in cases {
        let floor = lower_bound(&g);
        let mut costs = Vec::new();
        let mut floor_at = None;
        let mut prev = usize::MAX;
        for b in [2usize, 3, 5, 7, 8, 16, 33] {
            let s = schedule_greedy(&g, b).expect("schedulable");
            s.validate(&g, b).expect("valid schedule");
            let c = s.cost();
            pass &= c >= floor && c <= prev;
            prev = c;
            if c == floor && floor_at.is_none() {
                floor_at = Some(b);
            }
            if [2, 3, 5, 8].contains(&b) {
                costs.push(c);
            }
        }
        table.row([
            name.clone(),
            g.edge_count().to_string(),
            floor.to_string(),
            costs[0].to_string(),
            costs[1].to_string(),
            costs[2].to_string(),
            costs[3].to_string(),
            floor_at.map_or("—".into(), |b| b.to_string()),
        ]);
        if name.contains("spider") {
            // Theorem 3.3 at B = 2…
            pass &= costs[0] >= families::spider_optimal_cost(g.right_count() as u64) as usize;
            // …and the floor already at B = 3
            pass &= costs[1] == floor;
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nAt B = 2 the schedule is a pebbling and the spider pays its Theorem 3.3 \
         premium; one extra buffer slot pins the hub and the premium vanishes. \
         K_{k,k} instead holds its reloads until a whole side fits (B = k + 1). \
         The paper's separation is about the two-pebble regime — which is exactly \
         the regime its page-fetch ancestry (\\[6\\]) models.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}
