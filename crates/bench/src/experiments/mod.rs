//! The per-claim experiments (E1–E14 of DESIGN.md §3).
//!
//! Each experiment is a pure function producing a report: the paper's
//! claim, a measurement table, and a PASS/FAIL verdict. Experiments must
//! be deterministic (fixed seeds) so `EXPERIMENTS.md` is reproducible.

mod ablation;
mod algorithms;
mod bounds_exp;
mod buffers_exp;
mod census;
mod comparison;
mod fragmentation_exp;
mod paging_exp;
mod realization;
mod reductions_exp;
mod serve_exp;
mod traces_exp;
mod wcoj_exp;
mod xray_exp;

/// A runnable experiment: id, title, and the report generator.
pub struct Experiment {
    /// Identifier (e.g. "E5"), matching DESIGN.md §3.
    pub id: &'static str,
    /// Paper artifact reproduced.
    pub title: &'static str,
    /// Runs the experiment, returning a markdown report. The boolean is
    /// the PASS verdict.
    pub run: fn() -> (String, bool),
}

/// All experiments, in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            title: "Lemma 2.1 / Cor 2.1 / Lemma 2.3: cost bounds",
            run: bounds_exp::e1_bounds,
        },
        Experiment {
            id: "E2",
            title: "Lemma 2.2: additivity over disjoint unions",
            run: bounds_exp::e2_additivity,
        },
        Experiment {
            id: "E3",
            title: "Lemma 2.4: matchings cost 2m total, m effective",
            run: bounds_exp::e3_matchings,
        },
        Experiment {
            id: "E4",
            title: "Propositions 2.1/2.2: pebbling = TSP over L(G)",
            run: bounds_exp::e4_tsp_correspondence,
        },
        Experiment {
            id: "E5",
            title: "Theorem 3.1 / Lemma 3.1: 1.25m upper bound, constructively",
            run: algorithms::e5_dfs_partition,
        },
        Experiment {
            id: "E6",
            title: "Lemma 3.2 / Theorem 3.2: equijoins pebble perfectly",
            run: algorithms::e6_equijoin_perfect,
        },
        Experiment {
            id: "E7",
            title: "Lemma 3.3: set-containment joins are universal",
            run: realization::e7_containment_universal,
        },
        Experiment {
            id: "E8",
            title: "Theorem 3.3 + Fig 1: the G_n family needs 1.25m − 1",
            run: realization::e8_spider_worst_case,
        },
        Experiment {
            id: "E9",
            title: "Lemma 3.4: spatial realization of G_n (and beyond)",
            run: realization::e9_spatial_realization,
        },
        Experiment {
            id: "E10",
            title: "Theorem 4.1: equijoin pebbling in linear time",
            run: algorithms::e10_linear_time,
        },
        Experiment {
            id: "E11",
            title: "Theorem 4.2: exact PEBBLE is exponential in practice",
            run: algorithms::e11_exact_scaling,
        },
        Experiment {
            id: "E12",
            title: "Theorem 4.3 + Fig 2: TSP-4(1,2) → TSP-3(1,2) L-reduction",
            run: reductions_exp::e12_tsp4_to_tsp3,
        },
        Experiment {
            id: "E13",
            title: "Theorem 4.4: TSP-3(1,2) → PEBBLE L-reduction",
            run: reductions_exp::e13_tsp3_to_pebble,
        },
        Experiment {
            id: "E14",
            title: "§1/§5: equijoins easiest, spatial/containment hardest",
            run: comparison::e14_predicate_comparison,
        },
        Experiment {
            id: "E15",
            title: "Ablation: improvement ladder vs branch-and-bound optimum",
            run: ablation::e15_ladder_ablation,
        },
        Experiment {
            id: "E16",
            title: "Implied pebbling cost of real join algorithms (§2, Thm 4.1 remark)",
            run: traces_exp::e16_implied_costs,
        },
        Experiment {
            id: "E17",
            title: "§5 open problem: optimal fragment mappings",
            run: fragmentation_exp::e17_fragmentation,
        },
        Experiment {
            id: "E18",
            title: "Page-fetch scheduling: the related-work model reconstructed",
            run: paging_exp::e18_page_scheduling,
        },
        Experiment {
            id: "E19",
            title: "Exhaustive extremal census of small join graphs",
            run: census::e19_extremal_census,
        },
        Experiment {
            id: "E20",
            title: "Extending the hierarchy: band, inequality, and overlap joins",
            run: census::e20_other_predicates,
        },
        Experiment {
            id: "E21",
            title: "B-buffer sweep: the worst case is a two-pebble artifact",
            run: buffers_exp::e21_buffer_sweep,
        },
        Experiment {
            id: "E22",
            title: "Steady-state serving: the planner as a service under load",
            run: serve_exp::e22_serving,
        },
        Experiment {
            id: "E23",
            title: "Worst-case-optimal multiway joins: AGM bound and the skew gap",
            run: wcoj_exp::e23_wcoj,
        },
        Experiment {
            id: "E24",
            title: "Request x-ray: per-request blame and tail-sampled exemplars",
            run: xray_exp::e24_xray,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 24);
        for (i, e) in exps.iter().enumerate() {
            assert_eq!(e.id, format!("E{}", i + 1));
        }
    }

    // Each experiment's full run is exercised by the `experiments` binary
    // and the integration suite; here we smoke-test the fast ones.
    #[test]
    fn fast_experiments_pass() {
        for e in all_experiments() {
            if ["E2", "E3", "E7", "E8"].contains(&e.id) {
                let (report, pass) = (e.run)();
                assert!(pass, "{} failed:\n{report}", e.id);
                assert!(report.contains(e.id));
            }
        }
    }
}
