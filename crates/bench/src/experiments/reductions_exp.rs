//! E12, E13: the §4 L-reductions, verified on exhaustively solved
//! instances.

use crate::table::Table;
use jp_graph::generators;
use jp_pebble::exact::{self, min_jump_tour};
use jp_pebble::reductions::{diamond::Diamond, tsp3_to_pebble, tsp4_to_tsp3};
use jp_pebble::tsp::Tsp12;
use std::fmt::Write;

fn report_header(id: &str, claim: &str) -> String {
    format!("## {id}\n\n**Claim (paper).** {claim}\n\n")
}

fn verdict_line(out: &mut String, pass: bool) {
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
}

/// E12 — Theorem 4.3: the diamond-gadget L-reduction TSP-4(1,2) →
/// TSP-3(1,2). Gadget properties are verified exhaustively; the α and
/// β = 1 inequalities are checked on exactly solved random instances.
pub fn e12_tsp4_to_tsp3() -> (String, bool) {
    let mut out = report_header(
        "E12",
        "TSP-3(1,2) is MAX-SNP-complete: L-reduction from TSP-4(1,2) by replacing every \
         degree-4 node with a diamond gadget (α = #gadget nodes, β = 1).",
    );
    let mut pass = true;
    // Gadget certification (Figure 2 stand-in; see DESIGN.md for the
    // documented deviation on property (b)).
    let d = Diamond::new();
    let prop_a = (0..4)
        .flat_map(|a| (0..4).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b)
        .all(|(a, b)| {
            let p = d.corner_path(a, b);
            jp_graph::hamilton::is_hamiltonian_path(d.graph(), &p)
        });
    let prop_c = d.no_two_disjoint_corner_paths_cover();
    let deg_ok = (0..4).all(|c| d.graph().degree(c) <= 2)
        && (4..d.graph().vertex_count()).all(|v| d.graph().degree(v) <= 3);
    pass &= prop_a && prop_c && deg_ok;
    writeln!(
        out,
        "Gadget (9 nodes, 4 corners): corner-pair Hamiltonian paths (property a): \
         {prop_a}; no two disjoint corner paths cover it (property c): {prop_c}; \
         degree bounds: {deg_ok}.\n"
    )
    .unwrap();
    let mut table = Table::new([
        "seed",
        "n(G)/m(G)",
        "deg4 nodes",
        "OPT(G)",
        "OPT(H)",
        "≤ 9·OPT(G)",
        "fwd jumps kept",
        "β=1 holds",
    ]);
    let mut tested = 0;
    for seed in 0..40u64 {
        let ones = generators::random_bounded_degree(5, 4, 8, seed);
        if !ones.is_connected() || ones.max_degree() < 4 {
            continue;
        }
        let g = Tsp12::new(ones);
        let red = tsp4_to_tsp3::reduce(&g);
        if red.h().n() > 20 {
            continue;
        }
        tested += 1;
        let (g_tour, gj) = min_jump_tour(g.ones());
        let opt_g = g.n() - 1 + gj;
        let (h_opt, hj) = min_jump_tour(red.h().ones());
        let opt_h = red.h().n() - 1 + hj;
        let alpha_ok = opt_h <= red.alpha() * opt_g;
        let fwd = red.forward_tour(&g_tour, &g);
        let fwd_ok = red.h().tour_jumps(&fwd) == gj;
        // β = 1 on the optimal H tour and the forward tour
        let mut beta_ok = true;
        for s in [h_opt, fwd.clone()] {
            let cost_s = red.h().tour_cost(&s);
            let back = red.back_tour(&s);
            let cost_back = g.tour_cost(&back);
            beta_ok &= cost_back.saturating_sub(opt_g) <= cost_s - opt_h;
        }
        let ok = alpha_ok && fwd_ok && beta_ok;
        pass &= ok;
        let deg4 = (0..g.ones().vertex_count())
            .filter(|&v| g.ones().degree(v) == 4)
            .count();
        table.row([
            seed.to_string(),
            format!("{}/{}", g.n(), g.ones().edge_count()),
            deg4.to_string(),
            opt_g.to_string(),
            opt_h.to_string(),
            alpha_ok.to_string(),
            fwd_ok.to_string(),
            beta_ok.to_string(),
        ]);
        if tested >= 10 {
            break;
        }
    }
    pass &= tested >= 5;
    out.push_str(&table.render());
    writeln!(
        out,
        "\n{tested} connected instances with a degree-4 node, exactly solved on both \
         sides. `fwd jumps kept` is the OPT(H) ≤ α·OPT(G) construction (the forward \
         tour threads each diamond corner-to-corner without new jumps); `β=1 holds` \
         checks cost(g(s)) − OPT(G) ≤ cost(s) − OPT(H)."
    )
    .unwrap();
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E13 — Theorem 4.4: the incidence-graph L-reduction TSP-3(1,2) →
/// PEBBLE, with forward (tour → scheme) and backward (scheme → tour)
/// constructions verified on exactly solved instances.
pub fn e13_tsp3_to_pebble() -> (String, bool) {
    let mut out = report_header(
        "E13",
        "PEBBLE is MAX-SNP-complete: L-reduction from TSP-3(1,2) via the incidence \
         graph B (X = V, Y = E); L(B) is G with vertices blown into cliques (α = 3, β = 1).",
    );
    let mut table = Table::new([
        "seed",
        "n/m (G)",
        "OPT_tsp(G)",
        "π(B)",
        "π(B)/OPT",
        "fwd jumps kept",
        "β=1 holds",
    ]);
    let mut pass = true;
    let mut tested = 0;
    let mut max_ratio = 0.0f64;
    for seed in 0..60u64 {
        let ones = generators::random_bounded_degree(6, 3, 8, seed);
        if !ones.is_connected() {
            continue;
        }
        let g = Tsp12::new(ones);
        let red = tsp3_to_pebble::reduce(&g);
        if red.b().edge_count() > 18 {
            continue;
        }
        tested += 1;
        let (g_tour, gj) = min_jump_tour(g.ones());
        let opt_g = g.n() - 1 + gj;
        let opt_b = exact::optimal_effective_cost(red.b()).unwrap();
        let ratio = opt_b as f64 / opt_g as f64;
        max_ratio = max_ratio.max(ratio);
        let fwd = red.forward_scheme(&g_tour).unwrap();
        let fwd_ok = fwd.validate(red.b()).is_ok() && fwd.jumps(red.b()) == gj;
        let mut beta_ok = true;
        for s in [exact::optimal_scheme(red.b()).unwrap(), fwd.clone()] {
            let cost_s = s.effective_cost(red.b());
            let back = red.back_tour(&s);
            let cost_back = g.tour_cost(&back);
            beta_ok &= cost_back.saturating_sub(opt_g) <= cost_s - opt_b;
        }
        let ok = fwd_ok && beta_ok && ratio <= 3.2;
        pass &= ok;
        table.row([
            seed.to_string(),
            format!("{}/{}", g.n(), g.ones().edge_count()),
            opt_g.to_string(),
            opt_b.to_string(),
            format!("{ratio:.2}"),
            fwd_ok.to_string(),
            beta_ok.to_string(),
        ]);
        if tested >= 12 {
            break;
        }
    }
    pass &= tested >= 6;
    out.push_str(&table.render());
    writeln!(
        out,
        "\n{tested} connected TSP-3(1,2) instances, both sides solved exactly. Measured \
         max π(B)/OPT(G) = {max_ratio:.2} (paper's α = 3; jump-free maximum-density \
         instances carry +2 absolute slack — see DESIGN.md). The forward construction \
         (sweep each vertex's incidence clique, chaining through shared edge-vertices) \
         preserves jump counts exactly; β = 1 holds on optimal and constructed schemes."
    )
    .unwrap();
    verdict_line(&mut out, pass);
    (out, pass)
}
