//! E14: the paper's headline narrative, measured end to end.
//!
//! "Our results show that equijoins are the easiest of all joins … By
//! contrast, spatial-overlap and set-containment joins are the hardest
//! joins." We drive matched-output-size workloads through the real join
//! pipeline (relations → join algorithm → join graph → pebbler) for all
//! three predicates and compare (i) the achievable pebbling ratio `π/m`
//! and (ii) which pebbler is even *applicable*.

use crate::table::Table;
use jp_graph::properties;
use jp_pebble::approx::{
    pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_path_cover,
};
use jp_pebble::{bounds, exact};
use jp_relalg::{containment_graph, equijoin_graph, realize, spatial_graph, workload};
use std::fmt::Write;

/// E14 — the predicate-difficulty comparison.
pub fn e14_predicate_comparison() -> (String, bool) {
    let mut out = "## E14\n\n**Claim (paper).** Equijoins are the easiest of all joins \
         (perfect pebbling, found in linear time); spatial-overlap and \
         set-containment joins are the hardest (instances at the 1.25m − 1 \
         worst case; optimal pebbling NP-complete and MAX-SNP-complete).\n\n"
        .to_string();
    let mut table = Table::new([
        "predicate / workload",
        "m",
        "equijoin-graph?",
        "π(best found)/m",
        "lower bnd/m",
        "worst case π/m",
    ]);
    let mut pass = true;

    // --- equijoin: Zipf workload
    let (r, s) = workload::zipf_equijoin(500, 500, 60, 0.9, 77);
    let g = equijoin_graph(&r, &s).unwrap();
    let m = g.edge_count();
    let scheme = pebble_equijoin(&g).expect("equijoin graph");
    let ratio = scheme.effective_cost(&g) as f64 / m as f64;
    pass &= ratio == 1.0;
    table.row([
        "equality / Zipf(0.9) keys".to_string(),
        m.to_string(),
        "yes".into(),
        format!("{ratio:.3}"),
        "1.000".into(),
        "1.000 (Thm 3.2)".into(),
    ]);

    // --- set containment: planted workload, plus the realized worst case
    let (r, s) = workload::set_workload(120, 80, 400, 3..=6, 8..=14, 0.7, 78);
    let g = containment_graph(&r, &s).unwrap();
    let (g, _, _) = g.strip_isolated();
    let m = g.edge_count();
    let best = best_heuristic_ratio(&g);
    let lb = bounds::best_lower_bound(&g) as f64 / m as f64;
    pass &= !properties::is_equijoin_graph(&g);
    table.row([
        "⊆ / planted containments".to_string(),
        m.to_string(),
        if properties::is_equijoin_graph(&g) {
            "yes"
        } else {
            "no"
        }
        .to_string(),
        format!("{best:.3}"),
        format!("{lb:.3}"),
        "1.25 (Thm 3.3 + L3.3)".into(),
    ]);

    let (r, s) = realize::set_containment_instance(&jp_graph::generators::spider(8));
    let g = containment_graph(&r, &s).unwrap();
    let m = g.edge_count();
    let pi = exact::optimal_effective_cost(&g).unwrap();
    let ratio = pi as f64 / m as f64;
    pass &= (ratio - (1.25 - 1.0 / m as f64)).abs() < 1e-9;
    table.row([
        "⊆ / realized G_8 (worst case)".to_string(),
        m.to_string(),
        "no".into(),
        format!("{ratio:.3} (exact)"),
        format!("{:.3}", bounds::best_lower_bound(&g) as f64 / m as f64),
        "1.25 − 1/m, attained".into(),
    ]);

    // --- spatial overlap: uniform rectangles, plus realized worst case
    let ru = workload::uniform_rects(250, 2_000, 60, 79);
    let su = workload::uniform_rects(250, 2_000, 60, 80);
    let g = spatial_graph(&ru, &su).unwrap();
    let (g, _, _) = g.strip_isolated();
    let m = g.edge_count();
    let best = best_heuristic_ratio(&g);
    let lb = bounds::best_lower_bound(&g) as f64 / m as f64;
    table.row([
        "overlap / uniform rects".to_string(),
        m.to_string(),
        if properties::is_equijoin_graph(&g) {
            "yes"
        } else {
            "no"
        }
        .to_string(),
        format!("{best:.3}"),
        format!("{lb:.3}"),
        "1.25 (Thm 3.1 + L3.4)".into(),
    ]);

    let (r, s) = realize::spatial_spider_instance(8);
    let g = spatial_graph(&r, &s).unwrap();
    let m = g.edge_count();
    let pi = exact::optimal_effective_cost(&g).unwrap();
    let ratio = pi as f64 / m as f64;
    pass &= (ratio - (1.25 - 1.0 / m as f64)).abs() < 1e-9;
    table.row([
        "overlap / realized G_8 (worst case)".to_string(),
        m.to_string(),
        "no".into(),
        format!("{ratio:.3} (exact)"),
        format!("{:.3}", bounds::best_lower_bound(&g) as f64 / m as f64),
        "1.25 − 1/m, attained".into(),
    ]);

    out.push_str(&table.render());
    out.push_str(
        "\nThe separation the paper proves shows up end to end: equijoin join graphs \
         pebble at exactly 1.0 in linear time; spatial and containment joins admit \
         graphs that *no* algorithm — regardless of running time — pebbles below \
         1.25 − 1/m, and their typical workloads sit strictly above 1.0 while \
         equijoins never do.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}

/// Best effective-cost ratio over the heuristic ladder.
fn best_heuristic_ratio(g: &jp_graph::BipartiteGraph) -> f64 {
    let m = g.edge_count() as f64;
    [
        pebble_dfs_partition(g).unwrap().effective_cost(g),
        pebble_euler_trails(g).unwrap().effective_cost(g),
        pebble_path_cover(g).unwrap().effective_cost(g),
    ]
    .into_iter()
    .min()
    .unwrap() as f64
        / m
}
