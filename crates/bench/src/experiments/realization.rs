//! E7, E8, E9: the realization results (§3.2, §3.3, Figure 1).

use crate::table::Table;
use jp_graph::{generators, properties};
use jp_pebble::approx::{pebble_dfs_partition, pebble_euler_trails, pebble_nearest_neighbor};
use jp_pebble::{exact, families};
use jp_relalg::predicate::{SetContainment, SpatialOverlap};
use jp_relalg::{algorithms, containment_graph, join_graph, realize, spatial_graph};
use std::fmt::Write;

fn report_header(id: &str, claim: &str) -> String {
    format!("## {id}\n\n**Claim (paper).** {claim}\n\n")
}

fn verdict_line(out: &mut String, pass: bool) {
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
}

/// E7 — Lemma 3.3: every bipartite graph is the join graph of a
/// set-containment instance (`r_i = {i}`, `s_j = {i : (r_i, s_j) ∈ E}`);
/// round-trip through the real containment-join algorithms.
pub fn e7_containment_universal() -> (String, bool) {
    let mut out = report_header(
        "E7",
        "Given any bipartite graph G, there is a set-containment join instance whose \
         join graph is G (Lemma 3.3).",
    );
    let mut table = Table::new([
        "graph",
        "|R|×|S|",
        "m",
        "rebuilt = G (index)",
        "rebuilt = G (naive)",
        "equijoin-realizable",
    ]);
    let mut pass = true;
    let cases: Vec<(String, jp_graph::BipartiteGraph)> = vec![
        ("G_4 (spider)".into(), generators::spider(4)),
        ("G_8".into(), generators::spider(8)),
        ("path(9)".into(), generators::path(9)),
        ("cycle(5)".into(), generators::cycle(5)),
        ("K_{4,4}".into(), generators::complete_bipartite(4, 4)),
        (
            "random(8,9,p=.3;21)".into(),
            generators::random_bipartite(8, 9, 0.3, 21),
        ),
        (
            "random(12,12,p=.15;22)".into(),
            generators::random_bipartite(12, 12, 0.15, 22),
        ),
        (
            "random(30,30,p=.08;23)".into(),
            generators::random_bipartite(30, 30, 0.08, 23),
        ),
    ];
    for (name, g) in cases {
        let (r, s) = realize::set_containment_instance(&g);
        let fast = containment_graph(&r, &s).unwrap() == g;
        let naive = join_graph(&r, &s, &SetContainment).unwrap() == g;
        // signature and inverted-index join algorithms agree too
        let pairs_inv = algorithms::containment::inverted_index(&r, &s);
        let pairs_sig = algorithms::containment::signature(&r, &s);
        let agree = pairs_inv == g.edges().to_vec() && pairs_sig == g.edges().to_vec();
        let ok = fast && naive && agree;
        pass &= ok;
        table.row([
            name,
            format!("{}×{}", g.left_count(), g.right_count()),
            g.edge_count().to_string(),
            fast.to_string(),
            naive.to_string(),
            properties::is_equijoin_graph(&g).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nEvery graph round-trips, including graphs no equijoin can produce \
         (`equijoin-realizable = false` rows) — the universality that pins \
         set-containment joins to the general-graph worst case.\n",
    );
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E8 — Theorem 3.3 + Figure 1: `π(G_n) = 1.25m − 1` (even `n`): exact
/// solving for small `n`, closed form + explicit witness + pendant
/// lower-bound certificate at scale.
pub fn e8_spider_worst_case() -> (String, bool) {
    let mut out = report_header(
        "E8",
        "There is a family {G_n} with π(G_n) = 1.25m − 1 (m = 2n) — the worst case \
         over all join graphs (Theorem 3.3, Figure 1).",
    );
    let mut table = Table::new([
        "n",
        "m",
        "π (method)",
        "1.25m − 1",
        "lower-bound cert",
        "ok",
    ]);
    let mut pass = true;
    for n in 3..=8u32 {
        let g = generators::spider(n);
        let m = 2 * n as usize;
        let pi = exact::optimal_effective_cost(&g).unwrap();
        let target = families::spider_optimal_cost(n as u64) as usize;
        let cert = jp_pebble::bounds::pendant_lower_bound(&g);
        let ok = pi == target && cert == target;
        pass &= ok;
        table.row([
            n.to_string(),
            m.to_string(),
            format!("{pi} (exact)"),
            if n % 2 == 0 {
                format!("{}", 5 * m / 4 - 1)
            } else {
                format!("{:.1}→⌈{}⌉", 1.25 * m as f64 - 1.0, target)
            },
            cert.to_string(),
            ok.to_string(),
        ]);
    }
    for n in [100u32, 10_000, 200_000] {
        let (g, s) = families::spider_optimal_scheme(n);
        let m = 2 * n as usize;
        let target = families::spider_optimal_cost(n as u64) as usize;
        let cert = jp_pebble::bounds::pendant_lower_bound(&g);
        let ok = s.effective_cost(&g) == target && cert == target && s.validate(&g).is_ok();
        pass &= ok;
        table.row([
            n.to_string(),
            m.to_string(),
            format!("{} (witness)", s.effective_cost(&g)),
            if n % 2 == 0 {
                format!("{}", 5 * m / 4 - 1)
            } else {
                format!("{target}")
            },
            cert.to_string(),
            ok.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe pendant (B⁺/B⁻) certificate equals the witness cost, so optimality is \
         proven — not searched — at every scale. Odd n rounds the paper's 1.25m − 1 \
         up to the integer optimum m + ⌈n/2⌉ − 1.\n",
    );
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E9 — Lemma 3.4: the `G_n` family is realizable as a spatial-overlap
/// join (plain rectangles); with rectilinear comb regions, *any*
/// bipartite graph is — checked through all four spatial join algorithms.
pub fn e9_spatial_realization() -> (String, bool) {
    let mut out = report_header(
        "E9",
        "There is a family of spatial-overlap join instances whose join graphs are the \
         G_n of Figure 1 (Lemma 3.4); hence spatial joins also hit the 1.25m − 1 worst \
         case and are not equijoin-reducible.",
    );
    let mut table = Table::new([
        "instance",
        "m",
        "sweep=naive",
        "pbsm=naive",
        "rtree=naive",
        "graph = target",
    ]);
    let mut pass = true;
    for n in [3u32, 5, 8, 16] {
        let (r, s) = realize::spatial_spider_instance(n);
        let target = generators::spider(n);
        let naive = algorithms::spatial::naive(&r, &s);
        let ok_sweep = algorithms::spatial::sweep(&r, &s) == naive;
        let ok_pbsm = algorithms::spatial::pbsm(&r, &s) == naive;
        let ok_rtree = algorithms::spatial::rtree(&r, &s) == naive;
        let ok_graph = spatial_graph(&r, &s).unwrap() == target
            && join_graph(&r, &s, &SpatialOverlap).unwrap() == target;
        let ok = ok_sweep && ok_pbsm && ok_rtree && ok_graph;
        pass &= ok;
        table.row([
            format!("G_{n} as rectangles"),
            (2 * n).to_string(),
            ok_sweep.to_string(),
            ok_pbsm.to_string(),
            ok_rtree.to_string(),
            ok_graph.to_string(),
        ]);
    }
    for (seed, k, l, p) in [
        (31u64, 7u32, 8u32, 0.3f64),
        (32, 12, 10, 0.2),
        (33, 20, 20, 0.1),
    ] {
        let g0 = generators::random_bipartite(k, l, p, seed);
        let (r, s) = realize::spatial_universal_instance(&g0);
        let naive = algorithms::spatial::naive(&r, &s);
        let ok_sweep = algorithms::spatial::sweep(&r, &s) == naive;
        let ok_pbsm = algorithms::spatial::pbsm(&r, &s) == naive;
        let ok_rtree = algorithms::spatial::rtree(&r, &s) == naive;
        let ok_graph = spatial_graph(&r, &s).unwrap() == g0;
        let ok = ok_sweep && ok_pbsm && ok_rtree && ok_graph;
        pass &= ok;
        table.row([
            format!("random({k},{l},p={p}) as combs"),
            g0.edge_count().to_string(),
            ok_sweep.to_string(),
            ok_pbsm.to_string(),
            ok_rtree.to_string(),
            ok_graph.to_string(),
        ]);
    }
    // the realized worst case really costs 1.25m − 1 under exact pebbling,
    // and defeats greedy heuristics
    let (r, s) = realize::spatial_spider_instance(8);
    let g = spatial_graph(&r, &s).unwrap();
    let pi = exact::optimal_effective_cost(&g).unwrap();
    let nn = pebble_nearest_neighbor(&g).unwrap().effective_cost(&g);
    let dfs = pebble_dfs_partition(&g).unwrap().effective_cost(&g);
    let euler = pebble_euler_trails(&g).unwrap().effective_cost(&g);
    let m = g.edge_count();
    pass &= pi == 5 * m / 4 - 1;
    writeln!(
        out,
        "{}\nPebbling the spatially-realized G_8 (m = {m}): exact π = {pi} \
         (= 1.25m − 1 = {}), dfs-partition = {dfs}, euler-trails = {euler}, \
         nearest-neighbour = {nn}.",
        table.render(),
        5 * m / 4 - 1
    )
    .unwrap();
    verdict_line(&mut out, pass);
    (out, pass)
}
