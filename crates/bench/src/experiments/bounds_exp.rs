//! E1–E4: the §2 cost-model claims.

use crate::table::Table;
use jp_graph::{betti_number, generators, line_graph};
use jp_pebble::{bounds, exact, families, scheme::PebblingScheme, tsp};
use std::fmt::Write;

fn report_header(id: &str, claim: &str) -> String {
    format!("## {id}\n\n**Claim (paper).** {claim}\n\n")
}

fn verdict_line(out: &mut String, pass: bool) {
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
}

/// E1 — Lemma 2.1, Corollary 2.1, Lemma 2.3: for every graph,
/// `m + β₀ ≤ π̂ ≤ 2m` and `m ≤ π ≤ 2m − 1` per connected component,
/// checked exhaustively over all connected bipartite graphs on a 3×3
/// vertex grid with up to 9 edges, plus Theorem 3.1's `π ≤ ⌈1.25m⌉ − 1`.
pub fn e1_bounds() -> (String, bool) {
    let mut out = report_header(
        "E1",
        "m + 1 ≤ π̂(G) ≤ 2m for connected G with m edges; m ≤ π(G) ≤ 2m − 1; \
         and (Theorem 3.1) π(G) ≤ 1.25m − 1 for connected bipartite G.",
    );
    let mut table = Table::new(["m", "graphs", "min π", "max π", "max π/m", "all in bounds"]);
    let mut pass = true;
    for m in 1..=7usize {
        let graphs: Vec<_> = generators::enumerate_bipartite(3, 3, m)
            .into_iter()
            .filter(|g| betti_number(g) == 1)
            .collect();
        if graphs.is_empty() {
            continue;
        }
        let mut min_pi = usize::MAX;
        let mut max_pi = 0usize;
        let mut ok = true;
        for g in &graphs {
            let pi = exact::optimal_effective_cost(g).expect("small instance");
            let pi_hat = exact::optimal_total_cost(g).expect("small instance");
            min_pi = min_pi.min(pi);
            max_pi = max_pi.max(pi);
            ok &= pi_hat > m && pi_hat <= 2 * m;
            ok &= pi >= m && pi < 2 * m;
            ok &= pi <= bounds::theorem_3_1_bound(m);
            ok &= pi >= bounds::best_lower_bound(g);
        }
        pass &= ok;
        table.row([
            m.to_string(),
            graphs.len().to_string(),
            min_pi.to_string(),
            max_pi.to_string(),
            format!("{:.3}", max_pi as f64 / m as f64),
            ok.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExhaustive over all connected bipartite join graphs embeddable in a 3×3 \
         tuple grid. `max π/m` never exceeds 1.25 − 1/m, matching Theorem 3.1.\n",
    );
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E2 — Lemma 2.2: `π̂(G ⊎ H) = π̂(G) + π̂(H)` and likewise for `π`.
pub fn e2_additivity() -> (String, bool) {
    let mut out = report_header("E2", "π̂(G ⊎ H) = π̂(G) + π̂(H), π(G ⊎ H) = π(G) + π(H).");
    let mut table = Table::new(["G", "H", "π̂(G)+π̂(H)", "π̂(G⊎H)", "equal"]);
    let mut pass = true;
    let parts: Vec<(String, jp_graph::BipartiteGraph)> = vec![
        ("K_{2,3}".into(), generators::complete_bipartite(2, 3)),
        ("G_3 (spider)".into(), generators::spider(3)),
        ("path(5)".into(), generators::path(5)),
        ("cycle(3)".into(), generators::cycle(3)),
        ("matching(3)".into(), generators::matching(3)),
        (
            "random(4,4,9;7)".into(),
            generators::random_connected_bipartite(4, 4, 9, 7),
        ),
    ];
    for (na, a) in &parts {
        for (nb, b) in &parts {
            let u = a.disjoint_union(b);
            let lhs = exact::optimal_total_cost(a).unwrap() + exact::optimal_total_cost(b).unwrap();
            let rhs = exact::optimal_total_cost(&u).unwrap();
            let eff_lhs = exact::optimal_effective_cost(a).unwrap()
                + exact::optimal_effective_cost(b).unwrap();
            let eff_rhs = exact::optimal_effective_cost(&u).unwrap();
            let ok = lhs == rhs && eff_lhs == eff_rhs;
            pass &= ok;
            table.row([
                na.clone(),
                nb.clone(),
                lhs.to_string(),
                rhs.to_string(),
                ok.to_string(),
            ]);
        }
    }
    out.push_str(&table.render());
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E3 — Lemma 2.4: matchings have `π̂ = 2m`, `π = m`; exact to `m = 12`,
/// closed form with an explicit witness scheme to `m = 100 000`.
pub fn e3_matchings() -> (String, bool) {
    let mut out = report_header(
        "E3",
        "If G is a matching with m edges, then π̂(G) = 2m and π(G) = m.",
    );
    let mut table = Table::new(["m", "method", "π̂", "2m", "π", "ok"]);
    let mut pass = true;
    for m in [1u32, 2, 5, 8, 12] {
        let g = generators::matching(m);
        let pi_hat = exact::optimal_total_cost(&g).unwrap();
        let pi = exact::optimal_effective_cost(&g).unwrap();
        let ok = pi_hat == 2 * m as usize && pi == m as usize;
        pass &= ok;
        table.row([
            m.to_string(),
            "exact".into(),
            pi_hat.to_string(),
            (2 * m).to_string(),
            pi.to_string(),
            ok.to_string(),
        ]);
    }
    for m in [1_000u32, 100_000] {
        let g = generators::matching(m);
        let order: Vec<usize> = (0..m as usize).collect();
        let s = PebblingScheme::from_edge_sequence(&g, &order).unwrap();
        let ok = s.validate(&g).is_ok()
            && s.cost() as u64 == families::matching_optimal_total_cost(m as u64)
            && s.effective_cost(&g) == m as usize
            // lower bound says no scheme can do better
            && bounds::lower_bound_total(&g) == 2 * m as usize;
        pass &= ok;
        table.row([
            m.to_string(),
            "witness + bound".into(),
            s.cost().to_string(),
            (2 * m).to_string(),
            s.effective_cost(&g).to_string(),
            ok.to_string(),
        ]);
    }
    out.push_str(&table.render());
    verdict_line(&mut out, pass);
    (out, pass)
}

/// E4 — Propositions 2.1/2.2: `π(G) = m` iff `L(G)` is traceable, and the
/// optimal TSP(1,2) path over `L(G)` costs exactly `π(G) − 1`.
pub fn e4_tsp_correspondence() -> (String, bool) {
    let mut out = report_header(
        "E4",
        "π(G) = m iff L(G) has a Hamiltonian path (Prop 2.1); the optimal TSP tour in \
         completed L(G) costs exactly π(G) − 1 (Prop 2.2).",
    );
    let mut table = Table::new([
        "graph",
        "m",
        "π",
        "L(G) traceable",
        "π = m",
        "TSP cost",
        "TSP = π − 1",
    ]);
    let mut pass = true;
    let cases: Vec<(String, jp_graph::BipartiteGraph)> = vec![
        ("path(6)".into(), generators::path(6)),
        ("cycle(4)".into(), generators::cycle(4)),
        ("K_{3,3}".into(), generators::complete_bipartite(3, 3)),
        ("star(7)".into(), generators::star(7)),
        ("G_3".into(), generators::spider(3)),
        ("G_4".into(), generators::spider(4)),
        ("G_5".into(), generators::spider(5)),
        (
            "random(4,4,10;1)".into(),
            generators::random_connected_bipartite(4, 4, 10, 1),
        ),
        (
            "random(5,4,12;2)".into(),
            generators::random_connected_bipartite(5, 4, 12, 2),
        ),
        (
            "random(4,5,9;3)".into(),
            generators::random_connected_bipartite(4, 5, 9, 3),
        ),
    ];
    for (name, g) in cases {
        let m = g.edge_count();
        let pi = exact::optimal_effective_cost(&g).unwrap();
        let traceable = jp_graph::hamilton::has_hamiltonian_path(&line_graph(&g));
        let tsp_cost = {
            let (_, jumps) = exact::min_jump_tour(&line_graph(&g));
            m - 1 + jumps
        };
        let ok = (traceable == (pi == m)) && tsp_cost == pi - 1;
        pass &= ok;
        table.row([
            name,
            m.to_string(),
            pi.to_string(),
            traceable.to_string(),
            (pi == m).to_string(),
            tsp_cost.to_string(),
            (tsp_cost == pi - 1).to_string(),
        ]);
    }
    // constructive direction: a tour converts to a scheme of matching cost
    let g = generators::spider(4);
    let (tour, _) = exact::min_jump_tour(&line_graph(&g));
    let s = tsp::tour_to_scheme(&g, &tour).unwrap();
    let tsp12 = tsp::Tsp12::from_join_graph(&g);
    let constructive_ok = s.effective_cost(&g) == tsp12.tour_cost(&tour) + 1;
    pass &= constructive_ok;
    out.push_str(&table.render());
    writeln!(
        out,
        "\nConstructive check on G_4: tour→scheme conversion preserves cost \
         (π = tour + 1): {constructive_ok}."
    )
    .unwrap();
    verdict_line(&mut out, pass);
    (out, pass)
}
