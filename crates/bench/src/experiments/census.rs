//! E19/E20 — extension censuses: (19) exhaustive extremal census of
//! small join graphs against the paper's bounds; (20) where *other*
//! predicates land in the paper's hierarchy.

use crate::table::Table;
use jp_graph::{betti_number, generators};
use jp_pebble::{bounds, exact};
use jp_relalg::predicate::{Band, LessThan, SetOverlap};
use jp_relalg::{join_graph, realize, workload, Relation};
use std::fmt::Write;

/// E19 — exhaustive census: every connected bipartite join graph with up
/// to 8 edges (embeddable in a 4×3 tuple grid), solved exactly. Verifies
/// that the π/m ratio never exceeds the Theorem 3.1 bound, *attains* it
/// (Theorem 3.3's family shape is extremal), and that every ratio-1
/// graph has a traceable line graph (Proposition 2.1).
pub fn e19_extremal_census() -> (String, bool) {
    let mut out = String::from(
        "## E19\n\n**Claim (paper, Thms 3.1 + 3.3, exhaustively).** Over *all* join \
         graphs: m ≤ π(G) ≤ 1.25m − 1, with the upper bound attained — and the \
         attaining graphs look like Figure 1's spiders.\n\n",
    );
    let mut table = Table::new([
        "m",
        "connected graphs",
        "perfect (π=m)",
        "max π",
        "T3.1 bound ⌈1.25m⌉−1",
        "bound attained",
    ]);
    let mut pass = true;
    let mut spider_is_extremal = false;
    for m in 2..=8usize {
        let graphs: Vec<_> = generators::enumerate_bipartite(4, 3, m)
            .into_iter()
            .filter(|g| betti_number(g) == 1)
            .collect();
        if graphs.is_empty() {
            continue;
        }
        let mut perfect = 0usize;
        let mut max_pi = 0usize;
        let mut attained = false;
        let bound = bounds::theorem_3_1_bound(m);
        for g in &graphs {
            let pi = exact::optimal_effective_cost(g).expect("small");
            pass &= pi >= m && pi <= bound;
            if pi == m {
                perfect += 1;
            }
            if pi > max_pi {
                max_pi = pi;
            }
            if pi == bound {
                attained = true;
                // the attaining graphs at m = 6 include G_3 itself
                if m == 6 && *g == generators::spider(3) {
                    spider_is_extremal = true;
                }
            }
        }
        // Theorem 3.3's extremal family needs n+1 left tuples; within a
        // 4×3 grid only G_3 (m = 6) fits, so attainment is required
        // exactly there. (G_4 needs a 5×4 grid — E8 covers it exactly.)
        if m == 6 {
            pass &= attained;
        }
        table.row([
            m.to_string(),
            graphs.len().to_string(),
            perfect.to_string(),
            max_pi.to_string(),
            bound.to_string(),
            attained.to_string(),
        ]);
    }
    pass &= spider_is_extremal;
    out.push_str(&table.render());
    out.push_str(
        "\nExhaustive over thousands of connected join graphs: the window \
         m ≤ π ≤ ⌈1.25m⌉ − 1 holds without exception; the ceiling is reached \
         exactly where Theorem 3.3's family fits the grid (m = 6: G_3 itself is \
         among the extremal graphs; the m = 8 spider needs 5 left tuples and is \
         verified in E8), and the overwhelming majority of graphs pebble \
         perfectly — hardness is real but thin, exactly the paper's picture.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}

/// E20 — extending the hierarchy to predicates the paper mentions but
/// does not classify: band joins and inequality joins sit with the
/// equijoins (perfect pebbling), while set overlap is *universal* like
/// containment (every bipartite graph is an overlap join graph — the
/// incident-edge-set construction).
pub fn e20_other_predicates() -> (String, bool) {
    let mut out = String::from(
        "## E20\n\n**Claim (extension; the paper classifies =, ⊆, overlap).** Where do \
         other predicates land? Band and < joins produce interval-structured \
         (staircase) join graphs that pebble perfectly; set overlap is universal \
         (incident-edge-set construction), so it shares containment's 1.25m − 1 \
         worst case.\n\n",
    );
    let mut table = Table::new(["predicate / workload", "m", "π (exact)", "π/m", "regime"]);
    let mut pass = true;

    // band joins over sorted keys: staircase graphs
    for (w, n, seed) in [(1i64, 9usize, 71u64), (2, 8, 72)] {
        let (r, s) = workload::zipf_equijoin(n, n, 40, 0.0, seed);
        let mut rv: Vec<i64> = r.values().iter().map(|v| v.as_int().unwrap()).collect();
        let mut sv: Vec<i64> = s.values().iter().map(|v| v.as_int().unwrap()).collect();
        rv.sort_unstable();
        sv.sort_unstable();
        let g = join_graph(
            &Relation::from_ints("R", rv),
            &Relation::from_ints("S", sv),
            &Band(w),
        )
        .unwrap();
        let (g, _, _) = g.strip_isolated();
        if g.edge_count() == 0 || g.edge_count() > exact::MAX_EXACT_EDGES {
            continue;
        }
        let m = g.edge_count();
        let pi = exact::optimal_effective_cost(&g).expect("small");
        pass &= pi == m; // staircase graphs pebble perfectly
        table.row([
            format!("band(±{w}) / sorted keys"),
            m.to_string(),
            pi.to_string(),
            format!("{:.3}", pi as f64 / m as f64),
            "perfect (equijoin-like)".into(),
        ]);
    }

    // inequality join: the join graph has nested ("chain") neighbourhoods
    let r = Relation::from_ints("R", vec![1, 3, 5, 7]);
    let s = Relation::from_ints("S", vec![2, 4, 6]);
    let g = join_graph(&r, &s, &LessThan).unwrap();
    let (g, _, _) = g.strip_isolated();
    let m = g.edge_count();
    let pi = exact::optimal_effective_cost(&g).expect("small");
    pass &= pi == m;
    table.row([
        "r < s / distinct keys".into(),
        m.to_string(),
        pi.to_string(),
        format!("{:.3}", pi as f64 / m as f64),
        "perfect (chain graph)".into(),
    ]);

    // set overlap: universal, hence worst-case 1.25m − 1 attained
    let worst = generators::spider(8);
    let (r, s) = realize::set_overlap_instance(&worst);
    let g = join_graph(&r, &s, &SetOverlap).unwrap();
    pass &= g == worst;
    let m = g.edge_count();
    let pi = exact::optimal_effective_cost(&g).expect("small");
    pass &= pi == 5 * m / 4 - 1;
    table.row([
        "r∩s≠∅ / realized G_8".into(),
        m.to_string(),
        pi.to_string(),
        format!("{:.3}", pi as f64 / m as f64),
        "worst case (universal)".into(),
    ]);

    out.push_str(&table.render());
    out.push_str(
        "\nBand and inequality joins inherit the easy regime: their join graphs \
         are interval/staircase-structured and pebble perfectly (their line \
         graphs are traceable). Set overlap inherits the hard regime: the \
         incident-edge-set construction realizes every bipartite graph, so \
         overlap joins hit 1.25m − 1 and carry the same NP-/MAX-SNP-hardness as \
         containment. This extends the paper's three-way classification to five \
         predicates.\n",
    );
    writeln!(
        out,
        "\n**Verdict: {}**\n",
        if pass { "PASS" } else { "FAIL" }
    )
    .unwrap();
    (out, pass)
}
