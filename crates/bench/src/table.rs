//! Minimal aligned-markdown table rendering for experiment reports.

/// A markdown table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned GitHub markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                s.push(' ');
                s.push_str(c);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["m", "π", "ratio"]);
        t.row(["4", "5", "1.25"]);
        t.row(["100", "125", "1.25"]);
        let r = t.render();
        assert!(r.starts_with("| m "));
        assert_eq!(r.lines().count(), 4);
        for line in r.lines() {
            assert_eq!(
                line.chars().count(),
                r.lines().next().unwrap().chars().count()
            );
        }
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }
}
