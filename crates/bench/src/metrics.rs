//! Per-run metrics capture for the experiment and benchmark harnesses.
//!
//! Wraps a run in a scoped [`StatsSink`] so the instrumentation the
//! solvers emit (see `jp-obs`) is aggregated per run, then packages the
//! snapshot with identity and wall time for JSON export — the machine
//! companion to the human-readable markdown reports.

use jp_obs::{FanoutSink, JsonlSink, ScopedSink, Sink, StatsSink, StatsSnapshot};
use jp_pulse::MemScopeStats;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Starts the per-case memory axis: resets every high-water mark and
/// remembers the counter levels, so [`emit_mem_axis`] can report deltas
/// and the peak *of this case* rather than of the whole process.
fn start_mem_axis() -> jp_pulse::MemSnapshot {
    jp_pulse::mem::reset_peaks();
    jp_pulse::mem_snapshot()
}

/// Emits the case's allocation accounting as `mem.*` counters into the
/// active obs scope (so they land in the captured [`StatsSnapshot`] and
/// any streamed trace). A no-op when the tracking allocator is not
/// installed — baselines from untracked builds simply lack the memory
/// axis, which `trace check` treats as a soft finding.
fn emit_mem_axis(before: &jp_pulse::MemSnapshot) {
    if !jp_pulse::mem::tracking_active() {
        return;
    }
    let after = jp_pulse::mem_snapshot();
    let emit = |label: &str, b: &MemScopeStats, a: &MemScopeStats, always: bool| {
        let allocs = a.allocs.saturating_sub(b.allocs);
        let bytes = a.bytes_allocated.saturating_sub(b.bytes_allocated);
        if !always && allocs == 0 && a.frees.saturating_sub(b.frees) == 0 {
            return;
        }
        jp_obs::counter("mem", &format!("{label}.allocs"), allocs);
        jp_obs::counter("mem", &format!("{label}.bytes_allocated"), bytes);
        // peak since start_mem_axis reset it: the case's high-water mark
        jp_obs::counter(
            "mem",
            &format!("{label}.bytes_peak"),
            a.bytes_peak.max(0) as u64,
        );
    };
    for (scope, (b, a)) in jp_pulse::mem::SCOPES
        .iter()
        .zip(before.scopes.iter().zip(after.scopes.iter()))
    {
        emit(scope.label(), b, a, false);
    }
    emit("total", &before.total, &after.total, true);
}

/// Aggregated metrics for one experiment or benchmark case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Run identifier (e.g. `"E5"` or a benchmark case name).
    pub id: String,
    /// Human title of the run.
    pub title: String,
    /// Whether the run's verdict was PASS.
    pub pass: bool,
    /// Wall-clock duration of the run in microseconds.
    pub wall_micros: u64,
    /// Counter totals and span timings collected during the run.
    pub stats: StatsSnapshot,
}

/// Runs `f` with a scoped stats sink installed, returning its result,
/// the wall time in microseconds, and the aggregated event snapshot.
///
/// The scoped sink is thread-filtered: only events from this thread and
/// from workers that explicitly joined the scope (`jp_obs::adopt`, which
/// the `jp-par` runtime does for its workers) are aggregated, so
/// concurrent runs on other threads cannot cross-talk into the snapshot.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, u64, StatsSnapshot) {
    let sink = Arc::new(StatsSink::new());
    let t0 = Instant::now();
    let out = {
        let _guard = ScopedSink::install(sink.clone());
        let mem = start_mem_axis();
        let out = f();
        emit_mem_axis(&mem);
        out
    };
    let wall_micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    (out, wall_micros, sink.snapshot())
}

/// Like [`capture`], but additionally streams every event of the run to
/// `trace_path` as JSON Lines (the format `jp trace …` consumes), so a
/// benchmark case leaves both an aggregate snapshot *and* a replayable
/// trace with span trees and worker timelines.
pub fn capture_traced<T>(
    trace_path: &Path,
    f: impl FnOnce() -> T,
) -> std::io::Result<(T, u64, StatsSnapshot)> {
    if let Some(dir) = trace_path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let stats = Arc::new(StatsSink::new());
    let jsonl = Arc::new(JsonlSink::to_file(trace_path)?);
    let sinks: Vec<Arc<dyn Sink>> = vec![stats.clone(), jsonl];
    let t0 = Instant::now();
    let out = {
        let _guard = ScopedSink::install(Arc::new(FanoutSink::new(sinks)));
        let mem = start_mem_axis();
        let out = f();
        emit_mem_axis(&mem);
        out
    };
    let wall_micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    Ok((out, wall_micros, stats.snapshot()))
}

/// Writes `metrics` as pretty JSON to `<dir>/<id>.json`, creating `dir`
/// as needed. Returns the written path.
pub fn write_metrics(dir: &Path, metrics: &RunMetrics) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", metrics.id));
    let json = serde_json::to_string_pretty(metrics)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_solver_events() {
        let g = jp_graph::generators::spider(5);
        let (cost, _wall, stats) =
            capture(|| jp_pebble::exact::optimal_effective_cost(&g).unwrap());
        assert_eq!(cost, 12);
        // exact equality: the scoped sink filters out events from other
        // test threads, so this capture sees precisely its own run —
        // spider(5) has 10 edges in one component.
        assert_eq!(stats.counters["exact.edges"], 10);
        assert_eq!(stats.counters["exact.components"], 1);
        assert_eq!(stats.span_counts["exact.solve"], 1);
        assert!(stats.span_counts.contains_key("exact.min_jump_tour"));
    }

    #[test]
    fn capture_excludes_concurrent_foreign_runs() {
        // a solver hammering jp-obs on a non-adopted thread must not
        // leak into this capture's snapshot
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let noisy = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let g = jp_graph::generators::spider(4);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = jp_pebble::exact::optimal_effective_cost(&g);
                }
            })
        };
        let g = jp_graph::generators::spider(5);
        let (cost, _, stats) = capture(|| jp_pebble::exact::optimal_effective_cost(&g).unwrap());
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        noisy.join().unwrap();
        assert_eq!(cost, 12);
        assert_eq!(stats.counters["exact.edges"], 10);
        assert_eq!(stats.span_counts["exact.solve"], 1);
    }

    #[test]
    fn capture_includes_adopted_parallel_workers() {
        // jp-par workers adopt into the scope: a portfolio race on 4
        // workers lands entirely in this capture
        let g = jp_graph::generators::spider(5);
        let (cost, _, stats) =
            capture(|| jp_pebble::portfolio::portfolio_effective_cost(&g, 4).unwrap());
        assert_eq!(cost, 12);
        assert_eq!(stats.span_counts["portfolio.race"], 1);
        assert_eq!(stats.counters["portfolio.workers"], 4);
        assert_eq!(stats.counters["par.workers"], 4);
    }

    #[test]
    fn capture_traced_streams_events_alongside_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("jp-capture-traced-{}", std::process::id()));
        let trace = dir.join("nested").join("run.jsonl");
        let g = jp_graph::generators::spider(5);
        let (cost, _wall, stats) = capture_traced(&trace, || {
            jp_pebble::exact::optimal_effective_cost(&g).unwrap()
        })
        .unwrap();
        assert_eq!(cost, 12);
        assert_eq!(stats.counters["exact.edges"], 10);
        // the trace carries the same run, line by line, as parseable events
        let text = std::fs::read_to_string(&trace).unwrap();
        let events: Vec<jp_obs::Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|e| e.component == "exact" && e.name == "solve"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_json_is_deterministic_and_key_sorted() {
        // counters inserted in reverse order still serialize sorted, and
        // two serializations of the same snapshot are byte-identical
        let ((), _, stats) = capture(|| {
            jp_obs::counter("zeta", "last", 1);
            jp_obs::counter("alpha", "first", 2);
            jp_obs::counter("mid", "between", 3);
        });
        let m = RunMetrics {
            id: "det".into(),
            title: "determinism".into(),
            pass: true,
            wall_micros: 0,
            stats,
        };
        let a = serde_json::to_string_pretty(&m).unwrap();
        let b = serde_json::to_string_pretty(&m).unwrap();
        assert_eq!(a, b);
        let alpha = a.find("alpha.first").unwrap();
        let mid = a.find("mid.between").unwrap();
        let zeta = a.find("zeta.last").unwrap();
        assert!(alpha < mid && mid < zeta, "counter keys must be sorted");
        // and parsing + re-serializing reproduces the same bytes
        let back: RunMetrics = serde_json::from_str(&a).unwrap();
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), a);
    }

    #[test]
    fn metrics_round_trip_through_json() {
        let ((), _, stats) = capture(|| {
            jp_obs::counter("bench", "cases", 3);
        });
        let m = RunMetrics {
            id: "E0".into(),
            title: "test".into(),
            pass: true,
            wall_micros: 42,
            stats,
        };
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"bench.cases\""));
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let dir = std::env::temp_dir().join(format!("jp-metrics-{}", std::process::id()));
        let path = write_metrics(&dir, &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
