//! Emits `BENCH_pebbling.json`: a seed performance/effort baseline for
//! the pebbling solver ladder on fixed graph families.
//!
//! For every (family, solver) pair the baseline records wall time plus
//! the solver's own effort counters (branch-and-bound nodes expanded,
//! Held–Karp subset iterations, local-search improving moves, …) as
//! captured through `jp-obs`. Timings vary run to run and machine to
//! machine; the counters are deterministic, so regressions in *work
//! done* — the signal that matters — diff cleanly against the committed
//! baseline.
//!
//! The parallel solvers (the portfolio racer and the parallel branch
//! and bound) are additionally measured along a `threads` axis
//! ([`THREAD_AXIS`]), recording the speedup curve. For the portfolio the
//! speedup is *algorithmic*, not just hardware: more workers means the
//! cheap certified heuristics finish first and abort the exponential
//! exact strategy mid-flight, so the curve is meaningful even on one
//! core.
//!
//! ```text
//! cargo run -p jp-bench --bin baseline --release [-- out.json]
//! ```

use jp_bench::capture;
use jp_graph::{generators, line_graph, BipartiteGraph};
use jp_obs::StatsSnapshot;
use serde::Serialize;

/// A named solver entry point producing a scheme (or `None` when the
/// solver does not apply to the graph).
type Solver = (
    &'static str,
    fn(&BipartiteGraph) -> Option<jp_pebble::PebblingScheme>,
);

/// A parallel solver entry point: same contract as [`Solver`] plus the
/// worker-thread count.
type ParSolver = (
    &'static str,
    fn(&BipartiteGraph, usize) -> Option<jp_pebble::PebblingScheme>,
);

/// Thread counts measured for the parallel solvers — the speedup curve
/// axis. `1` is the sequential schedule on the same code path, so the
/// curve isolates scheduling gains from implementation differences.
const THREAD_AXIS: [usize; 3] = [1, 2, 4];

/// One (family, solver, threads) measurement.
#[derive(Debug, Clone, Serialize)]
struct Case {
    family: String,
    solver: String,
    /// Worker threads used (1 = sequential schedule).
    threads: usize,
    edges: u64,
    effective_cost: u64,
    wall_micros: u64,
    stats: StatsSnapshot,
}

fn families() -> Vec<(String, BipartiteGraph)> {
    vec![
        ("spider_8".into(), generators::spider(8)),
        ("spider_10".into(), generators::spider(10)),
        (
            "complete_bipartite_4x5".into(),
            generators::complete_bipartite(4, 5),
        ),
        ("path_12".into(), generators::path(12)),
        (
            "random_connected_8x8_m16_seed5".into(),
            generators::random_connected_bipartite(8, 8, 16, 5),
        ),
    ]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pebbling.json".to_string());
    const BB_BUDGET: u64 = 50_000_000;
    let solvers: Vec<Solver> = vec![
        ("dfs_partition", |g| {
            jp_pebble::approx::pebble_dfs_partition(g).ok()
        }),
        ("euler_trails", |g| {
            jp_pebble::approx::pebble_euler_trails(g).ok()
        }),
        ("path_cover", |g| {
            jp_pebble::approx::pebble_path_cover(g).ok()
        }),
        ("matching_cover", |g| {
            jp_pebble::approx::pebble_matching_cover(g).ok()
        }),
        ("nearest_neighbor", |g| {
            jp_pebble::approx::pebble_nearest_neighbor(g).ok()
        }),
        ("exact_held_karp", |g| {
            jp_pebble::exact::optimal_scheme(g).ok()
        }),
        ("exact_bb", |g| {
            jp_pebble::exact_bb::optimal_scheme_bb(g, BB_BUDGET).ok()
        }),
        ("two_opt_ladder", |g| {
            // nearest neighbour + 2-opt + or-opt, the E15 ladder
            let lg = line_graph(g);
            let tsp = jp_pebble::tsp::Tsp12::new(lg.clone());
            let mut tour = jp_pebble::approx::nearest_neighbor::nearest_neighbor_tour(&lg);
            jp_pebble::approx::improve_two_opt(&tsp, &mut tour, 10);
            jp_pebble::approx::improve_or_opt(&tsp, &mut tour, 10);
            let order: Vec<usize> = tour.iter().map(|&e| e as usize).collect();
            jp_pebble::PebblingScheme::from_edge_sequence(g, &order).ok()
        }),
    ];

    let par_solvers: Vec<ParSolver> = vec![
        ("portfolio", |g, threads| {
            jp_pebble::portfolio::portfolio_scheme(g, threads).ok()
        }),
        ("exact_bb_par", |g, threads| {
            jp_pebble::exact_bb::optimal_scheme_bb_par(g, BB_BUDGET, threads).ok()
        }),
    ];

    // The memo axis: one workload built from *repeated* component
    // shapes — isomorphic random blocks under different labels, plus
    // closed-form families — solved with the canonical-form cache off
    // (plain portfolio) and on (`solve_with_memo`). With the cache on,
    // every shape is solved once and each repeat is a validated hash
    // lookup; the `memo.hit` / `memo.miss` / `memo.recognized` counters
    // in the captured stats are the measured hit rate.
    let repeated = {
        let block_a = generators::random_connected_bipartite(4, 4, 9, 1);
        let block_b = generators::random_connected_bipartite(4, 4, 10, 2);
        let spider = generators::spider(6);
        let kb = generators::complete_bipartite(3, 4);
        let mut g = block_a.clone();
        for _ in 0..5 {
            g = g.disjoint_union(&block_a);
        }
        for _ in 0..6 {
            g = g.disjoint_union(&block_b);
        }
        for _ in 0..4 {
            g = g.disjoint_union(&spider);
        }
        for _ in 0..4 {
            g = g.disjoint_union(&kb);
        }
        g
    };
    let memo_solvers: Vec<ParSolver> = vec![
        ("portfolio_memo_off", |g, threads| {
            jp_pebble::portfolio::portfolio_scheme(g, threads).ok()
        }),
        ("portfolio_memo_on", |g, threads| {
            let memo = jp_pebble::memo::Memo::new();
            jp_pebble::memo::solve_with_memo(g, &memo, threads).ok()
        }),
    ];

    let mut cases = Vec::new();
    for (solver, run) in &memo_solvers {
        for threads in THREAD_AXIS {
            let (scheme, wall_micros, stats) = capture(|| run(&repeated, threads));
            let Some(scheme) = scheme else { continue };
            cases.push(Case {
                family: "repeated_blocks_x20".into(),
                solver: solver.to_string(),
                threads,
                edges: repeated.edge_count() as u64,
                effective_cost: scheme.effective_cost(&repeated) as u64,
                wall_micros,
                stats,
            });
        }
    }
    for (family, g) in families() {
        for (solver, run) in &solvers {
            let (scheme, wall_micros, stats) = capture(|| run(&g));
            let Some(scheme) = scheme else { continue };
            cases.push(Case {
                family: family.clone(),
                solver: solver.to_string(),
                threads: 1,
                edges: g.edge_count() as u64,
                effective_cost: scheme.effective_cost(&g) as u64,
                wall_micros,
                stats,
            });
        }
        for (solver, run) in &par_solvers {
            for threads in THREAD_AXIS {
                let (scheme, wall_micros, stats) = capture(|| run(&g, threads));
                let Some(scheme) = scheme else { continue };
                cases.push(Case {
                    family: family.clone(),
                    solver: solver.to_string(),
                    threads,
                    edges: g.edge_count() as u64,
                    effective_cost: scheme.effective_cost(&g) as u64,
                    wall_micros,
                    stats,
                });
            }
        }
    }
    let json = serde_json::to_string_pretty(&cases).expect("baseline serializes");
    std::fs::write(&out_path, json + "\n").expect("baseline written");
    eprintln!("{} cases written to {out_path}", cases.len());
}
