//! Emits `BENCH_pebbling.json`: a seed performance/effort baseline for
//! the pebbling solver ladder on fixed graph families.
//!
//! For every (family, solver) pair the baseline records wall time plus
//! the solver's own effort counters (branch-and-bound nodes expanded,
//! Held–Karp subset iterations, local-search improving moves, …) as
//! captured through `jp-obs`. Timings vary run to run and machine to
//! machine; the counters are deterministic, so regressions in *work
//! done* — the signal that matters — diff cleanly against the committed
//! baseline.
//!
//! The parallel solvers (the portfolio racer and the parallel branch
//! and bound) are additionally measured along a `threads` axis
//! ([`THREAD_AXIS`]), recording the speedup curve. For the portfolio the
//! speedup is *algorithmic*, not just hardware: more workers means the
//! cheap certified heuristics finish first and abort the exponential
//! exact strategy mid-flight, so the curve is meaningful even on one
//! core.
//!
//! ```text
//! cargo run -p jp-bench --bin baseline --release -- \
//!     [out.json] [--families spider_10,repeated_blocks_x20] [--trace-dir DIR]
//! ```
//!
//! With `--trace-dir` each case additionally streams its full event
//! trace to `DIR/{family}_{solver}_t{threads}.jsonl` — the files
//! `jp trace summary|flame|check` consume. `--families` restricts the
//! run to a comma-separated subset (unknown names are a hard error so a
//! CI typo cannot silently gate nothing).

use jp_bench::{capture, capture_traced};
use jp_graph::{generators, line_graph, BipartiteGraph};
use jp_obs::StatsSnapshot;
use serde::Serialize;
use std::path::PathBuf;

/// Attribute every allocation to the active pulse memory scope, so each
/// case's stats carry the `mem.*` axis (peak-RSS-equivalent per case).
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: jp_pulse::TrackingAlloc = jp_pulse::TrackingAlloc;

/// A named solver entry point producing a scheme (or `None` when the
/// solver does not apply to the graph).
type Solver = (
    &'static str,
    fn(&BipartiteGraph) -> Option<jp_pebble::PebblingScheme>,
);

/// A parallel solver entry point: same contract as [`Solver`] plus the
/// worker-thread count.
type ParSolver = (
    &'static str,
    fn(&BipartiteGraph, usize) -> Option<jp_pebble::PebblingScheme>,
);

/// Thread counts measured for the parallel solvers — the speedup curve
/// axis. `1` is the sequential schedule on the same code path, so the
/// curve isolates scheduling gains from implementation differences.
const THREAD_AXIS: [usize; 3] = [1, 2, 4];

/// One (family, solver, threads) measurement.
#[derive(Debug, Clone, Serialize)]
struct Case {
    family: String,
    solver: String,
    /// Worker threads used (1 = sequential schedule).
    threads: usize,
    edges: u64,
    effective_cost: u64,
    wall_micros: u64,
    stats: StatsSnapshot,
}

fn families() -> Vec<(String, BipartiteGraph)> {
    vec![
        ("spider_8".into(), generators::spider(8)),
        ("spider_10".into(), generators::spider(10)),
        (
            "complete_bipartite_4x5".into(),
            generators::complete_bipartite(4, 5),
        ),
        ("path_12".into(), generators::path(12)),
        (
            "random_connected_8x8_m16_seed5".into(),
            generators::random_connected_bipartite(8, 8, 16, 5),
        ),
    ]
}

/// Parsed command line: output path plus the optional family filter and
/// trace directory.
struct Options {
    out_path: String,
    families: Option<Vec<String>>,
    trace_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut out_path = None;
    let mut families = None;
    let mut trace_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--families" => {
                let Some(v) = args.next() else {
                    eprintln!("--families needs a comma-separated list");
                    std::process::exit(2);
                };
                families = Some(
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect::<Vec<String>>(),
                );
            }
            "--trace-dir" => {
                let Some(v) = args.next() else {
                    eprintln!("--trace-dir needs a directory");
                    std::process::exit(2);
                };
                trace_dir = Some(PathBuf::from(v));
            }
            other if !other.starts_with("--") && out_path.is_none() => {
                out_path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    Options {
        out_path: out_path.unwrap_or_else(|| "BENCH_pebbling.json".to_string()),
        families,
        trace_dir,
    }
}

/// Captures `f`, writing its event trace to
/// `<trace_dir>/<stem>.jsonl` when a trace directory was requested.
fn measure<T>(
    trace_dir: Option<&std::path::Path>,
    stem: &str,
    f: impl FnOnce() -> T,
) -> (T, u64, StatsSnapshot) {
    match trace_dir {
        Some(dir) => {
            capture_traced(&dir.join(format!("{stem}.jsonl")), f).expect("trace file written")
        }
        None => capture(f),
    }
}

fn main() {
    let opts = parse_args();
    const BB_BUDGET: u64 = 50_000_000;
    let solvers: Vec<Solver> = vec![
        ("dfs_partition", |g| {
            jp_pebble::approx::pebble_dfs_partition(g).ok()
        }),
        ("euler_trails", |g| {
            jp_pebble::approx::pebble_euler_trails(g).ok()
        }),
        ("path_cover", |g| {
            jp_pebble::approx::pebble_path_cover(g).ok()
        }),
        ("matching_cover", |g| {
            jp_pebble::approx::pebble_matching_cover(g).ok()
        }),
        ("nearest_neighbor", |g| {
            jp_pebble::approx::pebble_nearest_neighbor(g).ok()
        }),
        ("exact_held_karp", |g| {
            jp_pebble::exact::optimal_scheme(g).ok()
        }),
        ("exact_bb", |g| {
            jp_pebble::exact_bb::optimal_scheme_bb(g, BB_BUDGET).ok()
        }),
        ("two_opt_ladder", |g| {
            // nearest neighbour + 2-opt + or-opt, the E15 ladder
            let lg = line_graph(g);
            let tsp = jp_pebble::tsp::Tsp12::new(lg.clone());
            let mut tour = jp_pebble::approx::nearest_neighbor::nearest_neighbor_tour(&lg);
            jp_pebble::approx::improve_two_opt(&tsp, &mut tour, 10);
            jp_pebble::approx::improve_or_opt(&tsp, &mut tour, 10);
            let order: Vec<usize> = tour.iter().map(|&e| e as usize).collect();
            jp_pebble::PebblingScheme::from_edge_sequence(g, &order).ok()
        }),
    ];

    let par_solvers: Vec<ParSolver> = vec![
        ("portfolio", |g, threads| {
            jp_pebble::portfolio::portfolio_scheme(g, threads).ok()
        }),
        ("exact_bb_par", |g, threads| {
            jp_pebble::exact_bb::optimal_scheme_bb_par(g, BB_BUDGET, threads).ok()
        }),
    ];

    // The memo axis: one workload built from *repeated* component
    // shapes — isomorphic random blocks under different labels, plus
    // closed-form families — solved with the canonical-form cache off
    // (plain portfolio) and on (`solve_with_memo`). With the cache on,
    // every shape is solved once and each repeat is a validated hash
    // lookup; the `memo.hit` / `memo.miss` / `memo.recognized` counters
    // in the captured stats are the measured hit rate.
    let repeated = {
        let block_a = generators::random_connected_bipartite(4, 4, 9, 1);
        let block_b = generators::random_connected_bipartite(4, 4, 10, 2);
        let spider = generators::spider(6);
        let kb = generators::complete_bipartite(3, 4);
        let mut g = block_a.clone();
        for _ in 0..5 {
            g = g.disjoint_union(&block_a);
        }
        for _ in 0..6 {
            g = g.disjoint_union(&block_b);
        }
        for _ in 0..4 {
            g = g.disjoint_union(&spider);
        }
        for _ in 0..4 {
            g = g.disjoint_union(&kb);
        }
        g
    };
    let memo_solvers: Vec<ParSolver> = vec![
        ("portfolio_memo_off", |g, threads| {
            jp_pebble::portfolio::portfolio_scheme(g, threads).ok()
        }),
        ("portfolio_memo_on", |g, threads| {
            let memo = jp_pebble::memo::Memo::new();
            jp_pebble::memo::solve_with_memo(g, &memo, threads).ok()
        }),
    ];

    // The worst-case-optimal join axis: conjunctive-query workloads run
    // through each multiway engine at one thread (the counters are
    // deterministic). `edges` records output rows and `effective_cost`
    // the intermediate-tuple count — the quantity worst-case optimality
    // bounds, and on the skewed triangle the ≥10x lftj-vs-cascade gap
    // the acceptance gate checks; the `wcoj.*` counters in the captured
    // stats gate seek/emit work through `jp trace check`.
    let wcoj_families: Vec<(
        String,
        jp_relalg::ConjunctiveQuery,
        Vec<jp_relalg::MultiRelation>,
    )> = {
        let mk = |name: &str, (q, rels)| (name.to_string(), q, rels);
        vec![
            mk(
                "wcoj_triangle_skew_96",
                jp_relalg::workload::triangle_skewed(96, 901),
            ),
            mk(
                "wcoj_triangle_rand_240",
                jp_relalg::workload::triangle_random(240, 4, 902),
            ),
            mk(
                "wcoj_clique4_rand_160",
                jp_relalg::workload::clique4_random(160, 3, 903),
            ),
        ]
    };

    // Validate the family filter against everything this binary can
    // run, so a CI typo cannot silently gate nothing.
    let all_families = families();
    if let Some(filter) = &opts.families {
        let known: Vec<&str> = ["repeated_blocks_x20", "serve_loadgen"]
            .into_iter()
            .chain(all_families.iter().map(|(name, _)| name.as_str()))
            .chain(wcoj_families.iter().map(|(name, _, _)| name.as_str()))
            .collect();
        for f in filter {
            if !known.contains(&f.as_str()) {
                eprintln!("unknown family {f}; known: {}", known.join(", "));
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| {
        opts.families
            .as_ref()
            .is_none_or(|f| f.iter().any(|x| x == name))
    };
    let trace_dir = opts.trace_dir.as_deref();

    let mut cases = Vec::new();
    if want("repeated_blocks_x20") {
        for (solver, run) in &memo_solvers {
            for threads in THREAD_AXIS {
                let stem = format!("repeated_blocks_x20_{solver}_t{threads}");
                let (scheme, wall_micros, stats) =
                    measure(trace_dir, &stem, || run(&repeated, threads));
                let Some(scheme) = scheme else { continue };
                cases.push(Case {
                    family: "repeated_blocks_x20".into(),
                    solver: solver.to_string(),
                    threads,
                    edges: repeated.edge_count() as u64,
                    effective_cost: scheme.effective_cost(&repeated) as u64,
                    wall_micros,
                    stats,
                });
            }
        }
    }
    // The serving axis: an in-process jp-serve instance under the
    // deterministic loadgen mix — the same workload CI's serve-check
    // job replays over a real socket. Dispatch is single-threaded so
    // the memo/solver counters and the end-of-run `serve.*` totals are
    // exact invariants of the workload; the `par.*` span families are
    // stripped because how requests clump into dispatch batches
    // depends on arrival timing, not on work done. The `serve.request`
    // span values stay: they are the serve-latency axis.
    if want("serve_loadgen") {
        let pool = jp_serve::loadgen::query_pool(8);
        let edges: u64 = pool.iter().map(|g| g.edge_count() as u64).sum();
        let serve_round = |verify: bool| {
            let server = jp_serve::Server::bind(jp_serve::ServeConfig::default())
                .expect("bind an ephemeral loopback port");
            let addr = server.local_addr().expect("local addr").to_string();
            let serving = std::thread::spawn(move || server.run());
            let driving = std::thread::spawn(move || {
                jp_serve::run_loadgen(&jp_serve::LoadgenConfig {
                    addr,
                    verify,
                    shutdown: true,
                    ..jp_serve::LoadgenConfig::default()
                })
            });
            let loadgen = driving
                .join()
                .expect("loadgen thread")
                .expect("loadgen run");
            let served = serving.join().expect("server thread").expect("server run");
            (loadgen, served)
        };
        // Answers first, outside any capture: a verified pass checks
        // every response against the sequential solver.
        let (checked, _) = serve_round(true);
        assert_eq!(checked.mismatches, 0, "serve answers diverged: {checked:?}");
        assert_eq!(checked.errors, 0, "serve errored under load: {checked:?}");
        // Then the captured pass runs with verification off so the
        // loadgen side executes no solver at all: jp-par workers adopt
        // into whatever scope is installed, so a verification
        // precompute inside the capture would leak loadgen-side events
        // into what must be a server-only baseline (CI's serve-check
        // runs the loadgen as a separate process).
        let ((loadgen, served), wall_micros, mut stats) =
            measure(trace_dir, "serve_loadgen_serve_t1", || serve_round(false));
        assert_eq!(loadgen.errors, 0, "serve errored under load: {loadgen:?}");
        assert_eq!(
            loadgen.ok, loadgen.sent,
            "requests were dropped: {loadgen:?}"
        );
        assert_eq!(
            served.cost_sum, checked.cost_sum,
            "the captured pass answered differently from the verified pass"
        );
        assert!(served.drained, "serve did not drain: {served:?}");
        stats.span_counts.retain(|k, _| !k.starts_with("par."));
        stats.span_micros.retain(|k, _| !k.starts_with("par."));
        stats.span_values.retain(|k, _| !k.starts_with("par."));
        // The mem.* axis is the bench harness's allocator bridge; the
        // CLI writes traces without one, so for this case the keys
        // would read "missing" on every CI check — drop them.
        stats.counters.retain(|k, _| !k.starts_with("mem."));
        cases.push(Case {
            family: "serve_loadgen".into(),
            solver: "serve".to_string(),
            threads: 1,
            edges,
            effective_cost: served.cost_sum,
            wall_micros,
            stats,
        });
    }
    for (family, q, rels) in &wcoj_families {
        if !want(family) {
            continue;
        }
        for algo in [
            jp_relalg::MultiwayAlgo::Lftj,
            jp_relalg::MultiwayAlgo::Generic,
            jp_relalg::MultiwayAlgo::Cascade,
        ] {
            let stem = format!("{family}_{}_t1", algo.name());
            let (out, wall_micros, stats) = measure(trace_dir, &stem, || {
                jp_relalg::multiway_solve(q, rels, algo, 1)
            });
            let out = out.expect("multiway workloads are statically well-formed");
            assert!(
                out.rows.len() as f64 <= out.agm_bound,
                "{family}/{}: output above the AGM bound",
                algo.name()
            );
            cases.push(Case {
                family: family.clone(),
                solver: algo.name().to_string(),
                threads: 1,
                edges: out.rows.len() as u64,
                effective_cost: out.stats.intermediate,
                wall_micros,
                stats,
            });
        }
    }
    for (family, g) in all_families {
        if !want(&family) {
            continue;
        }
        for (solver, run) in &solvers {
            let stem = format!("{family}_{solver}_t1");
            let (scheme, wall_micros, stats) = measure(trace_dir, &stem, || run(&g));
            let Some(scheme) = scheme else { continue };
            cases.push(Case {
                family: family.clone(),
                solver: solver.to_string(),
                threads: 1,
                edges: g.edge_count() as u64,
                effective_cost: scheme.effective_cost(&g) as u64,
                wall_micros,
                stats,
            });
        }
        for (solver, run) in &par_solvers {
            for threads in THREAD_AXIS {
                let stem = format!("{family}_{solver}_t{threads}");
                let (scheme, wall_micros, stats) = measure(trace_dir, &stem, || run(&g, threads));
                let Some(scheme) = scheme else { continue };
                cases.push(Case {
                    family: family.clone(),
                    solver: solver.to_string(),
                    threads,
                    edges: g.edge_count() as u64,
                    effective_cost: scheme.effective_cost(&g) as u64,
                    wall_micros,
                    stats,
                });
            }
        }
    }
    let json = serde_json::to_string_pretty(&cases).expect("baseline serializes");
    std::fs::write(&opts.out_path, json + "\n").expect("baseline written");
    eprintln!("{} cases written to {}", cases.len(), opts.out_path);
}
