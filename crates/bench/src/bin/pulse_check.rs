//! CI gate for the jp-pulse live metrics runtime.
//!
//! Runs one traced bench case (the `spider_10` portfolio at 4 workers)
//! three ways and checks the tentpole claims of the pulse design:
//!
//! 1. **Disabled-path overhead**: with no pulse scope active every
//!    `jp_pulse::…` call is a single relaxed atomic load. The median
//!    wall time of the instrumented-but-disabled run must stay within
//!    5% of the baseline median (plus a small absolute allowance so
//!    micro-second-scale jitter cannot flap the gate).
//! 2. **Liveness**: with a 10 ms sampler attached, at least one
//!    snapshot is written, every line parses with the damage-tolerant
//!    trace reader, and the final snapshot's memo counters agree
//!    exactly with the jp-obs aggregation of the same run.
//! 3. **Exposition**: the final snapshot renders to Prometheus-style
//!    exposition text, written to `pulse_check.prom` for CI to upload.
//!
//! ```text
//! cargo run -p jp-bench --bin pulse_check --release -- [out-dir]
//! ```
//!
//! Exits non-zero (with a diagnostic on stderr) on any failed check.

use jp_bench::capture;
use jp_graph::generators;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Attribute allocations to pulse memory scopes so the sampled
/// snapshots carry the `mem.*` axis.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: jp_pulse::TrackingAlloc = jp_pulse::TrackingAlloc;

/// Measurement repetitions per configuration; medians gate, not means,
/// so one scheduler hiccup cannot fail CI.
const REPS: usize = 9;

/// Allowed relative overhead of the disabled pulse path.
const MAX_OVERHEAD: f64 = 0.05;

/// Absolute allowance (µs) under which overhead is never flagged: the
/// case runs in milliseconds, so µs-scale jitter is pure noise.
const ABS_ALLOWANCE_MICROS: u64 = 500;

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs.get(xs.len() / 2).copied().unwrap_or(0)
}

fn fail(msg: &str) -> ! {
    eprintln!("pulse_check: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("figures"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(&format!("mkdir {out_dir:?}: {e}")));
    let g = generators::spider(10);
    let run_case = || {
        let memo = jp_pebble::memo::Memo::new();
        jp_pebble::memo::solve_with_memo(&g, &memo, 4).map(|s| s.effective_cost(&g))
    };

    // Warm up allocators, thread pools, and code paths once.
    run_case().unwrap_or_else(|e| fail(&format!("warmup solve: {e}")));

    // A: baseline — no pulse scope anywhere near the run.
    let a: Vec<u64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            run_case().unwrap_or_else(|e| fail(&format!("baseline solve: {e}")));
            t0.elapsed().as_micros() as u64
        })
        .collect();

    // B: disabled path — same binary, still no scope active; the pulse
    // call sites are compiled in and each costs one relaxed load.
    let b: Vec<u64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            run_case().unwrap_or_else(|e| fail(&format!("disabled-path solve: {e}")));
            t0.elapsed().as_micros() as u64
        })
        .collect();

    let (ma, mb) = (median(a), median(b));
    let overhead = mb.saturating_sub(ma);
    let rel = overhead as f64 / ma.max(1) as f64;
    println!(
        "pulse_check: disabled-path medians: baseline {ma} µs, instrumented {mb} µs \
         (overhead {overhead} µs, {:.1}%)",
        rel * 100.0
    );
    if rel > MAX_OVERHEAD && overhead > ABS_ALLOWANCE_MICROS {
        fail(&format!(
            "disabled pulse path costs {:.1}% (> {:.0}% and > {ABS_ALLOWANCE_MICROS} µs)",
            rel * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }

    // C: enabled — 10 ms sampler attached; the obs capture runs inside
    // so the final pulse snapshot and the stats snapshot see one run.
    let pulse_path = out_dir.join("pulse_check.jsonl");
    let sampler = jp_pulse::Sampler::start(&pulse_path, Duration::from_millis(10))
        .unwrap_or_else(|e| fail(&format!("starting sampler: {e}")));
    let (cost, _wall, stats) = capture(run_case);
    cost.unwrap_or_else(|e| fail(&format!("sampled solve: {e}")));
    let report = sampler.stop();
    if report.snapshots == 0 {
        fail("sampler wrote no snapshots");
    }
    if report.write_errors > 0 {
        fail(&format!(
            "sampler hit {} write error(s) — the pulse file is missing data",
            report.write_errors
        ));
    }

    let (events, read) = jp_trace::read_trace(&pulse_path)
        .unwrap_or_else(|e| fail(&format!("reading {pulse_path:?}: {e}")));
    if read.skipped() > 0 {
        fail(&format!(
            "pulse file has {} unparseable line(s):\n{}",
            read.skipped(),
            read.render()
        ));
    }
    let snaps = jp_trace::pulse_snapshots(&events);
    let Some(last) = snaps.last() else {
        fail("pulse file parsed but contains no snapshots");
    };
    println!(
        "pulse_check: {} snapshot(s), final at {} µs with {} sample(s)",
        snaps.len(),
        last.at_micros,
        last.samples.len()
    );
    // The live registry and the jp-obs event aggregation must agree
    // exactly on the memo counters of the sampled run.
    for (pulse_key, obs_key) in [
        ("memo.recognized", "memo.recognized"),
        ("memo.hit", "memo.hit"),
        ("memo.miss", "memo.miss"),
        ("memo.insert", "memo.insert"),
    ] {
        let live = last.samples.get(pulse_key).copied().unwrap_or(0);
        let obs = stats.counters.get(obs_key).copied().unwrap_or(0);
        if live != obs {
            fail(&format!(
                "{pulse_key}: live registry says {live}, jp-obs aggregation says {obs}"
            ));
        }
    }

    // Every snapshot publishes the sampler's own write-failure tally;
    // a healthy CI run must end at zero.
    match last.samples.get("pulse.write_errors").copied() {
        Some(0) => {}
        Some(n) => fail(&format!("final snapshot reports {n} pulse write error(s)")),
        None => fail("final snapshot is missing the pulse.write_errors line"),
    }

    let expo = jp_pulse::expo::render_exposition(&last.samples);
    let expo_path = out_dir.join("pulse_check.prom");
    std::fs::write(&expo_path, &expo)
        .unwrap_or_else(|e| fail(&format!("writing {expo_path:?}: {e}")));
    println!(
        "pulse_check: PASS — {} metric(s) exported to {}",
        last.samples.len(),
        expo_path.display()
    );
}
