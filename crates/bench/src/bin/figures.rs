//! Regenerates the paper's figures as Graphviz DOT (F1, F2 of DESIGN.md):
//!
//! * **Figure 1(a)** — the worst-case family `G_3, G_4, G_5`;
//! * **Figure 1(b)** — the line graph `L(G_5)` (K_5 plus 5 pendants);
//! * **Figure 2** — the diamond gadget (our verified 9-node stand-in).
//!
//! Output goes to `figures/` (created if missing) and a summary with the
//! computed optimal costs is printed.

use jp_graph::{dot, generators, line_graph};
use jp_pebble::reductions::diamond::{Diamond, CORNERS};
use jp_pebble::{exact, families};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let dir = Path::new("figures");
    fs::create_dir_all(dir)?;
    println!("# Figure reproduction\n");

    // Figure 1(a): G_3, G_4, G_5
    for n in 3..=5u32 {
        let g = generators::spider(n);
        fs::write(
            dir.join(format!("fig1a_g{n}.dot")),
            dot::bipartite_to_dot(&g, &format!("G_{n}")),
        )?;
        let pi = exact::optimal_effective_cost(&g).unwrap();
        println!(
            "G_{n}: m = {}, π = {pi} (closed form {}), written figures/fig1a_g{n}.dot",
            g.edge_count(),
            families::spider_optimal_cost(n as u64),
        );
    }

    // Figure 1(b): L(G_5)
    let g5 = generators::spider(5);
    let l5 = line_graph(&g5);
    let labels: Vec<String> = g5
        .edges()
        .iter()
        .map(|&(l, r)| {
            if l == 0 {
                format!("c–v{}", r + 1)
            } else {
                format!("v{}–w{}", r + 1, l)
            }
        })
        .collect();
    fs::write(
        dir.join("fig1b_l_g5.dot"),
        dot::graph_to_dot(&l5, "L(G_5)", Some(&labels)),
    )?;
    println!(
        "L(G_5): {} nodes = K_5 plus 5 pendants (degree-1 nodes: {}), written figures/fig1b_l_g5.dot",
        l5.vertex_count(),
        (0..l5.vertex_count()).filter(|&v| l5.degree(v) == 1).count()
    );

    // Figure 2: the diamond gadget
    let d = Diamond::new();
    let labels: Vec<String> = (0..9u32)
        .map(|v| {
            if v < 4 {
                ["a", "b", "c", "d"][v as usize].to_string()
            } else {
                format!("x{}", v - 3)
            }
        })
        .collect();
    fs::write(
        dir.join("fig2_diamond.dot"),
        dot::graph_to_dot(d.graph(), "diamond", Some(&labels)),
    )?;
    println!(
        "Diamond gadget: 9 nodes, corners {:?} (degree ≤ 2), centrals degree ≤ 3; \
         all 6 corner pairs Hamiltonian-connected: {}, no-two-cover property: {}; \
         written figures/fig2_diamond.dot",
        CORNERS,
        (0..4).all(|a| (0..4)
            .filter(|&b| b != a)
            .all(|b| { jp_graph::hamilton::is_hamiltonian_path(d.graph(), &d.corner_path(a, b)) })),
        d.no_two_disjoint_corner_paths_cover(),
    );
    Ok(())
}
