//! Runs the experiment suite (E1–E14 of DESIGN.md §3) and prints the
//! markdown reports that `EXPERIMENTS.md` is built from.
//!
//! ```text
//! cargo run -p jp-bench --bin experiments --release            # all
//! cargo run -p jp-bench --bin experiments --release -- E8 E12  # a subset
//! ```
//!
//! Exits non-zero if any experiment fails.

use jp_bench::all_experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0usize;
    println!("# Experiments — On the Complexity of Join Predicates (PODS 2001)\n");
    for e in all_experiments() {
        if !args.is_empty() && !args.iter().any(|a| a.eq_ignore_ascii_case(e.id)) {
            continue;
        }
        let t0 = Instant::now();
        let (report, pass) = (e.run)();
        let dt = t0.elapsed();
        println!("{report}");
        println!("_{} — {} — {:.2}s_\n", e.id, e.title, dt.as_secs_f64());
        println!("---\n");
        if !pass {
            failures += 1;
            eprintln!("FAIL: {} ({})", e.id, e.title);
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
