//! Runs the experiment suite (E1–E14 of DESIGN.md §3) and prints the
//! markdown reports that `EXPERIMENTS.md` is built from. Each run also
//! writes machine-readable metrics (solver counters, span timings, wall
//! time) to `figures/metrics/E*.json`.
//!
//! ```text
//! cargo run -p jp-bench --bin experiments --release            # all
//! cargo run -p jp-bench --bin experiments --release -- E8 E12  # a subset
//! ```
//!
//! Set `JP_METRICS_DIR` to redirect the metrics output; the default is
//! `figures/metrics` under the working directory.
//!
//! Exits non-zero if any experiment fails.

use jp_bench::{all_experiments, capture, write_metrics, RunMetrics};
use std::path::PathBuf;

/// Attribute allocations to pulse memory scopes so each experiment's
/// metrics carry the `mem.*` axis.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: jp_pulse::TrackingAlloc = jp_pulse::TrackingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_dir = std::env::var_os("JP_METRICS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("figures/metrics"));
    let mut failures = 0usize;
    println!("# Experiments — On the Complexity of Join Predicates (PODS 2001)\n");
    for e in all_experiments() {
        if !args.is_empty() && !args.iter().any(|a| a.eq_ignore_ascii_case(e.id)) {
            continue;
        }
        let ((report, pass), wall_micros, stats) = capture(e.run);
        println!("{report}");
        println!(
            "_{} — {} — {:.2}s_\n",
            e.id,
            e.title,
            wall_micros as f64 / 1e6
        );
        println!("---\n");
        let metrics = RunMetrics {
            id: e.id.to_string(),
            title: e.title.to_string(),
            pass,
            wall_micros,
            stats,
        };
        match write_metrics(&metrics_dir, &metrics) {
            Ok(path) => eprintln!("metrics: {}", path.display()),
            Err(err) => eprintln!("metrics: failed to write {}: {err}", e.id),
        }
        if !pass {
            failures += 1;
            eprintln!("FAIL: {} ({})", e.id, e.title);
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
