#![forbid(unsafe_code)]
//! Benchmark and experiment harness for the join-predicates reproduction.
//!
//! Every row of the experiment index in `DESIGN.md` §3 is implemented
//! here as a function returning a rendered report; the `experiments`
//! binary runs them all (or one by id) and the captured output is the
//! source of `EXPERIMENTS.md`. Figures F1/F2 are produced by the
//! `figures` binary as Graphviz DOT. Criterion benches (in `benches/`)
//! cover the performance-bearing claims (Theorem 4.1 linearity, exact
//! solver exponentiality, join-algorithm throughput).

pub mod experiments;
pub mod metrics;
pub mod table;

pub use experiments::{all_experiments, Experiment};
pub use metrics::{capture, capture_traced, write_metrics, RunMetrics};
