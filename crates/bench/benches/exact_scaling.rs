//! Exact-solver scaling — the empirical face of Theorem 4.2's
//! NP-completeness: Held–Karp time doubles (×2) per added edge, while the
//! guaranteed approximation stays polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jp_graph::generators;
use jp_pebble::approx::pebble_dfs_partition;
use jp_pebble::exact;

fn bench_exact_vs_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_approx");
    group.sample_size(10);
    for m in [12usize, 14, 16, 18] {
        let g = generators::random_connected_bipartite(5, 5, m, 42 + m as u64);
        group.bench_with_input(BenchmarkId::new("held_karp", m), &g, |b, g| {
            b.iter(|| exact::optimal_effective_cost(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dfs_partition", m), &g, |b, g| {
            b.iter(|| pebble_dfs_partition(g).unwrap())
        });
    }
    group.finish();
}

fn bench_decision_procedure(c: &mut Criterion) {
    let g = generators::spider(8); // m = 16
    let pi = exact::optimal_effective_cost(&g).unwrap();
    c.bench_function("pebble_decision_G8", |b| {
        b.iter(|| exact::pebble_decision(&g, pi).unwrap())
    });
}

criterion_group!(benches, bench_exact_vs_approx, bench_decision_procedure);
criterion_main!(benches);
