//! Pebbling-algorithm benchmarks.
//!
//! Performance claims covered:
//! * Theorem 4.1 — the equijoin pebbler is linear-time (flat ns/edge
//!   across sizes);
//! * Lemma 3.1 — a 1.25-bounded pebbling in (near-)linear time: the
//!   Euler-trail pebbler vs the per-round DFS-partition construction;
//! * ablation — heuristic ladder cost/throughput trade-off (nearest
//!   neighbour, path cover, Euler trails, DFS partition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jp_graph::{generators, BipartiteGraph};
use jp_pebble::approx::{
    pebble_dfs_partition, pebble_equijoin, pebble_euler_trails, pebble_nearest_neighbor,
    pebble_path_cover,
};

fn equijoin_components(m: usize) -> BipartiteGraph {
    let comps = (m / 100).max(1) as u32;
    let mut edges = Vec::with_capacity(m);
    for c in 0..comps {
        for i in 0..5u32 {
            for j in 0..20u32 {
                edges.push((c * 5 + i, c * 20 + j));
            }
        }
    }
    BipartiteGraph::new(comps * 5, comps * 20, edges)
}

fn bench_equijoin_pebble(c: &mut Criterion) {
    let mut group = c.benchmark_group("equijoin_pebble");
    for m in [1_000usize, 10_000, 100_000] {
        let g = equijoin_components(m);
        group.throughput(Throughput::Elements(g.edge_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &g, |b, g| {
            b.iter(|| pebble_equijoin(g).unwrap())
        });
    }
    group.finish();
}

fn bench_heuristic_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_ladder");
    let g = generators::random_connected_bipartite(60, 60, 400, 7);
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    group.bench_function("dfs_partition", |b| {
        b.iter(|| pebble_dfs_partition(&g).unwrap())
    });
    group.bench_function("euler_trails", |b| {
        b.iter(|| pebble_euler_trails(&g).unwrap())
    });
    group.bench_function("path_cover", |b| b.iter(|| pebble_path_cover(&g).unwrap()));
    group.bench_function("nearest_neighbor", |b| {
        b.iter(|| pebble_nearest_neighbor(&g).unwrap())
    });
    group.finish();
}

fn bench_euler_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("euler_trails_scaling");
    group.sample_size(20);
    for m in [1_000usize, 10_000, 50_000] {
        let k = (m as f64).sqrt() as u32 + 2;
        let g = generators::random_connected_bipartite(k, k, m, 11);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &g, |b, g| {
            b.iter(|| pebble_euler_trails(g).unwrap())
        });
    }
    group.finish();
}

fn bench_spider_witness(c: &mut Criterion) {
    // closed-form optimal scheme construction at scale (E8's witness)
    let mut group = c.benchmark_group("spider_witness");
    for n in [1_000u32, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| jp_pebble::families::spider_optimal_scheme(n))
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    // B&B proving optimality where Held–Karp cannot fit (m = 28)
    let g = generators::spider(14);
    let lg = jp_graph::line_graph(&g);
    c.bench_function("bb_spider_14", |b| {
        b.iter(|| jp_pebble::exact_bb::bb_min_jump_tour(&lg, 100_000_000))
    });
}

fn bench_fragmentation(c: &mut Criterion) {
    use jp_pebble::fragmentation::{balanced_capacity, component_pack};
    use jp_relalg::{equijoin_graph, workload};
    let (r, s) = workload::zipf_equijoin(2_000, 2_000, 600, 0.6, 17);
    let g = equijoin_graph(&r, &s).unwrap();
    let cap_l = balanced_capacity(g.left_count() as usize, 8) + 16;
    let cap_r = balanced_capacity(g.right_count() as usize, 8) + 16;
    c.bench_function("component_pack_8x8", |b| {
        b.iter(|| component_pack(&g, 8, 8, cap_l, cap_r))
    });
}

fn bench_page_scheduling(c: &mut Criterion) {
    use jp_pebble::paging::{schedule_page_fetches, PageLayout};
    use jp_relalg::{equijoin_graph, workload, Relation};
    let (r, s) = workload::zipf_equijoin(4_096, 4_096, 128, 0.3, 18);
    let mut rv: Vec<i64> = r.values().iter().map(|v| v.as_int().unwrap()).collect();
    let mut sv: Vec<i64> = s.values().iter().map(|v| v.as_int().unwrap()).collect();
    rv.sort_unstable();
    sv.sort_unstable();
    let g = equijoin_graph(&Relation::from_ints("R", rv), &Relation::from_ints("S", sv)).unwrap();
    let layout =
        PageLayout::sequential(g.left_count() as usize, g.right_count() as usize, 64).unwrap();
    c.bench_function("page_schedule_clustered_4k", |b| {
        b.iter(|| schedule_page_fetches(&g, &layout).unwrap())
    });
}

criterion_group!(
    benches,
    bench_equijoin_pebble,
    bench_heuristic_ladder,
    bench_euler_scaling,
    bench_spider_witness,
    bench_branch_and_bound,
    bench_fragmentation,
    bench_page_scheduling
);
criterion_main!(benches);
