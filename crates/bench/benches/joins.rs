//! Join-algorithm benchmarks across the three predicates — the
//! "recognized good algorithms" of the paper's introduction vs the
//! replicate-or-rescan algorithms available for containment and spatial
//! joins.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jp_relalg::{algorithms, workload};

fn bench_equijoin_algorithms(c: &mut Criterion) {
    let (r, s) = workload::zipf_equijoin(5_000, 5_000, 500, 0.9, 3);
    let mut group = c.benchmark_group("equijoin_algorithms");
    group.throughput(Throughput::Elements((r.len() + s.len()) as u64));
    group.bench_function("hash_join", |b| {
        b.iter(|| algorithms::equi::hash_join(&r, &s))
    });
    group.bench_function("sort_merge", |b| {
        b.iter(|| algorithms::equi::sort_merge(&r, &s))
    });
    group.bench_function("index_nested_loops", |b| {
        b.iter(|| algorithms::equi::index_nested_loops(&r, &s))
    });
    group.finish();
}

fn bench_containment_algorithms(c: &mut Criterion) {
    let (r, s) = workload::set_workload(800, 600, 2_000, 3..=8, 8..=20, 0.4, 5);
    let mut group = c.benchmark_group("containment_algorithms");
    group.sample_size(20);
    group.throughput(Throughput::Elements((r.len() + s.len()) as u64));
    group.bench_function("naive", |b| {
        b.iter(|| algorithms::containment::naive(&r, &s))
    });
    group.bench_function("inverted_index", |b| {
        b.iter(|| algorithms::containment::inverted_index(&r, &s))
    });
    group.bench_function("signature", |b| {
        b.iter(|| algorithms::containment::signature(&r, &s))
    });
    group.bench_function("partitioned_64", |b| {
        b.iter(|| algorithms::containment::partitioned(&r, &s, 64))
    });
    group.finish();
}

fn bench_spatial_algorithms(c: &mut Criterion) {
    let r = workload::uniform_rects(3_000, 20_000, 80, 8);
    let s = workload::uniform_rects(3_000, 20_000, 80, 9);
    let mut group = c.benchmark_group("spatial_algorithms_uniform");
    group.sample_size(20);
    group.throughput(Throughput::Elements((r.len() + s.len()) as u64));
    group.bench_function("sweep", |b| b.iter(|| algorithms::spatial::sweep(&r, &s)));
    group.bench_function("pbsm", |b| b.iter(|| algorithms::spatial::pbsm(&r, &s)));
    group.bench_function("rtree", |b| b.iter(|| algorithms::spatial::rtree(&r, &s)));
    group.bench_function("rtree_inl", |b| {
        b.iter(|| algorithms::spatial::index_nested_loops(&r, &s))
    });
    group.finish();

    // clustered (skewed) regime — where grid partitioning degrades
    let r = workload::clustered_rects(3_000, 20_000, 80, 6, 400, 10);
    let s = workload::clustered_rects(3_000, 20_000, 80, 6, 400, 11);
    let mut group = c.benchmark_group("spatial_algorithms_clustered");
    group.sample_size(20);
    group.bench_function("sweep", |b| b.iter(|| algorithms::spatial::sweep(&r, &s)));
    group.bench_function("pbsm", |b| b.iter(|| algorithms::spatial::pbsm(&r, &s)));
    group.bench_function("rtree", |b| b.iter(|| algorithms::spatial::rtree(&r, &s)));
    group.finish();
}

fn bench_join_graph_builders(c: &mut Criterion) {
    let (r, s) = workload::zipf_equijoin(2_000, 2_000, 300, 0.8, 12);
    let mut group = c.benchmark_group("join_graph_builders");
    group.sample_size(20);
    group.bench_function("equijoin_hash", |b| {
        b.iter(|| jp_relalg::equijoin_graph(&r, &s).unwrap())
    });
    group.bench_function("equijoin_by_definition", |b| {
        b.iter(|| jp_relalg::join_graph(&r, &s, &jp_relalg::predicate::Equality).unwrap())
    });
    group.finish();
}

fn bench_parallel_fragmented_join(c: &mut Criterion) {
    use jp_relalg::parallel::fragmented_join;
    use jp_relalg::predicate::Equality;
    let (r, s) = workload::zipf_equijoin(4_000, 4_000, 400, 0.8, 21);
    let lf: Vec<u32> = (0..r.len()).map(|i| (i % 4) as u32).collect();
    let rf: Vec<u32> = (0..s.len()).map(|i| (i % 4) as u32).collect();
    let mut group = c.benchmark_group("fragmented_join_4x4");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| fragmented_join(&r, &s, &Equality, &lf, 4, &rf, 4, threads))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_equijoin_algorithms,
    bench_containment_algorithms,
    bench_spatial_algorithms,
    bench_join_graph_builders,
    bench_parallel_fragmented_join
);
criterion_main!(benches);
