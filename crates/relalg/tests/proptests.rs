//! Property-based tests for the relational substrate: algorithm
//! agreement, join-graph consistency, and the realization lemmas on
//! arbitrary graphs.

use jp_graph::BipartiteGraph;
use jp_relalg::predicate::{
    Band, Equality, JoinPredicate, SetContainment, SetOverlap, SpatialOverlap,
};
use jp_relalg::{
    algorithms, containment_graph, equijoin_graph, join_graph, parallel, realize, spatial_graph,
};
use jp_relalg::{IdSet, Relation};
use proptest::prelude::*;

fn int_relation(n: usize, key_range: i64) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(0..key_range, 0..n).prop_map(|v| Relation::from_ints("R", v))
}

fn set_relation(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0u32..12, 0..5), 0..n)
        .prop_map(|sets| Relation::from_sets("R", sets.into_iter().map(IdSet::new)))
}

fn rect_relation(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..200, 0i64..200, 0i64..40, 0i64..40), 0..n).prop_map(|v| {
        Relation::from_rects(
            "R",
            v.into_iter()
                .map(|(x, y, w, h)| jp_geometry::Rect::new(x, y, x + w, y + h)),
        )
    })
}

fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..=6, 1u32..=6).prop_flat_map(|(k, l)| {
        proptest::collection::vec((0..k, 0..l), 0..=15)
            .prop_map(move |edges| BipartiteGraph::new(k, l, edges))
    })
}

proptest! {
    #[test]
    fn equijoin_algorithms_agree(r in int_relation(25, 8), s in int_relation(25, 8)) {
        let mut expect = algorithms::nested_loops(&r, &s, &Equality);
        expect.sort_unstable();
        prop_assert_eq!(algorithms::equi::hash_join(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::equi::sort_merge(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::equi::index_nested_loops(&r, &s), expect.clone());
        // join graph = result pairs
        let g = equijoin_graph(&r, &s).unwrap();
        prop_assert_eq!(g.edges(), &expect[..]);
    }

    #[test]
    fn equijoin_graph_is_union_of_complete_bipartite(
        r in int_relation(25, 6),
        s in int_relation(25, 6),
    ) {
        let g = equijoin_graph(&r, &s).unwrap();
        prop_assert!(jp_graph::properties::is_equijoin_graph(&g));
    }

    #[test]
    fn containment_algorithms_agree(r in set_relation(15), s in set_relation(15)) {
        let expect = algorithms::containment::naive(&r, &s);
        prop_assert_eq!(algorithms::containment::inverted_index(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::containment::signature(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::containment::partitioned(&r, &s, 7), expect.clone());
        let g = containment_graph(&r, &s).unwrap();
        prop_assert_eq!(g.edges(), &expect[..]);
        // definitionally correct too
        let mut by_def = algorithms::nested_loops(&r, &s, &SetContainment);
        by_def.sort_unstable();
        prop_assert_eq!(expect, by_def);
    }

    #[test]
    fn containment_implies_overlap_unless_empty(r in set_relation(12), s in set_relation(12)) {
        // r ⊆ s and r ≠ ∅ implies r ∩ s ≠ ∅: containment results are a
        // subset of overlap results when the left set is non-empty.
        let cont = algorithms::nested_loops(&r, &s, &SetContainment);
        let over = algorithms::nested_loops(&r, &s, &SetOverlap);
        for &(i, j) in &cont {
            if !r.value(i as usize).as_set().unwrap().is_empty() {
                prop_assert!(over.contains(&(i, j)));
            }
        }
    }

    #[test]
    fn spatial_algorithms_agree(r in rect_relation(20), s in rect_relation(20)) {
        let expect = algorithms::spatial::naive(&r, &s);
        prop_assert_eq!(algorithms::spatial::sweep(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::spatial::pbsm(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::spatial::rtree(&r, &s), expect.clone());
        prop_assert_eq!(algorithms::spatial::index_nested_loops(&r, &s), expect.clone());
        let g = spatial_graph(&r, &s).unwrap();
        prop_assert_eq!(g.edges(), &expect[..]);
        let mut by_def = algorithms::nested_loops(&r, &s, &SpatialOverlap);
        by_def.sort_unstable();
        prop_assert_eq!(expect, by_def);
    }

    #[test]
    fn band_join_contains_equijoin(r in int_relation(20, 10), s in int_relation(20, 10), w in 0i64..4) {
        let eq = algorithms::nested_loops(&r, &s, &Equality);
        let band = algorithms::nested_loops(&r, &s, &Band(w));
        for p in &eq {
            prop_assert!(band.contains(p));
        }
    }

    #[test]
    fn lemma_3_3_containment_universality(g in bipartite()) {
        let (r, s) = realize::set_containment_instance(&g);
        prop_assert_eq!(containment_graph(&r, &s).unwrap(), g);
    }

    #[test]
    fn spatial_universality(g in bipartite()) {
        let (r, s) = realize::spatial_universal_instance(&g);
        prop_assert_eq!(spatial_graph(&r, &s).unwrap(), g);
    }

    #[test]
    fn equijoin_realization_roundtrip(g in bipartite()) {
        // only unions of complete bipartite graphs are equijoin-realizable
        match realize::equijoin_instance(&g) {
            Some((r, s)) => {
                prop_assert!(jp_graph::properties::is_equijoin_graph(&g));
                prop_assert_eq!(equijoin_graph(&r, &s).unwrap(), g);
            }
            None => prop_assert!(!jp_graph::properties::is_equijoin_graph(&g)),
        }
    }

    #[test]
    fn join_graph_vertex_counts_match_relations(
        r in int_relation(15, 5),
        s in int_relation(15, 5),
    ) {
        let g = join_graph(&r, &s, &Equality).unwrap();
        prop_assert_eq!(g.left_count() as usize, r.len());
        prop_assert_eq!(g.right_count() as usize, s.len());
    }
}

/// Adversarially skewed fragment assignment: most tuples pile into
/// fragment 0, the rest scatter — the workload shape where a wave/barrier
/// scheduler stalls and work-stealing must not change the answer.
fn skewed_assignment(n: usize, k: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..100, n..=n).prop_map(move |draws| {
        draws
            .into_iter()
            .map(|d| if d < 85 { 0 } else { d % k })
            .collect()
    })
}

/// Pairs a relation strategy with a skewed assignment of matching length.
fn with_skew(
    rel: impl Strategy<Value = Relation>,
    k: u32,
) -> impl Strategy<Value = (Relation, Vec<u32>)> {
    rel.prop_flat_map(move |r| {
        let n = r.len();
        (Just(r), skewed_assignment(n, k))
    })
}

/// `fragmented_join` under the work-stealing scheduler must equal the
/// sorted `nested_loops` result for any predicate, assignment, and
/// thread count.
fn check_fragmented_matches_nested_loops(
    r: &Relation,
    s: &Relation,
    pred: &(dyn JoinPredicate + Sync),
    left: (&[u32], u32),
    right: (&[u32], u32),
    threads: usize,
) {
    let mut expect = algorithms::nested_loops(r, s, pred);
    expect.sort_unstable();
    let got = parallel::fragmented_join(r, s, pred, left.0, left.1, right.0, right.1, threads);
    assert_eq!(got, expect, "threads = {threads}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skewed_fragmented_equijoin_and_band_match_nested_loops(
        (r, lf) in with_skew(int_relation(30, 8), 4),
        (s, rf) in with_skew(int_relation(30, 8), 3),
        threads_pick in 0usize..3,
        w in 0i64..4,
    ) {
        let threads = [1, 2, 8][threads_pick];
        check_fragmented_matches_nested_loops(&r, &s, &Equality, (&lf, 4), (&rf, 3), threads);
        check_fragmented_matches_nested_loops(&r, &s, &Band(w), (&lf, 4), (&rf, 3), threads);
    }

    #[test]
    fn skewed_fragmented_set_joins_match_nested_loops(
        (r, lf) in with_skew(set_relation(18), 5),
        (s, rf) in with_skew(set_relation(18), 2),
        threads_pick in 0usize..3,
    ) {
        let threads = [1, 2, 8][threads_pick];
        check_fragmented_matches_nested_loops(&r, &s, &SetContainment, (&lf, 5), (&rf, 2), threads);
        check_fragmented_matches_nested_loops(&r, &s, &SetOverlap, (&lf, 5), (&rf, 2), threads);
    }

    #[test]
    fn skewed_fragmented_spatial_join_matches_nested_loops(
        (r, lf) in with_skew(rect_relation(20), 3),
        (s, rf) in with_skew(rect_relation(20), 4),
        threads_pick in 0usize..3,
    ) {
        let threads = [1, 2, 8][threads_pick];
        check_fragmented_matches_nested_loops(&r, &s, &SpatialOverlap, (&lf, 3), (&rf, 4), threads);
    }
}
