//! Cross-algorithm equality and AGM-bound properties for the
//! worst-case-optimal multiway join engines.
//!
//! A binary equijoin is the conjunctive query `Q(i,j) ← R'(v,i) ∧
//! S'(v,j)` over tagged relations `R' = {(value, tuple_id)}`, so the
//! trie-based engines must reproduce the classic equijoin algorithms
//! (hash, sort-merge, index nested loops) exactly — including on empty
//! relations, all-duplicate keys, and single-tuple inputs. On the
//! cyclic queries (triangle, 4-clique, bowtie) LFTJ, generic join, and
//! the binary cascade must agree byte-for-byte at 1/2/8 threads, and
//! the output never exceeds the AGM fractional-cover bound.

use jp_relalg::{
    algorithms, multiway_solve, query_join_graph, workload, Atom, ConjunctiveQuery, MultiRelation,
    MultiwayAlgo, Relation,
};
use proptest::prelude::*;

const ALGOS: [MultiwayAlgo; 3] = [
    MultiwayAlgo::Lftj,
    MultiwayAlgo::Generic,
    MultiwayAlgo::Cascade,
];

/// `Q(i,j) ← R'(v,i) ∧ S'(v,j)`: the binary equijoin as a conjunctive
/// query. Each atom has cover weight 1 — the bound is `|R|·|S|`.
fn pair_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "pair",
        vec![
            Atom {
                relation: 0,
                vars: vec![0, 1],
            },
            Atom {
                relation: 1,
                vars: vec![0, 2],
            },
        ],
        vec![1.0, 1.0],
    )
    .unwrap()
}

/// Tags a single-column integer relation with tuple ids: `(value, id)`.
fn tag(name: &str, r: &Relation) -> MultiRelation {
    let tuples = r
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| vec![v.as_int().unwrap(), i as i64]);
    MultiRelation::new(name, 2, tuples).unwrap()
}

/// Runs the binary-equijoin encoding through every multiway engine and
/// checks the projected pairs against the classic equijoin algorithms.
fn check_binary_equijoin(r: &Relation, s: &Relation, threads: usize) {
    let expect = algorithms::equi::hash_join(r, s);
    assert_eq!(algorithms::equi::sort_merge(r, s), expect);
    assert_eq!(algorithms::equi::index_nested_loops(r, s), expect);
    let q = pair_query();
    let rels = vec![tag("R", r), tag("S", s)];
    for algo in ALGOS {
        let out = multiway_solve(&q, &rels, algo, threads).unwrap();
        assert!(out.rows.len() as f64 <= out.agm_bound, "{}", algo.name());
        // Variable order is (v, i, j); project to the (i, j) pairs.
        let mut pairs: Vec<(u32, u32)> = out
            .rows
            .iter()
            .map(|row| (row[1] as u32, row[2] as u32))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, expect, "{} at {threads} threads", algo.name());
    }
    // Each output row is one edge of the query's join graph.
    if !expect.is_empty() {
        let g = query_join_graph(&q, &rels).unwrap();
        assert_eq!(g.edge_count(), expect.len());
    }
}

#[test]
fn degenerate_binary_inputs() {
    let empty = Relation::from_ints("E", Vec::<i64>::new());
    let single = Relation::from_ints("U", [7]);
    let dups = Relation::from_ints("D", [7, 7, 7, 7]);
    let mixed = Relation::from_ints("M", [7, 8, 9]);
    for r in [&empty, &single, &dups, &mixed] {
        for s in [&empty, &single, &dups, &mixed] {
            for threads in [1, 2, 8] {
                check_binary_equijoin(r, s, threads);
            }
        }
    }
}

#[test]
fn skewed_triangle_thread_and_algorithm_parity() {
    let (q, rels) = workload::triangle_skewed(80, 9);
    let base = multiway_solve(&q, &rels, MultiwayAlgo::Cascade, 1).unwrap();
    assert!(base.rows.len() as f64 <= base.agm_bound);
    for threads in [1, 2, 8] {
        for algo in [MultiwayAlgo::Lftj, MultiwayAlgo::Generic] {
            let out = multiway_solve(&q, &rels, algo, threads).unwrap();
            assert_eq!(out.rows, base.rows, "{} at {threads}", algo.name());
            assert_eq!(out.order, base.order);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binary_equijoin_encoding_matches_classic_algorithms(
        rv in proptest::collection::vec(0i64..6, 0..20),
        sv in proptest::collection::vec(0i64..6, 0..20),
        threads_pick in 0usize..3,
    ) {
        let r = Relation::from_ints("R", rv);
        let s = Relation::from_ints("S", sv);
        check_binary_equijoin(&r, &s, [1, 2, 8][threads_pick]);
    }

    #[test]
    fn triangle_engines_agree_at_all_thread_counts(
        n in 10usize..80,
        deg in 2usize..6,
        seed in 0u64..1000,
        threads_pick in 0usize..3,
    ) {
        let (q, rels) = workload::triangle_random(n, deg, seed);
        let threads = [1, 2, 8][threads_pick];
        let base = multiway_solve(&q, &rels, MultiwayAlgo::Cascade, 1).unwrap();
        prop_assert!(base.rows.len() as f64 <= base.agm_bound);
        for algo in [MultiwayAlgo::Lftj, MultiwayAlgo::Generic] {
            let out = multiway_solve(&q, &rels, algo, threads).unwrap();
            prop_assert_eq!(&out.rows, &base.rows, "{} at {}", algo.name(), threads);
        }
    }

    #[test]
    fn clique_and_bowtie_engines_agree(
        n in 10usize..60,
        seed in 0u64..1000,
        threads_pick in 0usize..3,
    ) {
        let threads = [1, 2, 8][threads_pick];
        for (q, rels) in [
            workload::clique4_random(n, 3, seed),
            workload::bowtie_random(n, 3, seed),
        ] {
            let base = multiway_solve(&q, &rels, MultiwayAlgo::Cascade, 1).unwrap();
            prop_assert!(base.rows.len() as f64 <= base.agm_bound);
            for algo in [MultiwayAlgo::Lftj, MultiwayAlgo::Generic] {
                let out = multiway_solve(&q, &rels, algo, threads).unwrap();
                prop_assert_eq!(&out.rows, &base.rows, "{} at {}", algo.name(), threads);
            }
        }
    }

    #[test]
    fn query_join_graph_edge_counts_match_pairwise_joins(
        n in 4usize..40,
        seed in 0u64..1000,
    ) {
        let (q, rels) = workload::triangle_random(n, 3, seed);
        let g = query_join_graph(&q, &rels).unwrap();
        // The disjoint union of the three pairwise shared-variable
        // equijoin graphs: count each pair by brute force.
        let mut expect = 0usize;
        // R(a,b)↔S(b,c) share b; R(a,b)↔T(a,c) share a; S(b,c)↔T(a,c)
        // share c.
        let pairs = [(0usize, 1usize, 1usize, 0usize), (0, 2, 0, 0), (1, 2, 1, 1)];
        for (ai, bi, ca, cb) in pairs {
            for ta in rels[ai].tuples() {
                for tb in rels[bi].tuples() {
                    if ta[ca] == tb[cb] {
                        expect += 1;
                    }
                }
            }
        }
        prop_assert_eq!(g.edge_count(), expect);
    }
}
