//! Sorted trie indexes over multi-column relations, with the
//! seek/next iterator interface of Veldhuizen's Leapfrog Triejoin
//! (PAPERS.md \[LFTJ\]).
//!
//! A [`MultiRelation`] is a set-semantics relation of fixed arity over
//! `i64` keys. A [`TrieIndex`] materializes it under a column
//! permutation — rows sorted lexicographically in permuted order — so
//! that a [`TrieIter`] can walk it as a trie: level `d` enumerates the
//! distinct values of permuted column `d` within the row range matching
//! the values bound at levels `0..d`. Each level supports `open` /
//! `up` / `key` / `advance` / `seek`, all `O(log n)` via binary search
//! over the flat sorted array; no per-node allocation.
//!
//! Everything here is panic-free (in the jp-audit `panic-freedom` scope
//! at deny): out-of-contract calls return `None` or an
//! [`RelalgError`], never abort, because the multiway join planner
//! feeds these iterators from untrusted CLI workloads.

use crate::error::RelalgError;

/// A fixed-arity relation over `i64` keys with set semantics: rows are
/// sorted lexicographically and deduplicated at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRelation {
    name: String,
    arity: usize,
    /// Row-major tuple store, `len() * arity` keys, sorted + deduped.
    data: Vec<i64>,
}

impl MultiRelation {
    /// Builds a relation from tuples, sorting and deduplicating.
    ///
    /// # Errors
    /// [`RelalgError::ArityMismatch`] if any tuple's length differs
    /// from `arity`, [`RelalgError::MalformedCover`] never; arity 0 is
    /// rejected as an arity mismatch on the first tuple (an empty
    /// relation of arity 0 is allowed and holds no information).
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        tuples: impl IntoIterator<Item = Vec<i64>>,
    ) -> Result<Self, RelalgError> {
        let name = name.into();
        let mut rows: Vec<Vec<i64>> = Vec::new();
        for t in tuples {
            if t.len() != arity {
                return Err(RelalgError::ArityMismatch {
                    relation: name,
                    expected: arity,
                    found: t.len(),
                });
            }
            rows.push(t);
        }
        rows.sort_unstable();
        rows.dedup();
        let data = rows.into_iter().flatten().collect();
        Ok(MultiRelation { name, arity, data })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tuple `row`, or `None` out of range.
    pub fn tuple(&self, row: usize) -> Option<&[i64]> {
        let start = row.checked_mul(self.arity)?;
        let end = start.checked_add(self.arity)?;
        self.data.get(start..end)
    }

    /// All tuples in sorted order.
    pub fn tuples(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.arity.max(1))
    }
}

/// A trie view of a [`MultiRelation`] under a column permutation:
/// rows re-ordered column-wise by `perm` and sorted lexicographically.
/// Level `d` of the trie is permuted column `d`.
#[derive(Debug, Clone)]
pub struct TrieIndex {
    arity: usize,
    /// Row-major permuted sorted tuple store.
    data: Vec<i64>,
}

impl TrieIndex {
    /// Materializes the trie for `rel` with trie level `d` reading
    /// column `perm[d]` of the original relation.
    ///
    /// # Errors
    /// [`RelalgError::Internal`] if `perm` is not a permutation of
    /// `0..arity` (planner bug, not user input).
    pub fn build(rel: &MultiRelation, perm: &[u32]) -> Result<Self, RelalgError> {
        let arity = rel.arity();
        let mut seen = vec![false; arity];
        if perm.len() != arity {
            return Err(RelalgError::Internal("trie permutation has wrong length"));
        }
        for &c in perm {
            match seen.get_mut(c as usize) {
                Some(s) if !*s => *s = true,
                _ => return Err(RelalgError::Internal("trie permutation is not a bijection")),
            }
        }
        let mut rows: Vec<Vec<i64>> = rel
            .tuples()
            .map(|t| {
                perm.iter()
                    .filter_map(|&c| t.get(c as usize).copied())
                    .collect()
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let data = rows.into_iter().flatten().collect();
        Ok(TrieIndex { arity, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Trie depth (the relation's arity).
    pub fn depth(&self) -> usize {
        self.arity
    }

    /// Value at `(row, col)`, or `None` out of range.
    fn at(&self, row: usize, col: usize) -> Option<i64> {
        if col >= self.arity {
            return None;
        }
        self.data.get(row * self.arity + col).copied()
    }

    /// First row in `[lo, hi)` whose `col` value is ≥ `v`.
    fn lower_bound(&self, mut lo: usize, mut hi: usize, col: usize, v: i64) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.at(mid, col).is_some_and(|x| x < v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First row in `[lo, hi)` whose `col` value is > `v`.
    fn upper_bound(&self, mut lo: usize, mut hi: usize, col: usize, v: i64) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.at(mid, col).is_some_and(|x| x <= v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// One open trie level: the cursor position and the end of the row
/// range matching the prefix bound so far (the start is wherever the
/// cursor entered; the iterators only ever move forward).
#[derive(Debug, Clone, Copy)]
struct Level {
    hi: usize,
    pos: usize,
}

/// A cursor over a [`TrieIndex`], one level per trie depth.
///
/// At depth `d` (after `d` calls to [`open`](TrieIter::open)), the
/// cursor enumerates the distinct values of permuted column `d-1`
/// within the rows matching the keys selected at shallower levels.
/// `advance` moves to the next distinct value, `seek` leapfrogs to the
/// first value ≥ a target; both return the new key or `None` when the
/// level is exhausted.
#[derive(Debug, Clone)]
pub struct TrieIter<'a> {
    trie: &'a TrieIndex,
    levels: Vec<Level>,
}

impl<'a> TrieIter<'a> {
    /// A cursor at the trie root (no level open).
    pub fn new(trie: &'a TrieIndex) -> Self {
        TrieIter {
            trie,
            levels: Vec::with_capacity(trie.depth()),
        }
    }

    /// Current depth (number of open levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Descends one level, positioning on its first key. Returns that
    /// key, or `None` if the trie is already at full depth or the new
    /// level is empty (in which case no level is opened).
    pub fn open(&mut self) -> Option<i64> {
        let d = self.levels.len();
        if d >= self.trie.depth() {
            return None;
        }
        let (lo, hi) = match self.levels.last() {
            // Child range of the current key at the parent level.
            Some(parent) => {
                if parent.pos >= parent.hi {
                    return None; // parent level exhausted; nothing below
                }
                let k = self.trie.at(parent.pos, d - 1)?;
                (
                    parent.pos,
                    self.trie.upper_bound(parent.pos, parent.hi, d - 1, k),
                )
            }
            None => (0, self.trie.rows()),
        };
        if lo >= hi {
            return None;
        }
        self.levels.push(Level { hi, pos: lo });
        self.trie.at(lo, d)
    }

    /// Ascends one level. No-op at the root.
    pub fn up(&mut self) {
        self.levels.pop();
    }

    /// Rows remaining in the current level's range (an upper bound on
    /// the distinct keys still ahead) — the generic-join pivot metric.
    /// Zero at the root.
    pub fn remaining(&self) -> usize {
        self.levels
            .last()
            .map_or(0, |level| level.hi.saturating_sub(level.pos))
    }

    /// The key at the current level, or `None` at the root / past the
    /// end.
    pub fn key(&self) -> Option<i64> {
        let level = self.levels.last()?;
        if level.pos >= level.hi {
            return None;
        }
        self.trie.at(level.pos, self.levels.len() - 1)
    }

    /// Moves to the next distinct key at the current level. Returns it,
    /// or `None` when the level is exhausted.
    pub fn advance(&mut self) -> Option<i64> {
        let d = self.levels.len();
        let level = self.levels.last_mut()?;
        let col = d - 1;
        let k = self.trie.at(level.pos, col)?;
        level.pos = self.trie.upper_bound(level.pos, level.hi, col, k);
        if level.pos >= level.hi {
            return None;
        }
        self.trie.at(level.pos, col)
    }

    /// Leapfrogs to the first key ≥ `v` at the current level. Returns
    /// it, or `None` when no such key exists. Seeking backwards is a
    /// no-op (the cursor only moves forward).
    pub fn seek(&mut self, v: i64) -> Option<i64> {
        let d = self.levels.len();
        let level = self.levels.last_mut()?;
        let col = d - 1;
        level.pos = self.trie.lower_bound(level.pos, level.hi, col, v);
        if level.pos >= level.hi {
            return None;
        }
        self.trie.at(level.pos, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(tuples: &[&[i64]]) -> MultiRelation {
        MultiRelation::new(
            "R",
            tuples.first().map_or(2, |t| t.len()),
            tuples.iter().map(|t| t.to_vec()),
        )
        .unwrap()
    }

    #[test]
    fn multi_relation_sorts_and_dedups() {
        let r = rel(&[&[3, 1], &[1, 2], &[3, 1], &[1, 1]]);
        let rows: Vec<&[i64]> = r.tuples().collect();
        assert_eq!(rows, vec![&[1i64, 1][..], &[1, 2], &[3, 1]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuple(2), Some(&[3i64, 1][..]));
        assert_eq!(r.tuple(3), None);
    }

    #[test]
    fn arity_mismatch_is_classified() {
        let e = MultiRelation::new("R", 2, vec![vec![1, 2], vec![1]]);
        assert!(matches!(e, Err(RelalgError::ArityMismatch { .. })));
    }

    #[test]
    fn permuted_trie_reorders_columns() {
        let r = rel(&[&[1, 10], &[2, 5], &[2, 7]]);
        let t = TrieIndex::build(&r, &[1, 0]).unwrap();
        // sorted by (col1, col0): (5,2), (7,2), (10,1)
        let mut it = TrieIter::new(&t);
        assert_eq!(it.open(), Some(5));
        assert_eq!(it.advance(), Some(7));
        assert_eq!(it.advance(), Some(10));
        assert_eq!(it.advance(), None);
    }

    #[test]
    fn bad_permutation_is_internal_error() {
        let r = rel(&[&[1, 2]]);
        assert!(TrieIndex::build(&r, &[0]).is_err());
        assert!(TrieIndex::build(&r, &[0, 0]).is_err());
        assert!(TrieIndex::build(&r, &[0, 2]).is_err());
    }

    #[test]
    fn open_up_walks_groups() {
        let r = rel(&[&[1, 10], &[1, 20], &[2, 30]]);
        let t = TrieIndex::build(&r, &[0, 1]).unwrap();
        let mut it = TrieIter::new(&t);
        assert_eq!(it.open(), Some(1));
        assert_eq!(it.open(), Some(10));
        assert_eq!(it.advance(), Some(20));
        assert_eq!(it.advance(), None);
        it.up();
        assert_eq!(it.advance(), Some(2));
        assert_eq!(it.open(), Some(30));
        assert_eq!(it.advance(), None);
        it.up();
        assert_eq!(it.advance(), None);
    }

    #[test]
    fn seek_leapfrogs_forward_only() {
        let r = rel(&[&[1, 0], &[3, 0], &[5, 0], &[9, 0]]);
        let t = TrieIndex::build(&r, &[0, 1]).unwrap();
        let mut it = TrieIter::new(&t);
        assert_eq!(it.open(), Some(1));
        assert_eq!(it.seek(4), Some(5));
        // backward seek does not rewind
        assert_eq!(it.seek(2), Some(5));
        assert_eq!(it.seek(6), Some(9));
        assert_eq!(it.seek(10), None);
        assert_eq!(it.key(), None);
    }

    #[test]
    fn degenerate_relations() {
        // empty
        let r = MultiRelation::new("R", 2, Vec::<Vec<i64>>::new()).unwrap();
        assert!(r.is_empty());
        let t = TrieIndex::build(&r, &[0, 1]).unwrap();
        let mut it = TrieIter::new(&t);
        assert_eq!(it.open(), None);
        assert_eq!(it.depth(), 0);
        // single tuple
        let r = rel(&[&[7, 8]]);
        let t = TrieIndex::build(&r, &[0, 1]).unwrap();
        let mut it = TrieIter::new(&t);
        assert_eq!(it.open(), Some(7));
        assert_eq!(it.open(), Some(8));
        assert_eq!(it.open(), None, "already at full depth");
        // all-duplicate rows collapse under set semantics
        let r = rel(&[&[4, 4], &[4, 4], &[4, 4]]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn key_reflects_cursor() {
        let r = rel(&[&[2, 1], &[2, 9], &[6, 3]]);
        let t = TrieIndex::build(&r, &[0, 1]).unwrap();
        let mut it = TrieIter::new(&t);
        assert_eq!(it.key(), None, "root has no key");
        it.open();
        assert_eq!(it.key(), Some(2));
        it.open();
        assert_eq!(it.key(), Some(1));
        it.up();
        it.advance();
        assert_eq!(it.key(), Some(6));
    }
}
