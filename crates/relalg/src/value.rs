//! Column values for single-column relations.
//!
//! §2 of the paper: "we assume that all relations have a single column,
//! and that all joins are on that column. … These new types include
//! spatial types, in which the elements of the domain are typically
//! polygons over some coordinate system; and set-valued types, in which
//! the elements of the domain are sets."

use jp_geometry::{ConvexPolygon, Region};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of `u32` element ids, stored as a sorted, deduplicated vector.
///
/// This is the set-valued domain of the containment-join literature the
/// paper cites (\[5\], \[14\]); elements are ids into some dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IdSet {
    elems: Vec<u32>,
}

impl IdSet {
    /// The empty set.
    pub fn empty() -> Self {
        IdSet::default()
    }

    /// Builds a set, sorting and deduplicating.
    pub fn new(mut elems: Vec<u32>) -> Self {
        elems.sort_unstable();
        elems.dedup();
        IdSet { elems }
    }

    /// Sorted elements.
    pub fn elems(&self) -> &[u32] {
        &self.elems
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, e: u32) -> bool {
        self.elems.binary_search(&e).is_ok()
    }

    /// Whether `self ⊆ other`. Linear merge over the sorted vectors.
    pub fn is_subset_of(&self, other: &IdSet) -> bool {
        if self.elems.len() > other.elems.len() {
            return false;
        }
        let mut j = 0;
        for &e in &self.elems {
            while j < other.elems.len() && other.elems[j] < e {
                j += 1;
            }
            if j >= other.elems.len() || other.elems[j] != e {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Whether the sets share at least one element.
    pub fn intersects(&self, other: &IdSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl FromIterator<u32> for IdSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        IdSet::new(iter.into_iter().collect())
    }
}

impl fmt::Display for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A single-column value. All variants support equality, hashing, and a
/// total order, so the generic equijoin algorithms (hash, sort-merge)
/// work over every domain — exactly the paper's point that *equality* is
/// easy regardless of domain, while richer predicates over the same
/// domains are hard.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// Numeric value (the "flavor of numeric type" of traditional systems).
    Int(i64),
    /// Character string.
    Str(String),
    /// Set-valued attribute for containment/overlap joins.
    Set(IdSet),
    /// Rectilinear spatial region (the polygon stand-in; see DESIGN.md).
    Spatial(Region),
    /// Convex polygon (the paper's literal spatial domain).
    Polygon(ConvexPolygon),
}

impl Value {
    /// Short domain name, used in error messages.
    pub fn domain(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Set(_) => "set",
            Value::Spatial(_) => "spatial",
            Value::Polygon(_) => "polygon",
        }
    }

    /// The integer, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The set, if this is a [`Value::Set`].
    pub fn as_set(&self) -> Option<&IdSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// The region, if this is a [`Value::Spatial`].
    pub fn as_region(&self) -> Option<&Region> {
        match self {
            Value::Spatial(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Set(s) => write!(f, "{s}"),
            Value::Spatial(r) => write!(f, "{r}"),
            Value::Polygon(p) => write!(f, "poly({} vertices)", p.vertices().len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idset_normalizes() {
        let s = IdSet::new(vec![3, 1, 3, 2]);
        assert_eq!(s.elems(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(4));
    }

    #[test]
    fn subset_cases() {
        let empty = IdSet::empty();
        let s12 = IdSet::new(vec![1, 2]);
        let s123 = IdSet::new(vec![1, 2, 3]);
        let s14 = IdSet::new(vec![1, 4]);
        assert!(empty.is_subset_of(&empty));
        assert!(empty.is_subset_of(&s12));
        assert!(!s12.is_subset_of(&empty));
        assert!(s12.is_subset_of(&s123));
        assert!(!s123.is_subset_of(&s12));
        assert!(s12.is_subset_of(&s12));
        assert!(!s14.is_subset_of(&s123));
    }

    #[test]
    fn intersects_cases() {
        let a = IdSet::new(vec![1, 3, 5]);
        let b = IdSet::new(vec![2, 4, 5]);
        let c = IdSet::new(vec![2, 4, 6]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!IdSet::empty().intersects(&a));
        assert!(!a.intersects(&IdSet::empty()));
    }

    #[test]
    fn idset_from_iterator_and_display() {
        let s: IdSet = [5u32, 1, 5].into_iter().collect();
        assert_eq!(s.to_string(), "{1,5}");
        assert_eq!(IdSet::empty().to_string(), "{}");
    }

    #[test]
    fn value_accessors() {
        let v = Value::Int(9);
        assert_eq!(v.as_int(), Some(9));
        assert_eq!(v.as_set(), None);
        assert_eq!(v.domain(), "int");
        let s = Value::Set(IdSet::new(vec![1]));
        assert!(s.as_set().is_some());
        assert_eq!(s.domain(), "set");
    }

    #[test]
    fn value_ordering_is_total() {
        let mut vs = vec![
            Value::Str("b".into()),
            Value::Int(2),
            Value::Int(1),
            Value::Str("a".into()),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Str("a".into()),
                Value::Str("b".into())
            ]
        );
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Set(IdSet::new(vec![2, 1])).to_string(), "{1,2}");
    }
}
