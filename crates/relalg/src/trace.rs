//! Join-algorithm *traces*: the order in which each algorithm considers
//! joining tuple pairs.
//!
//! §2 of the paper: "For every pair of tuples `(r, s)` that joins, any
//! join algorithm has to consider this pair of tuples at some point of
//! time in its execution … We model this by stating that the join
//! algorithm places one pebble on each vertex" — i.e. **every join
//! algorithm implies a pebbling scheme**: its result-pair visit order, as
//! an edge order of the join graph. The implied effective cost
//! `π(trace)` measures how pebble-efficient the algorithm's access
//! pattern is; the paper's remark that the optimal equijoin pebbling "is
//! similar to the merge phase of sort-merge join" (Theorem 4.1) becomes
//! a measurement here (experiment E16):
//!
//! * [`sort_merge_boustrophedon`] achieves the optimum `π = m` on
//!   equijoins — it alternates the inner-group scan direction;
//! * [`sort_merge_forward`] (the textbook rescan-forward merge) pays one
//!   jump per outer tuple beyond the first in every group;
//! * [`nested_loops_trace`] pays a jump for almost every output pair —
//!   the `2m` worst case of Lemma 2.1;
//! * [`hash_join_trace`] sits between, depending on build-side clustering.
//!
//! All traces must visit exactly the join-graph edge set; conversion to a
//! scheme and validation happen through
//! `implied_scheme` in the `jp-pebble` crate's `analysis` module.

use crate::error::{checked_tuple_count, require_region, require_set, RelalgError};
use crate::predicate::JoinPredicate;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashMap;

/// A trace: result pairs in the order the algorithm considers them.
pub type Trace = Vec<(u32, u32)>;

/// Nested loops: row-major scan order.
pub fn nested_loops_trace(r: &Relation, s: &Relation, pred: &dyn JoinPredicate) -> Trace {
    let mut out = Vec::new();
    for (i, a) in r.iter() {
        for (j, b) in s.iter() {
            if pred.matches(a, b) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Hash join: build on `S`, probe in `R` order; matches surface in build
/// insertion order.
pub fn hash_join_trace(r: &Relation, s: &Relation) -> Trace {
    let mut table: HashMap<&Value, Vec<u32>> = HashMap::new();
    for (j, b) in s.iter() {
        table.entry(b).or_default().push(j);
    }
    let mut out = Vec::new();
    for (i, a) in r.iter() {
        if let Some(js) = table.get(a) {
            out.extend(js.iter().map(|&j| (i, j)));
        }
    }
    out
}

fn sorted_runs(rel: &Relation) -> Vec<(&Value, u32)> {
    let mut v: Vec<(&Value, u32)> = rel.iter().map(|(i, val)| (val, i)).collect();
    v.sort();
    v
}

/// Textbook sort-merge: for each outer tuple of a matching group, rescan
/// the inner group *forward*. On a `k × l` group this produces the edge
/// order `(r1,s1)…(r1,sl), (r2,s1)…` whose group-boundary transitions
/// `(r_i, s_l) → (r_{i+1}, s_1)` are jumps — `k − 1` jumps per group.
pub fn sort_merge_forward(r: &Relation, s: &Relation) -> Trace {
    sort_merge_trace(r, s, false)
}

/// Boustrophedon sort-merge: alternate the inner scan direction per outer
/// tuple — the Lemma 3.2 sequence, jump-free within every group. This is
/// the variant the paper's Theorem 4.1 construction mirrors.
pub fn sort_merge_boustrophedon(r: &Relation, s: &Relation) -> Trace {
    sort_merge_trace(r, s, true)
}

fn sort_merge_trace(r: &Relation, s: &Relation, boustrophedon: bool) -> Trace {
    let ra = sorted_runs(r);
    let sb = sorted_runs(s);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < sb.len() {
        match ra[i].0.cmp(sb[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let gi = (i..ra.len()).take_while(|&k| ra[k].0 == ra[i].0).count();
                let gj = (j..sb.len()).take_while(|&k| sb[k].0 == sb[j].0).count();
                for (step, a) in ra[i..i + gi].iter().enumerate() {
                    let inner: Box<dyn Iterator<Item = &(&Value, u32)>> =
                        if boustrophedon && step % 2 == 1 {
                            Box::new(sb[j..j + gj].iter().rev())
                        } else {
                            Box::new(sb[j..j + gj].iter())
                        };
                    for b in inner {
                        out.push((a.1, b.1));
                    }
                }
                i += gi;
                j += gj;
            }
        }
    }
    out
}

/// Inverted-index containment join: `R`-major order, candidates in
/// postings order.
///
/// # Errors
/// [`RelalgError::WrongDomain`] if any tuple in either relation is not
/// set-valued; [`RelalgError::TooManyTuples`] on oversize relations.
pub fn containment_index_trace(r: &Relation, s: &Relation) -> Result<Trace, RelalgError> {
    let sn = checked_tuple_count(s)?;
    let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
    for j in 0..s.len() {
        for &e in require_set(s, j)?.elems() {
            postings.entry(e).or_default().push(j as u32);
        }
    }
    let empty: Vec<u32> = Vec::new();
    let mut out = Vec::new();
    for i in 0..r.len() {
        let set = require_set(r, i)?;
        let i = i as u32;
        if set.is_empty() {
            out.extend((0..sn).map(|j| (i, j)));
            continue;
        }
        let mut lists: Vec<&Vec<u32>> = set
            .elems()
            .iter()
            .map(|e| postings.get(e).unwrap_or(&empty))
            .collect();
        lists.sort_by_key(|l| l.len());
        let mut candidates = lists[0].clone();
        for list in &lists[1..] {
            candidates.retain(|c| list.binary_search(c).is_ok());
        }
        out.extend(candidates.into_iter().map(|j| (i, j)));
    }
    Ok(out)
}

/// Plane-sweep spatial join: pairs in sweep-line discovery order.
///
/// # Errors
/// [`RelalgError::WrongDomain`] if any tuple in either relation is not
/// region-valued; [`RelalgError::TooManyTuples`] on oversize relations.
pub fn spatial_sweep_trace(r: &Relation, s: &Relation) -> Result<Trace, RelalgError> {
    checked_tuple_count(r)?;
    checked_tuple_count(s)?;
    // Pre-validate both domains so the sweep callback (infallible) only
    // sees region values.
    let mut ra = Vec::with_capacity(r.len());
    for i in 0..r.len() {
        ra.push((require_region(r, i)?.mbr(), i as u32));
    }
    let mut sb = Vec::with_capacity(s.len());
    for j in 0..s.len() {
        sb.push((require_region(s, j)?.mbr(), j as u32));
    }
    let mut out = Vec::new();
    jp_geometry::sweep::sweep_join(&ra, &sb, |i, j| {
        if let (Some(x), Some(y)) = (
            r.value(i as usize).as_region(),
            s.value(j as usize).as_region(),
        ) {
            if x.intersects(y) {
                out.push((i, j));
            }
        }
    });
    Ok(out)
}

/// An unordered executor: the result pairs of an equality join emitted in
/// pseudo-random order — the access pattern of an unclustered RID-pair
/// producer (bitmap-index intersection, exchange-shuffled parallel scan).
/// Its implied pebbling cost approaches Lemma 2.1's `2m` ceiling.
pub fn unordered_executor_trace(r: &Relation, s: &Relation, seed: u64) -> Trace {
    let mut pairs = hash_join_trace(r, s);
    // Fisher–Yates with a splitmix-style generator (deterministic).
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..pairs.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        pairs.swap(i, j);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Equality;
    use crate::workload;

    fn sorted(mut t: Trace) -> Trace {
        t.sort_unstable();
        t
    }

    #[test]
    fn all_traces_cover_the_same_pairs() {
        let (r, s) = workload::zipf_equijoin(60, 60, 10, 0.7, 1);
        let expect = sorted(nested_loops_trace(&r, &s, &Equality));
        assert_eq!(sorted(hash_join_trace(&r, &s)), expect);
        assert_eq!(sorted(sort_merge_forward(&r, &s)), expect);
        assert_eq!(sorted(sort_merge_boustrophedon(&r, &s)), expect);
    }

    #[test]
    fn boustrophedon_differs_from_forward_only_in_order() {
        let r = Relation::from_ints("R", [1, 1, 1]);
        let s = Relation::from_ints("S", [1, 1]);
        let fwd = sort_merge_forward(&r, &s);
        let bst = sort_merge_boustrophedon(&r, &s);
        assert_eq!(sorted(fwd.clone()), sorted(bst.clone()));
        assert_ne!(fwd, bst);
        // forward: (0,0)(0,1)(1,0)(1,1)... boustrophedon flips row 1
        assert_eq!(bst[2], (1, 1));
    }

    #[test]
    fn unordered_executor_is_permutation_of_result() {
        let (r, s) = workload::zipf_equijoin(40, 40, 8, 0.5, 9);
        let base = sorted(hash_join_trace(&r, &s));
        let shuffled = unordered_executor_trace(&r, &s, 7);
        assert_ne!(shuffled, hash_join_trace(&r, &s), "shuffle changes order");
        assert_eq!(sorted(shuffled), base);
    }

    #[test]
    fn containment_trace_covers_result() {
        let (r, s) = workload::set_workload(30, 20, 100, 2..=4, 5..=9, 0.5, 2);
        let expect = crate::algorithms::containment::naive(&r, &s);
        assert_eq!(sorted(containment_index_trace(&r, &s).unwrap()), expect);
    }

    #[test]
    fn spatial_trace_covers_result() {
        let r = workload::uniform_rects(50, 500, 40, 3);
        let s = workload::uniform_rects(50, 500, 40, 4);
        let expect = crate::algorithms::spatial::naive(&r, &s);
        assert_eq!(sorted(spatial_sweep_trace(&r, &s).unwrap()), expect);
    }

    #[test]
    fn traces_classify_wrong_domains() {
        let ints = Relation::from_ints("R", [1]);
        let sets = Relation::from_sets("S", [crate::value::IdSet::empty()]);
        assert!(matches!(
            containment_index_trace(&ints, &sets),
            Err(crate::error::RelalgError::WrongDomain { .. })
        ));
        assert!(matches!(
            spatial_sweep_trace(&ints, &ints),
            Err(crate::error::RelalgError::WrongDomain { .. })
        ));
    }
}
