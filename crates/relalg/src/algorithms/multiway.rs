//! Worst-case-optimal multiway joins over trie indexes.
//!
//! Two algorithms over the shared variable-ordering plan of a
//! [`ConjunctiveQuery`]:
//!
//! * **Leapfrog Triejoin** (Veldhuizen 2012): at each variable, the
//!   participating atoms' trie iterators leapfrog — every iterator
//!   repeatedly seeks to the current maximum key — so each level is a
//!   sorted-list intersection whose cost tracks the smallest list.
//! * **Generic join** (Ngo–Porat–Ré–Rudra 2012): at each variable the
//!   smallest participating iterator enumerates candidates and the
//!   others are probed by seek — the textbook form whose runtime is
//!   bounded by the AGM fractional-cover output bound.
//!
//! Both are compared against [`MultiwayAlgo::Cascade`], the binary
//! nested-loops join tree that materializes every intermediate result —
//! the baseline whose intermediate-tuple blowup on skewed instances is
//! exactly what worst-case optimality eliminates (experiment E23).
//!
//! Work counters are deterministic and surface through jp-obs
//! (`wcoj.seek`, `wcoj.emit`, `wcoj.intermediate`), so `jp trace check`
//! gates them against the committed baseline. This module is in the
//! jp-audit panic-freedom scope: all cursor access is checked, and
//! planner invariant breaks surface as [`RelalgError::Internal`].

use crate::error::RelalgError;
use crate::query::ConjunctiveQuery;
use crate::trie::{MultiRelation, TrieIndex, TrieIter};
use jp_graph::BipartiteGraph;
use std::collections::HashMap;

/// Which multiway algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiwayAlgo {
    /// Leapfrog Triejoin.
    Lftj,
    /// Generic join (smallest-relation candidate enumeration).
    Generic,
    /// Binary nested-loops cascade (the non-worst-case-optimal
    /// baseline; materializes every intermediate result).
    Cascade,
}

impl MultiwayAlgo {
    /// Short name, used in bench case labels and CLI output.
    // audit:allow(obs-coverage) constant label accessor, not a solver entrypoint
    pub fn name(self) -> &'static str {
        match self {
            MultiwayAlgo::Lftj => "lftj",
            MultiwayAlgo::Generic => "generic",
            MultiwayAlgo::Cascade => "cascade",
        }
    }
}

impl std::str::FromStr for MultiwayAlgo {
    type Err = RelalgError;

    fn from_str(s: &str) -> Result<Self, RelalgError> {
        match s {
            "lftj" => Ok(MultiwayAlgo::Lftj),
            "generic" => Ok(MultiwayAlgo::Generic),
            "cascade" => Ok(MultiwayAlgo::Cascade),
            other => Err(RelalgError::UnknownAlgorithm {
                name: other.to_string(),
            }),
        }
    }
}

/// Deterministic work counters for one multiway execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiwayStats {
    /// Cursor movements: `open`/`advance`/`seek` calls (and, for the
    /// cascade, tuple-pair comparisons — its analogue of a probe).
    pub seeks: u64,
    /// Output rows emitted.
    pub emits: u64,
    /// Intermediate tuples: partial bindings at non-final levels for
    /// the trie algorithms; materialized intermediate-result rows for
    /// the cascade. The quantity worst-case optimality bounds.
    pub intermediate: u64,
}

/// The result of a multiway join: output rows in the plan's variable
/// order, plus the certified AGM bound and the work counters.
#[derive(Debug, Clone)]
pub struct MultiwayOutput {
    /// Output rows; `rows[i][d]` binds variable `order[d]`. Sorted.
    pub rows: Vec<Vec<i64>>,
    /// The shared variable ordering the plan bound, most-constrained
    /// variable first.
    pub order: Vec<u32>,
    /// The AGM bound `∏ |R_i|^{w_i}` for this instance; `rows.len()`
    /// never exceeds it.
    pub agm_bound: f64,
    /// Deterministic work counters.
    pub stats: MultiwayStats,
}

/// One atom of an explained plan: where it sits in the trie-join and
/// what the fractional cover charges it.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomExplain {
    /// Index into the relation slice.
    pub relation: usize,
    /// Variables bound by the atom's columns, in column order.
    pub vars: Vec<u32>,
    /// The atom's fractional-edge-cover weight `w_i`.
    pub weight: f64,
    /// Cardinality of the backing relation.
    pub rows: usize,
    /// The atom's variables permuted into global binding order — the
    /// key order of the trie index built for it.
    pub key_order: Vec<u32>,
}

/// The compiled plan in explainable form: what `jp explain` renders
/// and annotates with observed counters. Everything here is decided
/// before the first tuple is touched.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// The shared variable ordering, most-constrained variable first.
    pub order: Vec<u32>,
    /// Per atom: position, cover weight, cardinality, trie key order.
    pub atoms: Vec<AtomExplain>,
    /// `levels[d]` = indices of atoms participating in the
    /// intersection at binding level `d` (the atoms containing
    /// variable `order[d]`).
    pub levels: Vec<Vec<usize>>,
    /// The AGM output bound `∏ |R_i|^{w_i}` for this instance.
    pub agm_bound: f64,
}

/// Explains the plan [`solve`] would run for `(q, rels)` without
/// executing it: variable ordering, per-atom trie key orders, level
/// membership, cover weights, and the certified AGM bound.
///
/// # Errors
/// The same validation failures as [`solve`]:
/// [`RelalgError::UnknownRelation`] / [`RelalgError::ArityMismatch`].
// audit:allow(obs-coverage) pure planning metadata — the paired solve() run carries the wcoj spans and counters
pub fn explain_plan(
    q: &ConjunctiveQuery,
    rels: &[MultiRelation],
) -> Result<PlanExplain, RelalgError> {
    q.check_relations(rels)?;
    let order = q.variable_order();
    let rank: HashMap<u32, usize> = order.iter().enumerate().map(|(d, &v)| (v, d)).collect();
    let sizes: Vec<usize> = rels.iter().map(MultiRelation::len).collect();
    let atoms = q
        .atoms()
        .iter()
        .zip(q.cover())
        .map(|(atom, &weight)| {
            let mut key_order = atom.vars.clone();
            key_order.sort_by_key(|v| rank.get(v).copied().unwrap_or(usize::MAX));
            AtomExplain {
                relation: atom.relation,
                vars: atom.vars.clone(),
                weight,
                rows: sizes.get(atom.relation).copied().unwrap_or(0),
                key_order,
            }
        })
        .collect();
    let levels = order
        .iter()
        .map(|v| {
            q.atoms()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.vars.contains(v))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    Ok(PlanExplain {
        agm_bound: q.agm_bound(&sizes),
        order,
        atoms,
        levels,
    })
}

/// The compiled plan: variable order, per-level participating atoms,
/// and one trie index per atom with columns permuted into order rank.
struct Plan {
    order: Vec<u32>,
    /// `levels[d]` = indices of atoms containing variable `order[d]`.
    levels: Vec<Vec<usize>>,
    tries: Vec<TrieIndex>,
}

fn compile(q: &ConjunctiveQuery, rels: &[MultiRelation]) -> Result<Plan, RelalgError> {
    q.check_relations(rels)?;
    let order = q.variable_order();
    let rank: HashMap<u32, usize> = order.iter().enumerate().map(|(d, &v)| (v, d)).collect();
    let mut tries = Vec::with_capacity(q.atoms().len());
    for atom in q.atoms() {
        let Some(rel) = rels.get(atom.relation) else {
            return Err(RelalgError::Internal("atom relation vanished after check"));
        };
        // Column permutation: the atom's columns sorted by global rank.
        let mut cols: Vec<u32> = (0..atom.vars.len() as u32).collect();
        cols.sort_by_key(|&c| {
            atom.vars
                .get(c as usize)
                .and_then(|v| rank.get(v))
                .copied()
                .unwrap_or(usize::MAX)
        });
        tries.push(TrieIndex::build(rel, &cols)?);
    }
    let levels = order
        .iter()
        .map(|v| {
            q.atoms()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.vars.contains(v))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    Ok(Plan {
        order,
        levels,
        tries,
    })
}

/// The recursive trie-join engine shared by LFTJ and generic join;
/// only the per-level intersection strategy differs.
struct Engine<'a> {
    plan: &'a Plan,
    iters: Vec<TrieIter<'a>>,
    binding: Vec<i64>,
    rows: Vec<Vec<i64>>,
    stats: MultiwayStats,
    generic: bool,
}

impl<'a> Engine<'a> {
    fn new(plan: &'a Plan, generic: bool) -> Self {
        Engine {
            plan,
            iters: plan.tries.iter().map(TrieIter::new).collect(),
            binding: vec![0; plan.order.len()],
            rows: Vec::new(),
            stats: MultiwayStats::default(),
            generic,
        }
    }

    /// Opens the participating iterators at level `d`, intersects, and
    /// restores the iterators on the way out.
    fn enter(&mut self, d: usize) -> Result<(), RelalgError> {
        let Some(parts) = self.plan.levels.get(d) else {
            return Err(RelalgError::Internal("join level out of plan range"));
        };
        let parts = parts.clone();
        let mut opened = Vec::with_capacity(parts.len());
        let mut all_open = true;
        for &a in &parts {
            self.stats.seeks += 1;
            let Some(it) = self.iters.get_mut(a) else {
                return Err(RelalgError::Internal("plan references missing iterator"));
            };
            if it.open().is_some() {
                opened.push(a);
            } else {
                all_open = false;
                break;
            }
        }
        if all_open {
            if self.generic {
                self.intersect_generic(d, &parts)?;
            } else {
                self.intersect_leapfrog(d, &parts)?;
            }
        }
        for &a in &opened {
            if let Some(it) = self.iters.get_mut(a) {
                it.up();
            }
        }
        Ok(())
    }

    /// A key matched at level `d` by every participant: emit or recurse.
    fn on_match(&mut self, d: usize, key: i64) -> Result<(), RelalgError> {
        let Some(slot) = self.binding.get_mut(d) else {
            return Err(RelalgError::Internal("binding slot out of range"));
        };
        *slot = key;
        if d + 1 == self.plan.order.len() {
            self.stats.emits += 1;
            self.rows.push(self.binding.clone());
            Ok(())
        } else {
            self.stats.intermediate += 1;
            self.enter(d + 1)
        }
    }

    /// Leapfrog intersection: every participant repeatedly seeks to the
    /// running maximum until all keys agree.
    fn intersect_leapfrog(&mut self, d: usize, parts: &[usize]) -> Result<(), RelalgError> {
        loop {
            let mut hi = i64::MIN;
            let mut all_eq = true;
            let mut first = true;
            for &a in parts {
                let Some(k) = self.iters.get(a).and_then(TrieIter::key) else {
                    return Ok(()); // a participant is exhausted
                };
                if first {
                    hi = k;
                    first = false;
                } else if k != hi {
                    all_eq = false;
                    hi = hi.max(k);
                }
            }
            if first {
                return Err(RelalgError::Internal("level with no participants"));
            }
            if all_eq {
                self.on_match(d, hi)?;
                let Some(&a0) = parts.first() else {
                    return Ok(());
                };
                self.stats.seeks += 1;
                if self.iters.get_mut(a0).and_then(TrieIter::advance).is_none() {
                    return Ok(());
                }
            } else {
                for &a in parts {
                    let Some(it) = self.iters.get_mut(a) else {
                        return Err(RelalgError::Internal("plan references missing iterator"));
                    };
                    if it.key().is_some_and(|k| k < hi) {
                        self.stats.seeks += 1;
                        if it.seek(hi).is_none() {
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// Generic-join intersection: the participant with the fewest
    /// remaining rows enumerates candidates; the others are probed.
    fn intersect_generic(&mut self, d: usize, parts: &[usize]) -> Result<(), RelalgError> {
        let pivot = parts
            .iter()
            .copied()
            .min_by_key(|&a| self.iters.get(a).map_or(usize::MAX, TrieIter::remaining));
        let Some(pivot) = pivot else {
            return Err(RelalgError::Internal("level with no participants"));
        };
        loop {
            let Some(k) = self.iters.get(pivot).and_then(TrieIter::key) else {
                return Ok(()); // pivot exhausted
            };
            let mut present = true;
            for &a in parts {
                if a == pivot {
                    continue;
                }
                let Some(it) = self.iters.get_mut(a) else {
                    return Err(RelalgError::Internal("plan references missing iterator"));
                };
                self.stats.seeks += 1;
                // Probes are forward-only and pivot keys ascend, so a
                // plain lower-bound seek is sound.
                if it.seek(k) != Some(k) {
                    present = false;
                    break;
                }
            }
            if present {
                self.on_match(d, k)?;
            }
            self.stats.seeks += 1;
            if self
                .iters
                .get_mut(pivot)
                .and_then(TrieIter::advance)
                .is_none()
            {
                return Ok(());
            }
        }
    }

    /// Runs the engine restricted to the given level-0 keys (the
    /// parallel path: each worker gets a chunk of the root candidates).
    fn run_restricted(&mut self, keys: &[i64]) -> Result<(), RelalgError> {
        let Some(parts) = self.plan.levels.first() else {
            return Err(RelalgError::Internal("plan has no levels"));
        };
        let parts = parts.clone();
        let mut opened = Vec::with_capacity(parts.len());
        let mut all_open = true;
        for &a in &parts {
            self.stats.seeks += 1;
            let Some(it) = self.iters.get_mut(a) else {
                return Err(RelalgError::Internal("plan references missing iterator"));
            };
            if it.open().is_some() {
                opened.push(a);
            } else {
                all_open = false;
                break;
            }
        }
        if all_open {
            'keys: for &k in keys {
                for &a in &parts {
                    let Some(it) = self.iters.get_mut(a) else {
                        return Err(RelalgError::Internal("plan references missing iterator"));
                    };
                    self.stats.seeks += 1;
                    if it.seek(k) != Some(k) {
                        // The key list came from a prior root
                        // intersection; a miss means the chunk is past
                        // this iterator's range.
                        continue 'keys;
                    }
                }
                self.on_match(0, k)?;
            }
        }
        for &a in &opened {
            if let Some(it) = self.iters.get_mut(a) {
                it.up();
            }
        }
        Ok(())
    }

    /// Collects the root-level candidate keys (the leapfrog
    /// intersection of level-0 participants) without recursing.
    fn root_keys(&mut self) -> Result<Vec<i64>, RelalgError> {
        let Some(parts) = self.plan.levels.first() else {
            return Err(RelalgError::Internal("plan has no levels"));
        };
        let parts = parts.clone();
        let mut keys = Vec::new();
        let mut opened = Vec::with_capacity(parts.len());
        let mut all_open = true;
        for &a in &parts {
            self.stats.seeks += 1;
            let Some(it) = self.iters.get_mut(a) else {
                return Err(RelalgError::Internal("plan references missing iterator"));
            };
            if it.open().is_some() {
                opened.push(a);
            } else {
                all_open = false;
                break;
            }
        }
        if all_open {
            'outer: loop {
                let mut hi = i64::MIN;
                let mut all_eq = true;
                let mut first = true;
                for &a in &parts {
                    let Some(k) = self.iters.get(a).and_then(TrieIter::key) else {
                        break 'outer;
                    };
                    if first {
                        hi = k;
                        first = false;
                    } else if k != hi {
                        all_eq = false;
                        hi = hi.max(k);
                    }
                }
                if all_eq {
                    keys.push(hi);
                    let Some(&a0) = parts.first() else {
                        break;
                    };
                    self.stats.seeks += 1;
                    if self.iters.get_mut(a0).and_then(TrieIter::advance).is_none() {
                        break;
                    }
                } else {
                    for &a in &parts {
                        let Some(it) = self.iters.get_mut(a) else {
                            break 'outer;
                        };
                        if it.key().is_some_and(|k| k < hi) {
                            self.stats.seeks += 1;
                            if it.seek(hi).is_none() {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        for &a in &opened {
            if let Some(it) = self.iters.get_mut(a) {
                it.up();
            }
        }
        Ok(keys)
    }
}

/// Executes a multiway join.
///
/// `threads > 1` splits the root-level candidate keys over the `jp-par`
/// work-stealing runtime (trie algorithms only; the cascade baseline is
/// sequential). Output rows are sorted, so the result is byte-identical
/// for every thread count, and the work counters are sums over a fixed
/// partition — deterministic as well.
///
/// # Errors
/// Query/relation mismatches ([`RelalgError::UnknownRelation`],
/// [`RelalgError::ArityMismatch`]) and planner invariant violations
/// ([`RelalgError::Internal`]).
pub fn solve(
    q: &ConjunctiveQuery,
    rels: &[MultiRelation],
    algo: MultiwayAlgo,
    threads: usize,
) -> Result<MultiwayOutput, RelalgError> {
    let _span = jp_obs::span("wcoj", algo.name());
    let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Relalg);
    let plan = compile(q, rels)?;
    let sizes: Vec<usize> = rels.iter().map(MultiRelation::len).collect();
    let agm_bound = q.agm_bound(&sizes);
    let (mut rows, stats) = match algo {
        MultiwayAlgo::Cascade => cascade(q, rels, &plan.order)?,
        MultiwayAlgo::Lftj | MultiwayAlgo::Generic => {
            let generic = algo == MultiwayAlgo::Generic;
            if threads <= 1 {
                let mut eng = Engine::new(&plan, generic);
                eng.enter(0)?;
                (eng.rows, eng.stats)
            } else {
                solve_parallel(&plan, generic, threads)?
            }
        }
    };
    rows.sort_unstable();
    let stats = MultiwayStats {
        emits: rows.len() as u64,
        ..stats
    };
    jp_obs::counter("wcoj", "seek", stats.seeks);
    jp_obs::counter("wcoj", "emit", stats.emits);
    jp_obs::counter("wcoj", "intermediate", stats.intermediate);
    Ok(MultiwayOutput {
        rows,
        order: plan.order,
        agm_bound,
        stats,
    })
}

/// Parallel trie join: chunk the root candidate keys, one engine per
/// chunk on the work-stealing runtime, merge and sort.
fn solve_parallel(
    plan: &Plan,
    generic: bool,
    threads: usize,
) -> Result<(Vec<Vec<i64>>, MultiwayStats), RelalgError> {
    let mut scout = Engine::new(plan, generic);
    let keys = scout.root_keys()?;
    let mut stats = scout.stats;
    if keys.is_empty() {
        return Ok((Vec::new(), stats));
    }
    // Fixed chunk geometry → deterministic per-chunk counters whose sum
    // is independent of scheduling.
    let chunk = keys.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<Vec<i64>> = keys.chunks(chunk).map(<[i64]>::to_vec).collect();
    let results = jp_par::run_tasks(threads, chunks, |_, chunk| {
        let mut eng = Engine::new(plan, generic);
        let res = eng.run_restricted(&chunk);
        res.map(|()| (eng.rows, eng.stats))
    });
    let mut rows = Vec::new();
    for r in results {
        let (mut chunk_rows, s) = r?;
        rows.append(&mut chunk_rows);
        stats.seeks += s.seeks;
        stats.emits += s.emits;
        stats.intermediate += s.intermediate;
    }
    Ok((rows, stats))
}

/// The binary nested-loops cascade: joins the atoms left to right,
/// materializing each intermediate result — the baseline whose
/// intermediate count the worst-case-optimal algorithms beat on skew.
fn cascade(
    q: &ConjunctiveQuery,
    rels: &[MultiRelation],
    order: &[u32],
) -> Result<(Vec<Vec<i64>>, MultiwayStats), RelalgError> {
    let mut stats = MultiwayStats::default();
    let mut acc_vars: Vec<u32> = Vec::new();
    // One row of no bindings: the join identity.
    let mut acc: Vec<Vec<i64>> = vec![Vec::new()];
    let last = q.atoms().len().saturating_sub(1);
    for (ai, atom) in q.atoms().iter().enumerate() {
        let Some(rel) = rels.get(atom.relation) else {
            return Err(RelalgError::Internal("atom relation vanished after check"));
        };
        // Columns of this atom joining already-bound variables, and the
        // fresh columns it introduces.
        let shared: Vec<(usize, usize)> = atom
            .vars
            .iter()
            .enumerate()
            .filter_map(|(c, v)| acc_vars.iter().position(|av| av == v).map(|p| (c, p)))
            .collect();
        let fresh: Vec<usize> = (0..atom.vars.len())
            .filter(|c| !shared.iter().any(|&(sc, _)| sc == *c))
            .collect();
        let mut next = Vec::new();
        for row in &acc {
            for t in rel.tuples() {
                stats.seeks += 1; // one tuple-pair comparison
                let matches = shared
                    .iter()
                    .all(|&(c, p)| t.get(c).is_some() && t.get(c) == row.get(p));
                if matches {
                    let mut nr = row.clone();
                    for &c in &fresh {
                        if let Some(&v) = t.get(c) {
                            nr.push(v);
                        }
                    }
                    next.push(nr);
                }
            }
        }
        for &c in &fresh {
            if let Some(&v) = atom.vars.get(c) {
                acc_vars.push(v);
            }
        }
        acc = next;
        if ai < last {
            stats.intermediate += acc.len() as u64;
        }
    }
    // Project to the shared variable order so all algorithms emit
    // byte-identical rows.
    let mut rows = Vec::with_capacity(acc.len());
    for row in acc {
        let mut out = Vec::with_capacity(order.len());
        for v in order {
            let Some(p) = acc_vars.iter().position(|av| av == v) else {
                return Err(RelalgError::Internal("cascade lost a variable binding"));
            };
            let Some(&val) = row.get(p) else {
                return Err(RelalgError::Internal("cascade row missing a binding"));
            };
            out.push(val);
        }
        rows.push(out);
    }
    rows.sort_unstable();
    rows.dedup();
    stats.emits = rows.len() as u64;
    Ok((rows, stats))
}

/// The join graph of a conjunctive query for the pebbling pipeline:
/// for every pair of atoms sharing at least one variable, the bipartite
/// graph of tuple pairs agreeing on the shared variables — an equijoin
/// graph on the composite shared key, so each pairwise graph is a union
/// of complete bipartite blocks and the disjoint union of all pairs
/// flows through the §3 recognizers and the memoized component solver.
///
/// # Errors
/// [`RelalgError::TooManyTuples`] if any relation exceeds `u32::MAX`
/// tuples, plus query/relation mismatch errors.
pub fn query_join_graph(
    q: &ConjunctiveQuery,
    rels: &[MultiRelation],
) -> Result<BipartiteGraph, RelalgError> {
    let _span = jp_obs::span("wcoj", "join_graph");
    q.check_relations(rels)?;
    for rel in rels {
        if u32::try_from(rel.len()).is_err() {
            return Err(RelalgError::TooManyTuples {
                relation: rel.name().to_string(),
                len: rel.len(),
            });
        }
    }
    let atoms = q.atoms();
    let mut graph: Option<BipartiteGraph> = None;
    for (i, ai) in atoms.iter().enumerate() {
        for aj in atoms.iter().skip(i + 1) {
            let shared: Vec<(usize, usize)> = ai
                .vars
                .iter()
                .enumerate()
                .filter_map(|(ci, v)| aj.vars.iter().position(|w| w == v).map(|cj| (ci, cj)))
                .collect();
            if shared.is_empty() {
                continue;
            }
            let (Some(ri), Some(rj)) = (rels.get(ai.relation), rels.get(aj.relation)) else {
                return Err(RelalgError::Internal("atom relation vanished after check"));
            };
            // Group right tuples by their shared-key projection.
            let mut groups: HashMap<Vec<i64>, Vec<u32>> = HashMap::new();
            for (jrow, t) in rj.tuples().enumerate() {
                let key: Vec<i64> = shared
                    .iter()
                    .filter_map(|&(_, cj)| t.get(cj).copied())
                    .collect();
                groups.entry(key).or_default().push(jrow as u32);
            }
            let mut edges = Vec::new();
            for (irow, t) in ri.tuples().enumerate() {
                let key: Vec<i64> = shared
                    .iter()
                    .filter_map(|&(ci, _)| t.get(ci).copied())
                    .collect();
                if let Some(js) = groups.get(&key) {
                    edges.extend(js.iter().map(|&j| (irow as u32, j)));
                }
            }
            let pair = BipartiteGraph::new(ri.len() as u32, rj.len() as u32, edges);
            graph = Some(match graph {
                Some(g) => g.disjoint_union(&pair),
                None => pair,
            });
        }
    }
    graph.ok_or(RelalgError::Internal(
        "query has no pair of atoms sharing a variable",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn tri_rels(r: &[(i64, i64)], s: &[(i64, i64)], t: &[(i64, i64)]) -> Vec<MultiRelation> {
        let mk = |name: &str, e: &[(i64, i64)]| {
            MultiRelation::new(name, 2, e.iter().map(|&(a, b)| vec![a, b])).unwrap()
        };
        vec![mk("R", r), mk("S", s), mk("T", t)]
    }

    #[test]
    fn explain_matches_what_solve_actually_runs() {
        let (q, rels) = workload::triangle_random(60, 4, 7);
        let plan = explain_plan(&q, &rels).unwrap();
        let out = solve(&q, &rels, MultiwayAlgo::Lftj, 1).unwrap();
        assert_eq!(plan.order, out.order, "same variable ordering");
        assert_eq!(plan.agm_bound, out.agm_bound, "same certified bound");
        assert_eq!(plan.atoms.len(), 3);
        for (atom, w) in plan.atoms.iter().zip(q.cover()) {
            assert_eq!(atom.weight, *w);
            assert_eq!(atom.rows, rels[atom.relation].len());
            // the key order is the atom's vars, reordered
            let mut sorted_vars = atom.vars.clone();
            sorted_vars.sort_unstable();
            let mut sorted_keys = atom.key_order.clone();
            sorted_keys.sort_unstable();
            assert_eq!(sorted_vars, sorted_keys);
        }
        // every level intersects the atoms containing that variable;
        // for the triangle each variable lives in exactly 2 atoms
        assert!(
            plan.levels.iter().all(|l| l.len() == 2),
            "{:?}",
            plan.levels
        );
        assert!(out.stats.emits as f64 <= plan.agm_bound);
    }

    #[test]
    fn explain_rejects_mismatched_relations_like_solve_does() {
        let q = ConjunctiveQuery::triangle();
        let rels = tri_rels(&[(1, 2)], &[(2, 3)], &[(1, 3)]);
        assert!(explain_plan(&q, &rels[..2]).is_err(), "missing relation");
    }

    #[test]
    fn triangle_all_algorithms_agree() {
        let q = ConjunctiveQuery::triangle();
        let rels = tri_rels(
            &[(1, 2), (1, 3), (2, 3), (4, 5)],
            &[(2, 3), (3, 1), (3, 4), (5, 6)],
            &[(1, 3), (1, 4), (2, 4), (9, 9)],
        );
        let lftj = solve(&q, &rels, MultiwayAlgo::Lftj, 1).unwrap();
        let gen = solve(&q, &rels, MultiwayAlgo::Generic, 1).unwrap();
        let cas = solve(&q, &rels, MultiwayAlgo::Cascade, 1).unwrap();
        // (1,2,3), (1,3,4), (2,3,4) are the triangles of this instance.
        assert_eq!(lftj.rows, vec![vec![1, 2, 3], vec![1, 3, 4], vec![2, 3, 4]]);
        assert_eq!(gen.rows, lftj.rows);
        assert_eq!(cas.rows, lftj.rows);
        assert!(lftj.rows.len() as f64 <= lftj.agm_bound);
    }

    #[test]
    fn thread_counts_agree() {
        let (q, rels) = workload::triangle_random(60, 4, 11);
        let base = solve(&q, &rels, MultiwayAlgo::Lftj, 1).unwrap();
        for threads in [2, 8] {
            for algo in [MultiwayAlgo::Lftj, MultiwayAlgo::Generic] {
                let out = solve(&q, &rels, algo, threads).unwrap();
                assert_eq!(out.rows, base.rows, "{} at {threads}", algo.name());
            }
        }
    }

    #[test]
    fn empty_relation_empties_output() {
        let q = ConjunctiveQuery::triangle();
        let rels = tri_rels(&[(1, 2)], &[], &[(1, 3)]);
        for algo in [
            MultiwayAlgo::Lftj,
            MultiwayAlgo::Generic,
            MultiwayAlgo::Cascade,
        ] {
            let out = solve(&q, &rels, algo, 1).unwrap();
            assert!(out.rows.is_empty(), "{}", algo.name());
        }
    }

    #[test]
    fn unknown_algorithm_is_classified() {
        assert!(matches!(
            "hash".parse::<MultiwayAlgo>(),
            Err(RelalgError::UnknownAlgorithm { .. })
        ));
        assert_eq!("lftj".parse::<MultiwayAlgo>(), Ok(MultiwayAlgo::Lftj));
    }

    #[test]
    fn mismatched_relations_are_classified() {
        let q = ConjunctiveQuery::triangle();
        let short = vec![MultiRelation::new("R", 2, vec![vec![1, 2]]).unwrap()];
        assert!(matches!(
            solve(&q, &short, MultiwayAlgo::Lftj, 1),
            Err(RelalgError::UnknownRelation { .. })
        ));
        let bad_arity = vec![
            MultiRelation::new("R", 3, vec![vec![1, 2, 3]]).unwrap(),
            MultiRelation::new("S", 2, vec![vec![1, 2]]).unwrap(),
            MultiRelation::new("T", 2, vec![vec![1, 2]]).unwrap(),
        ];
        assert!(matches!(
            solve(&q, &bad_arity, MultiwayAlgo::Lftj, 1),
            Err(RelalgError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn skew_gap_lftj_beats_cascade() {
        let (q, rels) = workload::triangle_skewed(64, 5);
        let lftj = solve(&q, &rels, MultiwayAlgo::Lftj, 1).unwrap();
        let cas = solve(&q, &rels, MultiwayAlgo::Cascade, 1).unwrap();
        assert_eq!(lftj.rows, cas.rows);
        assert!(
            cas.stats.intermediate >= 10 * lftj.stats.intermediate.max(1),
            "cascade {} vs lftj {}",
            cas.stats.intermediate,
            lftj.stats.intermediate
        );
    }

    #[test]
    fn agm_bound_holds_on_workloads() {
        for seed in 0..4 {
            let (q, rels) = workload::triangle_random(50, 4, seed);
            let out = solve(&q, &rels, MultiwayAlgo::Lftj, 1).unwrap();
            assert!(out.rows.len() as f64 <= out.agm_bound, "seed {seed}");
            let (q, rels) = workload::clique4_random(24, 3, seed);
            let out = solve(&q, &rels, MultiwayAlgo::Generic, 1).unwrap();
            assert!(out.rows.len() as f64 <= out.agm_bound, "seed {seed}");
        }
    }

    #[test]
    fn query_join_graph_is_pairwise_equijoin_union() {
        let q = ConjunctiveQuery::triangle();
        let rels = tri_rels(&[(1, 2), (2, 2)], &[(2, 3)], &[(1, 3)]);
        let g = query_join_graph(&q, &rels).unwrap();
        // Three atom pairs each share one variable; the union holds all
        // three pairwise graphs.
        // R-S share b: R(1,2),R(2,2) × S(2,3) → 2 edges.
        // S-T share c: S(2,3) × T(1,3) → 1 edge. R-T share a: 1 edge.
        assert_eq!(g.edge_count(), 4);
    }
}
