//! Set-containment join algorithms (`r.A ⊆ s.B`).
//!
//! The paper cites Helmer–Moerkotte \[5\] and Ramasamy et al. \[14\] ("Set
//! containment joins: the good, the bad and the ugly") as the state of the
//! art — signature-based and partition/index-based algorithms that all
//! replicate or re-scan data. Three representatives:
//!
//! * [`naive`] — nested loops with a subset test per pair;
//! * [`inverted_index`] — index `S` sets by element, intersect postings
//!   lists (the index-based family);
//! * [`signature`] — 64-bit superset-filterable Bloom signatures with
//!   exact verification (the signature-based family);
//! * [`partitioned`] — replicate-and-partition by element hash (the
//!   partition-based family).

use super::JoinResult;
use crate::relation::Relation;
use crate::value::IdSet;
use std::collections::HashMap;

fn set_of(rel: &Relation, i: u32) -> &IdSet {
    rel.value(i as usize)
        .as_set()
        .unwrap_or_else(|| panic!("{} tuple {i} is not a set", rel.name()))
}

/// Nested loops with the linear-merge subset test. `O(|R|·|S|·set size)`.
pub fn naive(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = Vec::new();
    for i in 0..r.len() as u32 {
        for j in 0..s.len() as u32 {
            if set_of(r, i).is_subset_of(set_of(s, j)) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Inverted-index join: postings lists over `S` elements; an `R` set's
/// superset candidates are the intersection of its elements' lists.
pub fn inverted_index(r: &Relation, s: &Relation) -> JoinResult {
    let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
    for j in 0..s.len() as u32 {
        for &e in set_of(s, j).elems() {
            postings.entry(e).or_default().push(j);
        }
    }
    let empty: Vec<u32> = Vec::new();
    let mut out = Vec::new();
    for i in 0..r.len() as u32 {
        let set = set_of(r, i);
        if set.is_empty() {
            out.extend((0..s.len() as u32).map(|j| (i, j)));
            continue;
        }
        let mut lists: Vec<&Vec<u32>> = set
            .elems()
            .iter()
            .map(|e| postings.get(e).unwrap_or(&empty))
            .collect();
        lists.sort_by_key(|l| l.len());
        let mut candidates = lists[0].clone();
        for list in &lists[1..] {
            if candidates.is_empty() {
                break;
            }
            candidates.retain(|c| list.binary_search(c).is_ok());
        }
        out.extend(candidates.into_iter().map(|j| (i, j)));
    }
    out.sort_unstable();
    out
}

/// 64-bit Bloom signature of a set. Subset implies signature-subset, so
/// `sig(r) & !sig(s) != 0` safely prunes a pair.
fn bloom64(set: &IdSet) -> u64 {
    set.elems().iter().fold(0u64, |acc, &e| {
        let h = (e as u64).wrapping_mul(0x9e3779b97f4a7c15).rotate_left(31);
        acc | (1 << (h % 64))
    })
}

/// Signature join: filter pairs by Bloom signatures, verify survivors
/// exactly. Same asymptotic worst case as [`naive`] but with a large
/// constant-factor filter — the replicate/re-scan flavour the paper calls
/// "not as satisfying as the equijoin algorithms".
pub fn signature(r: &Relation, s: &Relation) -> JoinResult {
    let rs: Vec<u64> = (0..r.len() as u32).map(|i| bloom64(set_of(r, i))).collect();
    let ss: Vec<u64> = (0..s.len() as u32).map(|j| bloom64(set_of(s, j))).collect();
    let mut out = Vec::new();
    for i in 0..r.len() as u32 {
        for j in 0..s.len() as u32 {
            if rs[i as usize] & !ss[j as usize] == 0 && set_of(r, i).is_subset_of(set_of(s, j)) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Partitioned set join (the partition-based family of Ramasamy et al.,
/// the paper's citation \[14\]): every `S` set is **replicated** into the
/// partition of each of its (distinct-hash) elements — the "replication
/// of data" cost the paper's introduction calls out — and every
/// non-empty `R` set probes exactly one partition, that of its smallest
/// element (`min(r) ∈ r ⊆ s` guarantees the superset was replicated
/// there). Empty `R` sets join every `S` set and are handled directly.
pub fn partitioned(r: &Relation, s: &Relation, partitions: usize) -> JoinResult {
    assert!(partitions > 0, "need at least one partition");
    let part_of = |e: u32| -> usize {
        ((e as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize % partitions
    };
    // Replicate S into each element's partition (once per partition).
    let mut s_parts: Vec<Vec<u32>> = vec![Vec::new(); partitions];
    for j in 0..s.len() as u32 {
        let mut seen = vec![false; partitions];
        for &e in set_of(s, j).elems() {
            let p = part_of(e);
            if !seen[p] {
                seen[p] = true;
                s_parts[p].push(j);
            }
        }
    }
    let mut out = Vec::new();
    for i in 0..r.len() as u32 {
        let set = set_of(r, i);
        let Some(&min) = set.elems().first() else {
            out.extend((0..s.len() as u32).map(|j| (i, j)));
            continue;
        };
        for &j in &s_parts[part_of(min)] {
            if set.is_subset_of(set_of(s, j)) {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, sets: &[&[u32]]) -> Relation {
        Relation::from_sets(name, sets.iter().map(|s| IdSet::new(s.to_vec())))
    }

    fn check_all(r: &Relation, s: &Relation) -> JoinResult {
        let expect = naive(r, s);
        assert_eq!(inverted_index(r, s), expect, "inverted_index");
        assert_eq!(signature(r, s), expect, "signature");
        for parts in [1, 3, 16] {
            assert_eq!(partitioned(r, s, parts), expect, "partitioned({parts})");
        }
        expect
    }

    #[test]
    fn basic_containments() {
        let r = rel("R", &[&[1], &[1, 2], &[4]]);
        let s = rel("S", &[&[1, 2, 3], &[1], &[4, 5]]);
        let res = check_all(&r, &s);
        assert_eq!(res, vec![(0, 0), (0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn empty_r_set_joins_everything() {
        let r = rel("R", &[&[]]);
        let s = rel("S", &[&[1], &[], &[9, 9]]);
        let res = check_all(&r, &s);
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn no_matches() {
        let r = rel("R", &[&[100], &[200]]);
        let s = rel("S", &[&[1, 2], &[3]]);
        assert!(check_all(&r, &s).is_empty());
    }

    #[test]
    fn equal_sets_contain_each_other() {
        let r = rel("R", &[&[7, 8]]);
        let s = rel("S", &[&[8, 7]]);
        assert_eq!(check_all(&r, &s), vec![(0, 0)]);
    }

    #[test]
    fn bloom_signature_is_superset_monotone() {
        for (sub, sup) in [
            (vec![1u32, 2], vec![1u32, 2, 3, 4]),
            (vec![], vec![5]),
            (vec![10, 20, 30], vec![10, 20, 30]),
        ] {
            let a = bloom64(&IdSet::new(sub));
            let b = bloom64(&IdSet::new(sup));
            assert_eq!(a & !b, 0);
        }
    }

    #[test]
    fn lemma_3_3_universal_instances_roundtrip() {
        // The Lemma 3.3 construction: r_i = {i}, s_j = {i : edge(i,j)}.
        // All three algorithms must rebuild the spider G_3's edge set.
        use jp_graph::generators::spider;
        let g = spider(3);
        let r = Relation::from_sets("R", (0..g.left_count()).map(|i| IdSet::new(vec![i])));
        let s = Relation::from_sets(
            "S",
            (0..g.right_count()).map(|j| IdSet::new(g.right_neighbors(j).to_vec())),
        );
        let res = check_all(&r, &s);
        assert_eq!(res, g.edges().to_vec());
    }
}
