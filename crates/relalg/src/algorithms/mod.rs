//! Join algorithms.
//!
//! The paper's motivation (§1): equijoins have "a number of recognized
//! good algorithms, including index nested loops, sort-merge join, and
//! hash-join", while spatial-overlap and set-containment joins only have
//! algorithms "requiring either replication of data or repeated processing
//! of data". This module implements representatives of all of them so the
//! experiments can exhibit the contrast the pebble game explains:
//!
//! * [`nested_loops`] — the universal baseline for any predicate;
//! * [`equi`] — hash join, sort-merge join, index nested loops;
//! * [`containment`] — naive, inverted-index, and signature-filter joins;
//! * [`spatial`] — naive, plane-sweep, PBSM grid, and R-tree joins.
//!
//! Every algorithm returns the same pair set (sorted `(r_id, s_id)` pairs,
//! i.e. exactly the edge list of the join graph) and is cross-validated
//! against [`nested_loops`] in tests.

pub mod containment;
pub mod equi;
pub mod multiway;
pub mod spatial;

use crate::predicate::JoinPredicate;
use crate::relation::Relation;

/// The result of a join: tuple-id pairs, sorted lexicographically — the
/// edge list of the join graph.
pub type JoinResult = Vec<(u32, u32)>;

/// Nested-loops join: evaluates the predicate over the full cross product.
/// Works for every predicate; `O(|R|·|S|)`.
pub fn nested_loops(r: &Relation, s: &Relation, pred: &dyn JoinPredicate) -> JoinResult {
    let mut out = Vec::new();
    for (i, a) in r.iter() {
        for (j, b) in s.iter() {
            if pred.matches(a, b) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Block nested-loops join: identical output to [`nested_loops`], but
/// iterates in cache-friendly blocks — the classical I/O-aware variant.
#[allow(clippy::needless_range_loop)] // index arithmetic is the point of blocking
pub fn block_nested_loops(
    r: &Relation,
    s: &Relation,
    pred: &dyn JoinPredicate,
    block: usize,
) -> JoinResult {
    assert!(block > 0, "block size must be positive");
    let mut out = Vec::new();
    let rv = r.values();
    let sv = s.values();
    for rb in (0..rv.len()).step_by(block) {
        let rend = (rb + block).min(rv.len());
        for sb in (0..sv.len()).step_by(block) {
            let send = (sb + block).min(sv.len());
            for i in rb..rend {
                for j in sb..send {
                    if pred.matches(&rv[i], &sv[j]) {
                        out.push((i as u32, j as u32));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Band, Equality};

    #[test]
    fn nested_loops_basic() {
        let r = Relation::from_ints("R", [1, 2, 3]);
        let s = Relation::from_ints("S", [2, 3, 4]);
        assert_eq!(nested_loops(&r, &s, &Equality), vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn block_nested_loops_matches_nested_loops() {
        let r = Relation::from_ints("R", (0..37).map(|i| i % 5).collect::<Vec<_>>());
        let s = Relation::from_ints("S", (0..29).map(|i| i % 7).collect::<Vec<_>>());
        let expect = nested_loops(&r, &s, &Band(1));
        for block in [1, 4, 16, 100] {
            assert_eq!(
                block_nested_loops(&r, &s, &Band(1), block),
                expect,
                "block {block}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        let r = Relation::from_ints("R", [1]);
        block_nested_loops(&r, &r, &Equality, 0);
    }
}
