//! Equijoin algorithms: hash join, sort-merge join, index nested loops.
//!
//! These are the "recognized good algorithms" of the paper's introduction.
//! All three work over *any* value domain (every [`crate::value::Value`]
//! hashes and orders), which is the paper's point: equality is easy no
//! matter how exotic the domain.
//!
//! The merge phase of [`sort_merge`] visits matching groups in exactly the
//! boustrophedon-friendly order that makes equijoin pebbling perfect — the
//! paper remarks that its optimal pebbling construction "is similar to the
//! merge phase of sort-merge join" (Theorem 4.1).

use super::JoinResult;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Classic build–probe hash join. Builds on the smaller input. Expected
/// `O(|R| + |S| + |output|)`.
pub fn hash_join(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = if r.len() <= s.len() {
        let mut table: HashMap<&Value, Vec<u32>> = HashMap::new();
        for (i, a) in r.iter() {
            table.entry(a).or_default().push(i);
        }
        let mut out = Vec::new();
        for (j, b) in s.iter() {
            if let Some(is) = table.get(b) {
                out.extend(is.iter().map(|&i| (i, j)));
            }
        }
        out
    } else {
        let mut table: HashMap<&Value, Vec<u32>> = HashMap::new();
        for (j, b) in s.iter() {
            table.entry(b).or_default().push(j);
        }
        let mut out = Vec::new();
        for (i, a) in r.iter() {
            if let Some(js) = table.get(a) {
                out.extend(js.iter().map(|&j| (i, j)));
            }
        }
        out
    };
    out.sort_unstable();
    out
}

/// Sort-merge join: sorts `(value, id)` runs of both inputs and merges,
/// emitting the cross product of each matching group. `O(n log n + output)`.
pub fn sort_merge(r: &Relation, s: &Relation) -> JoinResult {
    let mut ra: Vec<(&Value, u32)> = r.iter().map(|(i, v)| (v, i)).collect();
    let mut sb: Vec<(&Value, u32)> = s.iter().map(|(j, v)| (v, j)).collect();
    ra.sort();
    sb.sort();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < sb.len() {
        match ra[i].0.cmp(sb[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // group boundaries
                let gi = (i..ra.len()).take_while(|&k| ra[k].0 == ra[i].0).count();
                let gj = (j..sb.len()).take_while(|&k| sb[k].0 == sb[j].0).count();
                for a in &ra[i..i + gi] {
                    for b in &sb[j..j + gj] {
                        out.push((a.1, b.1));
                    }
                }
                i += gi;
                j += gj;
            }
        }
    }
    out.sort_unstable();
    out
}

/// Index nested loops: builds a BTree index on `S` and probes it per `R`
/// tuple — the paper's third "recognized good" equijoin algorithm.
pub fn index_nested_loops(r: &Relation, s: &Relation) -> JoinResult {
    let mut index: BTreeMap<&Value, Vec<u32>> = BTreeMap::new();
    for (j, b) in s.iter() {
        index.entry(b).or_default().push(j);
    }
    let mut out = Vec::new();
    for (i, a) in r.iter() {
        if let Some(js) = index.get(a) {
            out.extend(js.iter().map(|&j| (i, j)));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::nested_loops;
    use crate::predicate::Equality;
    use crate::value::IdSet;

    fn check_all(r: &Relation, s: &Relation) {
        let mut expect = nested_loops(r, s, &Equality);
        expect.sort_unstable();
        assert_eq!(hash_join(r, s), expect, "hash_join");
        assert_eq!(sort_merge(r, s), expect, "sort_merge");
        assert_eq!(index_nested_loops(r, s), expect, "index_nested_loops");
    }

    #[test]
    fn agree_on_skewed_ints() {
        let r = Relation::from_ints("R", [1, 1, 1, 2, 5, 5, 8]);
        let s = Relation::from_ints("S", [1, 5, 5, 5, 9]);
        check_all(&r, &s);
        assert_eq!(hash_join(&r, &s).len(), 3 + 2 * 3);
    }

    #[test]
    fn agree_on_strings() {
        let r = Relation::from_strs("R", ["x", "y", "y", "z"]);
        let s = Relation::from_strs("S", ["y", "y", "w"]);
        check_all(&r, &s);
    }

    #[test]
    fn agree_on_sets_as_equality_domain() {
        // set-equality is an equijoin over the set domain
        let r = Relation::from_sets(
            "R",
            [
                IdSet::new(vec![1, 2]),
                IdSet::new(vec![3]),
                IdSet::new(vec![2, 1]),
            ],
        );
        let s = Relation::from_sets("S", [IdSet::new(vec![2, 1]), IdSet::new(vec![4])]);
        check_all(&r, &s);
        assert_eq!(hash_join(&r, &s).len(), 2);
    }

    #[test]
    fn empty_and_disjoint() {
        let empty = Relation::from_ints("R", []);
        let s = Relation::from_ints("S", [1, 2]);
        check_all(&empty, &s);
        check_all(&s, &empty);
        let t = Relation::from_ints("T", [8, 9]);
        check_all(&s, &t);
        assert!(hash_join(&s, &t).is_empty());
    }

    #[test]
    fn build_side_choice_is_invisible() {
        // hash_join builds on the smaller side; result must not depend on it.
        let small = Relation::from_ints("A", [1, 2]);
        let big = Relation::from_ints("B", [2, 2, 3, 4, 5]);
        assert_eq!(hash_join(&small, &big), vec![(1, 0), (1, 1)]);
        assert_eq!(hash_join(&big, &small), vec![(0, 1), (1, 1)]);
    }
}
