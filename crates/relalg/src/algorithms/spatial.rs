//! Spatial-overlap join algorithms.
//!
//! The paper cites Günther \[3\], Orenstein \[8\], and Patel–DeWitt's PBSM
//! \[13\]. All practical spatial joins are *filter and refine*: an index or
//! partitioning structure proposes MBR-overlapping candidate pairs, and
//! the exact geometry test keeps the true ones. Four variants over
//! region-valued relations:
//!
//! * [`naive`] — exact test over the cross product;
//! * [`sweep`] — plane sweep on MBRs + refinement;
//! * [`pbsm`] — uniform-grid partitioned join (replicates into cells,
//!   deduplicates by reference point) + refinement;
//! * [`rtree`] — STR R-tree synchronized traversal + refinement;
//! * [`index_nested_loops`] — R-tree probe per outer tuple + refinement.

use super::JoinResult;
use crate::relation::Relation;
use jp_geometry::{grid::grid_join, sweep::sweep_join, RTree, Region};

fn region_of(rel: &Relation, i: u32) -> &Region {
    rel.value(i as usize)
        .as_region()
        .unwrap_or_else(|| panic!("{} tuple {i} is not a region", rel.name()))
}

/// Exact overlap test over the cross product. `O(|R|·|S|)` region tests.
pub fn naive(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = Vec::new();
    for i in 0..r.len() as u32 {
        for j in 0..s.len() as u32 {
            if region_of(r, i).intersects(region_of(s, j)) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Plane-sweep filter on MBRs, exact refinement on regions.
pub fn sweep(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = Vec::new();
    sweep_join(&r.mbrs(), &s.mbrs(), |i, j| {
        if region_of(r, i).intersects(region_of(s, j)) {
            out.push((i, j));
        }
    });
    out.sort_unstable();
    out
}

/// PBSM-style uniform-grid filter, exact refinement.
pub fn pbsm(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = Vec::new();
    grid_join(&r.mbrs(), &s.mbrs(), |i, j| {
        if region_of(r, i).intersects(region_of(s, j)) {
            out.push((i, j));
        }
    });
    out.sort_unstable();
    out
}

/// R-tree synchronized-traversal filter, exact refinement.
pub fn rtree(r: &Relation, s: &Relation) -> JoinResult {
    let tr = RTree::build(&r.mbrs());
    let ts = RTree::build(&s.mbrs());
    let mut out = Vec::new();
    tr.join(&ts, |i, j| {
        if region_of(r, i).intersects(region_of(s, j)) {
            out.push((i, j));
        }
    });
    out.sort_unstable();
    out
}

/// Index nested loops: bulk-load an R-tree on `S`, probe it once per `R`
/// tuple with the tuple's MBR, refine on exact geometry. The classical
/// "one indexed input" spatial join.
pub fn index_nested_loops(r: &Relation, s: &Relation) -> JoinResult {
    let index = RTree::build(&s.mbrs());
    let mut out = Vec::new();
    for (mbr, i) in r.mbrs() {
        for j in index.query(&mbr) {
            if region_of(r, i).intersects(region_of(s, j)) {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether a relation holds convex polygons ([`crate::value::Value::Polygon`]).
fn polygon_of(rel: &Relation, i: u32) -> &jp_geometry::ConvexPolygon {
    match rel.value(i as usize) {
        crate::value::Value::Polygon(p) => p,
        other => panic!(
            "{} tuple {i} is {}, not a polygon",
            rel.name(),
            other.domain()
        ),
    }
}

/// Exact overlap join over convex-polygon relations (the paper's literal
/// spatial domain): separating-axis test over the cross product.
pub fn polygon_naive(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = Vec::new();
    for i in 0..r.len() as u32 {
        for j in 0..s.len() as u32 {
            if polygon_of(r, i).intersects(polygon_of(s, j)) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Filter-and-refine overlap join over convex-polygon relations: plane
/// sweep on the polygons' MBRs, exact SAT refinement.
pub fn polygon_sweep(r: &Relation, s: &Relation) -> JoinResult {
    let mut out = Vec::new();
    sweep_join(&r.mbrs(), &s.mbrs(), |i, j| {
        if polygon_of(r, i).intersects(polygon_of(s, j)) {
            out.push((i, j));
        }
    });
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jp_geometry::Rect;

    fn scattered(name: &str, set: u64, n: u64) -> Relation {
        Relation::from_rects(
            name,
            (0..n).map(|i| {
                let h = i
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(set.wrapping_mul(0xd1b54a32d192ed03))
                    .rotate_left(29);
                let x = (h % 400) as i64;
                let y = ((h >> 10) % 400) as i64;
                let w = ((h >> 20) % 50) as i64;
                let hh = ((h >> 28) % 50) as i64;
                Rect::new(x, y, x + w, y + hh)
            }),
        )
    }

    fn check_all(r: &Relation, s: &Relation) -> JoinResult {
        let expect = naive(r, s);
        assert_eq!(sweep(r, s), expect, "sweep");
        assert_eq!(pbsm(r, s), expect, "pbsm");
        assert_eq!(rtree(r, s), expect, "rtree");
        assert_eq!(index_nested_loops(r, s), expect, "index_nested_loops");
        expect
    }

    #[test]
    fn all_agree_on_scattered_rects() {
        let r = scattered("R", 3, 100);
        let s = scattered("S", 11, 80);
        let res = check_all(&r, &s);
        assert!(!res.is_empty(), "workload should produce overlaps");
    }

    #[test]
    fn refinement_filters_mbr_false_positives() {
        // L-shaped region whose MBR covers a disjoint square.
        let l = Region::new(vec![Rect::new(0, 0, 2, 20), Rect::new(0, 0, 20, 2)]);
        let r = Relation::from_regions("R", [l]);
        let s = Relation::from_rects("S", [Rect::new(10, 10, 15, 15)]);
        assert!(check_all(&r, &s).is_empty());
    }

    #[test]
    fn empty_relations() {
        let e = Relation::from_rects("E", []);
        let s = scattered("S", 1, 10);
        assert!(check_all(&e, &s).is_empty());
        assert!(check_all(&s, &e).is_empty());
    }

    #[test]
    fn identical_relations_all_self_pairs() {
        let r = Relation::from_rects("R", [Rect::new(0, 0, 1, 1), Rect::new(10, 10, 11, 11)]);
        let res = check_all(&r, &r.clone());
        assert_eq!(res, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn lemma_3_4_spider_realization_joins_correctly() {
        // The rectangles realizing G_3 (Lemma 3.4) must join into exactly
        // the spider's edge set under every algorithm.
        use crate::realize::spatial_spider_instance;
        use jp_graph::generators::spider;
        let (r, s) = spatial_spider_instance(3);
        let res = check_all(&r, &s);
        assert_eq!(res, spider(3).edges().to_vec());
    }
}

#[cfg(test)]
mod polygon_tests {
    use super::*;
    use crate::value::Value;
    use jp_geometry::{ConvexPolygon, Point, Rect};

    fn poly_relation(name: &str, polys: Vec<ConvexPolygon>) -> Relation {
        Relation::new(name, polys.into_iter().map(Value::Polygon).collect())
    }

    #[test]
    fn polygon_sweep_matches_naive() {
        let tri = |x: i64, y: i64| {
            ConvexPolygon::new(vec![
                Point::new(x, y),
                Point::new(x + 8, y),
                Point::new(x, y + 8),
            ])
        };
        let r = poly_relation("R", (0..12).map(|i| tri(i * 5, (i % 4) * 3)).collect());
        let s = poly_relation(
            "S",
            (0..10)
                .map(|i| ConvexPolygon::from_rect(Rect::new(i * 6, 0, i * 6 + 4, 6)))
                .collect(),
        );
        let naive = polygon_naive(&r, &s);
        assert_eq!(polygon_sweep(&r, &s), naive);
        assert!(!naive.is_empty());
        // agrees with the generic predicate-based join too
        let mut by_def = crate::algorithms::nested_loops(&r, &s, &crate::predicate::SpatialOverlap);
        by_def.sort_unstable();
        assert_eq!(naive, by_def);
    }

    #[test]
    fn spider_with_literal_polygons() {
        // Lemma 3.4 with the paper's literal domain: the spider's
        // rectangles as convex polygons.
        use crate::realize::spatial_spider_instance;
        let (r, s) = spatial_spider_instance(4);
        let to_poly = |rel: &Relation, name: &str| {
            poly_relation(
                name,
                rel.values()
                    .iter()
                    .map(|v| {
                        let rect = v.as_region().unwrap().rects()[0];
                        ConvexPolygon::from_rect(rect)
                    })
                    .collect(),
            )
        };
        let rp = to_poly(&r, "R");
        let sp = to_poly(&s, "S");
        let pairs = polygon_sweep(&rp, &sp);
        assert_eq!(pairs, jp_graph::generators::spider(4).edges().to_vec());
    }

    #[test]
    #[should_panic(expected = "not a polygon")]
    fn rejects_region_relations() {
        let r = Relation::from_rects("R", [Rect::new(0, 0, 1, 1)]);
        polygon_naive(&r, &r.clone());
    }
}
