//! Synthetic workload generators.
//!
//! No public 2001 workloads exist for the paper; these generators produce
//! the three join-graph regimes it contrasts (see DESIGN.md §1):
//!
//! * [`zipf_equijoin`] — skewed-key equijoin inputs whose join graphs are
//!   unions of complete bipartite graphs of very different sizes;
//! * [`set_workload`] — set families with *planted* containments (random
//!   sets almost never contain each other, so the rate is a parameter);
//! * [`uniform_rects`] / [`clustered_rects`] — spatial inputs with
//!   controllable selectivity.

use crate::query::ConjunctiveQuery;
use crate::relation::Relation;
use crate::trie::MultiRelation;
use crate::value::IdSet;
use jp_geometry::Rect;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples from a Zipf(θ) distribution over `1..=n_keys` via an inverse
/// CDF table. θ = 0 is uniform; θ ≈ 1 is classic Zipf.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n_keys == 0` or `theta < 0`.
    pub fn new(n_keys: usize, theta: f64) -> Self {
        assert!(n_keys > 0, "need at least one key");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n_keys);
        let mut acc = 0.0;
        for k in 1..=n_keys {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a key in `0..n_keys` (0 is the most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generates a pair of integer relations with Zipf-distributed keys: the
/// equijoin workload. Higher `theta` means heavier skew, i.e. a few huge
/// complete bipartite components in the join graph.
pub fn zipf_equijoin(
    n_r: usize,
    n_s: usize,
    n_keys: usize,
    theta: f64,
    seed: u64,
) -> (Relation, Relation) {
    let zipf = Zipf::new(n_keys, theta);
    let mut rng = SmallRng::seed_from_u64(seed);
    let r: Vec<i64> = (0..n_r).map(|_| zipf.sample(&mut rng) as i64).collect();
    let s: Vec<i64> = (0..n_s).map(|_| zipf.sample(&mut rng) as i64).collect();
    (Relation::from_ints("R", r), Relation::from_ints("S", s))
}

/// Generates a set-containment workload over a `universe`-element
/// dictionary. `S` sets are random with sizes in `s_size`; each `R` set is,
/// with probability `planted_rate`, a random subset of a random `S` set
/// (guaranteeing a containment) and otherwise a random set with sizes in
/// `r_size` (containments then occur only by chance).
pub fn set_workload(
    n_r: usize,
    n_s: usize,
    universe: u32,
    r_size: std::ops::RangeInclusive<usize>,
    s_size: std::ops::RangeInclusive<usize>,
    planted_rate: f64,
    seed: u64,
) -> (Relation, Relation) {
    assert!(universe > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let random_set = |size_range: &std::ops::RangeInclusive<usize>, rng: &mut SmallRng| {
        let size = rng.random_range(size_range.clone()).min(universe as usize);
        let mut elems = Vec::with_capacity(size);
        while elems.len() < size {
            let e = rng.random_range(0..universe);
            if !elems.contains(&e) {
                elems.push(e);
            }
        }
        IdSet::new(elems)
    };
    let s_sets: Vec<IdSet> = (0..n_s).map(|_| random_set(&s_size, &mut rng)).collect();
    let r_sets: Vec<IdSet> = (0..n_r)
        .map(|_| {
            if !s_sets.is_empty() && rng.random_bool(planted_rate) {
                // subset of a random S set
                let parent = &s_sets[rng.random_range(0..s_sets.len())];
                let keep: Vec<u32> = parent
                    .elems()
                    .iter()
                    .copied()
                    .filter(|_| rng.random_bool(0.5))
                    .collect();
                IdSet::new(keep)
            } else {
                random_set(&r_size, &mut rng)
            }
        })
        .collect();
    (
        Relation::from_sets("R", r_sets),
        Relation::from_sets("S", s_sets),
    )
}

/// Uniformly scattered rectangles over `[0, extent]²` with edge lengths in
/// `[1, max_side]`.
pub fn uniform_rects(n: usize, extent: i64, max_side: i64, seed: u64) -> Relation {
    assert!(extent > 0 && max_side > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    Relation::from_rects(
        "R",
        (0..n).map(|_| {
            let x = rng.random_range(0..extent);
            let y = rng.random_range(0..extent);
            let w = rng.random_range(1..=max_side);
            let h = rng.random_range(1..=max_side);
            Rect::new(x, y, x + w, y + h)
        }),
    )
}

/// Gaussian-ish clustered rectangles: `n` rectangles distributed around
/// `clusters` random centres with triangular-noise offsets — the skewed
/// regime where grid partitioning overflows cells.
pub fn clustered_rects(
    n: usize,
    extent: i64,
    max_side: i64,
    clusters: usize,
    spread: i64,
    seed: u64,
) -> Relation {
    assert!(extent > 0 && max_side > 0 && clusters > 0 && spread > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<(i64, i64)> = (0..clusters)
        .map(|_| (rng.random_range(0..extent), rng.random_range(0..extent)))
        .collect();
    // Sum of two uniforms gives a triangular distribution around 0.
    let tri = |rng: &mut SmallRng| {
        rng.random_range(-spread..=spread) / 2 + rng.random_range(-spread..=spread) / 2
    };
    Relation::from_rects(
        "R",
        (0..n).map(|_| {
            let (cx, cy) = centers[rng.random_range(0..centers.len())];
            let x = (cx + tri(&mut rng)).clamp(0, extent);
            let y = (cy + tri(&mut rng)).clamp(0, extent);
            let w = rng.random_range(1..=max_side);
            let h = rng.random_range(1..=max_side);
            Rect::new(x, y, x + w, y + h)
        }),
    )
}

/// A random arity-2 [`MultiRelation`]: `n` pairs drawn uniformly over
/// `0..domain` (deduplicated, so the result may be slightly smaller).
fn random_pairs(name: &str, n: usize, domain: i64, rng: &mut SmallRng) -> MultiRelation {
    let tuples = (0..n).map(|_| {
        vec![
            rng.random_range(0..domain.max(1)),
            rng.random_range(0..domain.max(1)),
        ]
    });
    MultiRelation::new(name, 2, tuples).expect("arity-2 tuples")
}

/// Random triangle-query instance: three independent edge relations of
/// `n` pairs each over a vertex domain of roughly `n / deg` ids, so each
/// vertex has average degree about `deg` and triangles occur by chance.
pub fn triangle_random(n: usize, deg: usize, seed: u64) -> (ConjunctiveQuery, Vec<MultiRelation>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain = (n / deg.max(1)).max(2) as i64;
    let rels = ["R", "S", "T"]
        .iter()
        .map(|name| random_pairs(name, n, domain, &mut rng))
        .collect();
    (ConjunctiveQuery::triangle(), rels)
}

/// Adversarially skewed triangle instance — the star workload on which
/// a binary join cascade materializes a quadratic intermediate result:
/// `R = {(i, 0)}` and `S = {(0, j)}` share the single hub key 0, so
/// `R ⋈ S` has `n²` rows, while `T = {(i, i)}` (plus a little seeded
/// noise) keeps the final output linear. Worst-case-optimal algorithms
/// touch only `O(n)` partial bindings.
pub fn triangle_skewed(n: usize, seed: u64) -> (ConjunctiveQuery, Vec<MultiRelation>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = n.max(2) as i64;
    let r = (1..=n).map(|i| vec![i, 0]);
    let s = (1..=n).map(|j| vec![0, j]);
    let mut t: Vec<Vec<i64>> = (1..=n).map(|i| vec![i, i]).collect();
    // A few non-diagonal pairs so T is not a pure identity relation.
    t.extend((0..(n as usize / 8)).map(|_| vec![rng.random_range(1..=n), rng.random_range(1..=n)]));
    let rels = vec![
        MultiRelation::new("R", 2, r).expect("arity-2 tuples"),
        MultiRelation::new("S", 2, s).expect("arity-2 tuples"),
        MultiRelation::new("T", 2, t).expect("arity-2 tuples"),
    ];
    (ConjunctiveQuery::triangle(), rels)
}

/// Random 4-clique instance: one random graph (edges `u < v` over a
/// domain of roughly `n / deg` ids) replicated into the six edge
/// relations, so the output is the ordered 4-cliques of that graph.
pub fn clique4_random(n: usize, deg: usize, seed: u64) -> (ConjunctiveQuery, Vec<MultiRelation>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain = (n / deg.max(1)).max(3) as i64;
    let edges: Vec<Vec<i64>> = (0..n)
        .map(|_| {
            let a = rng.random_range(0..domain);
            let b = rng.random_range(0..domain);
            vec![a.min(b), a.max(b) + 1] // +1 keeps u < v strict
        })
        .collect();
    let rels = ["E01", "E02", "E03", "E12", "E13", "E23"]
        .iter()
        .map(|name| MultiRelation::new(*name, 2, edges.iter().cloned()).expect("arity-2 tuples"))
        .collect();
    (ConjunctiveQuery::four_clique(), rels)
}

/// Random bowtie instance: six independent edge relations of `n` pairs
/// over a domain of roughly `n / deg` ids; the apex variable is shared
/// between the two triangles, over-covering it in the AGM cover.
pub fn bowtie_random(n: usize, deg: usize, seed: u64) -> (ConjunctiveQuery, Vec<MultiRelation>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain = (n / deg.max(1)).max(2) as i64;
    let rels = ["R", "S", "T", "U", "V", "W"]
        .iter()
        .map(|name| random_pairs(name, n, domain, &mut rng))
        .collect();
    (ConjunctiveQuery::bowtie(), rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use crate::predicate::SetContainment;

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform-ish counts, got {counts:?}"
            );
        }
    }

    #[test]
    fn zipf_is_skewed_for_high_theta() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50].max(1) * 10,
            "head should dominate: {:?}",
            &counts[..5]
        );
    }

    #[test]
    fn zipf_equijoin_shapes() {
        let (r, s) = zipf_equijoin(100, 80, 20, 1.0, 7);
        assert_eq!(r.len(), 100);
        assert_eq!(s.len(), 80);
        let g = crate::join_graph::equijoin_graph(&r, &s).unwrap();
        assert!(jp_graph::properties::is_equijoin_graph(&g));
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn set_workload_planting_controls_rate() {
        let (r0, s0) = set_workload(60, 40, 1000, 4..=8, 8..=16, 0.0, 3);
        let (r1, s1) = set_workload(60, 40, 1000, 4..=8, 8..=16, 1.0, 3);
        let none = algorithms::nested_loops(&r0, &s0, &SetContainment).len();
        let planted = algorithms::nested_loops(&r1, &s1, &SetContainment).len();
        assert!(planted > none, "planted {planted} vs unplanted {none}");
        assert!(planted >= 50, "planting guarantees most R tuples join");
    }

    #[test]
    fn rect_workloads_in_bounds() {
        let u = uniform_rects(200, 1000, 20, 5);
        for (rect, _) in u.mbrs() {
            assert!(rect.min.x >= 0 && rect.max.x <= 1020);
            assert!(rect.min.y >= 0 && rect.max.y <= 1020);
        }
        let c = clustered_rects(200, 1000, 20, 5, 50, 6);
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn clustered_rects_are_denser_than_uniform() {
        let u = uniform_rects(150, 5000, 10, 8);
        let c = clustered_rects(150, 5000, 10, 3, 40, 8);
        let su = algorithms::spatial::naive(&u, &u).len();
        let sc = algorithms::spatial::naive(&c, &c).len();
        assert!(
            sc > su,
            "clustered self-join {sc} should exceed uniform {su}"
        );
    }
}
