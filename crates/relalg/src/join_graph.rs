//! Join-graph construction (§2 of the paper).
//!
//! "We model an instance of the join problem as a bipartite graph
//! `G = (R, S, E)` … Vertices `u ∈ R` and `v ∈ S` are connected by an edge
//! in `E` if the corresponding tuples join under the join predicate."
//!
//! [`join_graph`] is the definition itself (a nested loop over the cross
//! product — total, works for every predicate). The per-predicate builders
//! ([`equijoin_graph`], [`containment_graph`], [`spatial_graph`]) produce
//! the same graph faster and are cross-validated against the definition in
//! tests. Note that the *vertex sets are the full relations*; callers that
//! want the paper's normalized graphs strip isolated vertices afterwards.
//!
//! All builders are fallible: tuple ids are `u32`, so relations beyond
//! `u32::MAX` tuples are rejected ([`RelalgError::TooManyTuples`]) instead
//! of silently wrapping ids, and a tuple whose value kind does not match
//! the predicate's domain is a classified input error
//! ([`RelalgError::WrongDomain`]), not a panic.

use crate::error::{checked_tuple_count, require_region, require_set, RelalgError};
use crate::predicate::JoinPredicate;
use crate::relation::Relation;
use crate::value::Value;
use jp_graph::BipartiteGraph;
use std::collections::HashMap;

/// Builds the join graph by evaluating `pred` on the full cross product —
/// the literal Definition from §2. `O(|R|·|S|)` predicate evaluations.
///
/// # Errors
/// [`RelalgError::TooManyTuples`] if either relation exceeds `u32::MAX`
/// tuples.
pub fn join_graph(
    r: &Relation,
    s: &Relation,
    pred: &dyn JoinPredicate,
) -> Result<BipartiteGraph, RelalgError> {
    let (rn, sn) = (checked_tuple_count(r)?, checked_tuple_count(s)?);
    let mut edges = Vec::new();
    for (i, a) in r.iter() {
        for (j, b) in s.iter() {
            if pred.matches(a, b) {
                edges.push((i, j));
            }
        }
    }
    Ok(BipartiteGraph::new(rn, sn, edges))
}

/// Equijoin join graph via hashing: groups both relations by value and
/// emits the complete bipartite graph of every matching group. Expected
/// `O(|R| + |S| + |E|)`.
///
/// # Errors
/// [`RelalgError::TooManyTuples`] if either relation exceeds `u32::MAX`
/// tuples.
pub fn equijoin_graph(r: &Relation, s: &Relation) -> Result<BipartiteGraph, RelalgError> {
    let (rn, sn) = (checked_tuple_count(r)?, checked_tuple_count(s)?);
    let mut groups: HashMap<&Value, Vec<u32>> = HashMap::new();
    for (j, b) in s.iter() {
        groups.entry(b).or_default().push(j);
    }
    let mut edges = Vec::new();
    for (i, a) in r.iter() {
        if let Some(js) = groups.get(a) {
            edges.extend(js.iter().map(|&j| (i, j)));
        }
    }
    Ok(BipartiteGraph::new(rn, sn, edges))
}

/// Set-containment join graph (`r.A ⊆ s.B`) via an inverted index on the
/// `S` sets: each element maps to the postings list of `S` tuples
/// containing it; an `R` set's matches are the intersection of its
/// elements' postings. Empty `R` sets are contained in every `S` set.
///
/// # Errors
/// [`RelalgError::WrongDomain`] if any tuple in either relation is not
/// set-valued; [`RelalgError::TooManyTuples`] on oversize relations.
pub fn containment_graph(r: &Relation, s: &Relation) -> Result<BipartiteGraph, RelalgError> {
    let (rn, sn) = (checked_tuple_count(r)?, checked_tuple_count(s)?);
    let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
    for j in 0..s.len() {
        let set = require_set(s, j)?;
        for &e in set.elems() {
            postings.entry(e).or_default().push(j as u32);
        }
    }
    let empty: Vec<u32> = Vec::new();
    let mut edges = Vec::new();
    for i in 0..r.len() {
        let set = require_set(r, i)?;
        let i = i as u32;
        if set.is_empty() {
            edges.extend((0..sn).map(|j| (i, j)));
            continue;
        }
        // Intersect postings, smallest list first.
        let mut lists: Vec<&Vec<u32>> = set
            .elems()
            .iter()
            .map(|e| postings.get(e).unwrap_or(&empty))
            .collect();
        lists.sort_by_key(|l| l.len());
        if lists[0].is_empty() {
            continue;
        }
        let mut candidates: Vec<u32> = lists[0].clone();
        for list in &lists[1..] {
            if candidates.is_empty() {
                break;
            }
            // postings are sorted by construction (S scanned in order)
            candidates.retain(|c| list.binary_search(c).is_ok());
        }
        edges.extend(candidates.into_iter().map(|j| (i, j)));
    }
    Ok(BipartiteGraph::new(rn, sn, edges))
}

/// Spatial-overlap join graph via plane sweep on MBRs with exact region
/// refinement. `O(n log n + candidates)`.
///
/// # Errors
/// [`RelalgError::WrongDomain`] if any tuple in either relation is not
/// region-valued (`Value::Spatial`); [`RelalgError::TooManyTuples`] on
/// oversize relations.
pub fn spatial_graph(r: &Relation, s: &Relation) -> Result<BipartiteGraph, RelalgError> {
    let (rn, sn) = (checked_tuple_count(r)?, checked_tuple_count(s)?);
    // Pre-validate both domains so the sweep callback below (which cannot
    // return an error) only ever sees region values.
    let mut ra = Vec::with_capacity(r.len());
    for i in 0..r.len() {
        ra.push((require_region(r, i)?.mbr(), i as u32));
    }
    let mut sb = Vec::with_capacity(s.len());
    for j in 0..s.len() {
        sb.push((require_region(s, j)?.mbr(), j as u32));
    }
    let mut edges = Vec::new();
    let mut invariant_hole = false;
    jp_geometry::sweep::sweep_join(&ra, &sb, |i, j| {
        match (
            r.value(i as usize).as_region(),
            s.value(j as usize).as_region(),
        ) {
            (Some(x), Some(y)) => {
                if x.intersects(y) {
                    edges.push((i, j));
                }
            }
            // Unreachable after pre-validation; surfaced as Internal
            // below rather than panicking inside the sweep.
            _ => invariant_hole = true,
        }
    });
    if invariant_hole {
        return Err(RelalgError::Internal(
            "sweep produced a candidate outside the validated region domain",
        ));
    }
    Ok(BipartiteGraph::new(rn, sn, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Equality, SetContainment, SpatialOverlap};
    use crate::value::IdSet;
    use jp_geometry::{Rect, Region};
    use jp_graph::properties::is_equijoin_graph;

    #[test]
    fn equijoin_graph_matches_definition() {
        let r = Relation::from_ints("R", [1, 1, 2, 7, 9]);
        let s = Relation::from_ints("S", [1, 2, 2, 9, 9, 4]);
        let by_def = join_graph(&r, &s, &Equality).unwrap();
        let fast = equijoin_graph(&r, &s).unwrap();
        assert_eq!(by_def, fast);
        // Theorem 3.2's premise: equijoin graphs are unions of complete
        // bipartite graphs.
        assert!(is_equijoin_graph(&by_def));
        // 2 ones x 1 one + 1 two x 2 twos + 1 nine x 2 nines = 2+2+2
        assert_eq!(by_def.edge_count(), 6);
    }

    #[test]
    fn containment_graph_matches_definition() {
        let sets_r = [
            IdSet::new(vec![1]),
            IdSet::new(vec![1, 2]),
            IdSet::empty(),
            IdSet::new(vec![5]),
        ];
        let sets_s = [
            IdSet::new(vec![1, 2, 3]),
            IdSet::new(vec![2]),
            IdSet::new(vec![1]),
        ];
        let r = Relation::from_sets("R", sets_r);
        let s = Relation::from_sets("S", sets_s);
        let by_def = join_graph(&r, &s, &SetContainment).unwrap();
        let fast = containment_graph(&r, &s).unwrap();
        assert_eq!(by_def, fast);
        // r2 = {} joins everything; r3 = {5} joins nothing.
        assert!(by_def.has_edge(2, 0) && by_def.has_edge(2, 1) && by_def.has_edge(2, 2));
        assert_eq!(by_def.left_neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn spatial_graph_matches_definition() {
        let r = Relation::from_regions(
            "R",
            [
                Region::rect(Rect::new(0, 0, 10, 10)),
                Region::new(vec![Rect::new(0, 20, 2, 30), Rect::new(0, 20, 12, 22)]),
            ],
        );
        let s = Relation::from_regions(
            "S",
            [
                Region::rect(Rect::new(5, 5, 6, 6)),
                Region::rect(Rect::new(11, 21, 11, 21)), // touches r1's foot
                Region::rect(Rect::new(5, 27, 9, 29)),   // inside r1's MBR, outside region
            ],
        );
        let by_def = join_graph(&r, &s, &SpatialOverlap).unwrap();
        let fast = spatial_graph(&r, &s).unwrap();
        assert_eq!(by_def, fast);
        assert!(by_def.has_edge(0, 0));
        assert!(by_def.has_edge(1, 1));
        assert!(
            !by_def.has_edge(1, 2),
            "MBR hit but region miss must be refined away"
        );
    }

    #[test]
    fn empty_relations() {
        let r = Relation::from_ints("R", []);
        let s = Relation::from_ints("S", [1]);
        let g = join_graph(&r, &s, &Equality).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(equijoin_graph(&r, &s).unwrap().edge_count(), 0);
    }

    #[test]
    fn multiset_duplicates_become_distinct_vertices() {
        let r = Relation::from_ints("R", [5, 5]);
        let s = Relation::from_ints("S", [5]);
        let g = equijoin_graph(&r, &s).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.left_count(), 2);
    }

    #[test]
    fn containment_rejects_wrong_domain() {
        let r = Relation::from_ints("R", [1]);
        let s = Relation::from_sets("S", [IdSet::empty()]);
        match containment_graph(&r, &s) {
            Err(RelalgError::WrongDomain {
                relation,
                tuple,
                expected,
                found,
            }) => {
                assert_eq!(relation, "R");
                assert_eq!(tuple, 0);
                assert_eq!(expected, "set");
                assert_eq!(found, "int");
            }
            other => panic!("expected WrongDomain, got {other:?}"),
        }
    }

    #[test]
    fn spatial_rejects_wrong_domain() {
        let r = Relation::from_ints("R", [1]);
        let s = Relation::from_rects("S", [Rect::new(0, 0, 1, 1)]);
        match spatial_graph(&r, &s) {
            Err(RelalgError::WrongDomain {
                relation, expected, ..
            }) => {
                assert_eq!(relation, "R");
                assert_eq!(expected, "spatial");
            }
            other => panic!("expected WrongDomain, got {other:?}"),
        }
        // ...and the mismatch is detected on the S side too.
        assert!(matches!(
            spatial_graph(&s, &r),
            Err(RelalgError::WrongDomain { .. })
        ));
    }
}
