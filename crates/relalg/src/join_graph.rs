//! Join-graph construction (§2 of the paper).
//!
//! "We model an instance of the join problem as a bipartite graph
//! `G = (R, S, E)` … Vertices `u ∈ R` and `v ∈ S` are connected by an edge
//! in `E` if the corresponding tuples join under the join predicate."
//!
//! [`join_graph`] is the definition itself (a nested loop over the cross
//! product — total, works for every predicate). The per-predicate builders
//! ([`equijoin_graph`], [`containment_graph`], [`spatial_graph`]) produce
//! the same graph faster and are cross-validated against the definition in
//! tests. Note that the *vertex sets are the full relations*; callers that
//! want the paper's normalized graphs strip isolated vertices afterwards.

use crate::predicate::JoinPredicate;
use crate::relation::Relation;
use crate::value::Value;
use jp_graph::BipartiteGraph;
use std::collections::HashMap;

/// Builds the join graph by evaluating `pred` on the full cross product —
/// the literal Definition from §2. `O(|R|·|S|)` predicate evaluations.
pub fn join_graph(r: &Relation, s: &Relation, pred: &dyn JoinPredicate) -> BipartiteGraph {
    let mut edges = Vec::new();
    for (i, a) in r.iter() {
        for (j, b) in s.iter() {
            if pred.matches(a, b) {
                edges.push((i, j));
            }
        }
    }
    BipartiteGraph::new(r.len() as u32, s.len() as u32, edges)
}

/// Equijoin join graph via hashing: groups both relations by value and
/// emits the complete bipartite graph of every matching group. Expected
/// `O(|R| + |S| + |E|)`.
pub fn equijoin_graph(r: &Relation, s: &Relation) -> BipartiteGraph {
    let mut groups: HashMap<&Value, Vec<u32>> = HashMap::new();
    for (j, b) in s.iter() {
        groups.entry(b).or_default().push(j);
    }
    let mut edges = Vec::new();
    for (i, a) in r.iter() {
        if let Some(js) = groups.get(a) {
            edges.extend(js.iter().map(|&j| (i, j)));
        }
    }
    BipartiteGraph::new(r.len() as u32, s.len() as u32, edges)
}

/// Set-containment join graph (`r.A ⊆ s.B`) via an inverted index on the
/// `S` sets: each element maps to the postings list of `S` tuples
/// containing it; an `R` set's matches are the intersection of its
/// elements' postings. Empty `R` sets are contained in every `S` set.
///
/// # Panics
/// Panics if any tuple in either relation is not set-valued.
pub fn containment_graph(r: &Relation, s: &Relation) -> BipartiteGraph {
    let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
    for (j, b) in s.iter() {
        let set = b
            .as_set()
            .unwrap_or_else(|| panic!("S tuple {j} is not a set"));
        for &e in set.elems() {
            postings.entry(e).or_default().push(j);
        }
    }
    let empty: Vec<u32> = Vec::new();
    let mut edges = Vec::new();
    for (i, a) in r.iter() {
        let set = a
            .as_set()
            .unwrap_or_else(|| panic!("R tuple {i} is not a set"));
        if set.is_empty() {
            edges.extend((0..s.len() as u32).map(|j| (i, j)));
            continue;
        }
        // Intersect postings, smallest list first.
        let mut lists: Vec<&Vec<u32>> = set
            .elems()
            .iter()
            .map(|e| postings.get(e).unwrap_or(&empty))
            .collect();
        lists.sort_by_key(|l| l.len());
        if lists[0].is_empty() {
            continue;
        }
        let mut candidates: Vec<u32> = lists[0].clone();
        for list in &lists[1..] {
            if candidates.is_empty() {
                break;
            }
            // postings are sorted by construction (S scanned in order)
            candidates.retain(|c| list.binary_search(c).is_ok());
        }
        edges.extend(candidates.into_iter().map(|j| (i, j)));
    }
    BipartiteGraph::new(r.len() as u32, s.len() as u32, edges)
}

/// Spatial-overlap join graph via plane sweep on MBRs with exact region
/// refinement. `O(n log n + candidates)`.
///
/// # Panics
/// Panics if any tuple in either relation is not region-valued
/// (`Value::Spatial`).
pub fn spatial_graph(r: &Relation, s: &Relation) -> BipartiteGraph {
    let ra = r.mbrs();
    let sb = s.mbrs();
    let mut edges = Vec::new();
    jp_geometry::sweep::sweep_join(&ra, &sb, |i, j| {
        let x = r
            .value(i as usize)
            .as_region()
            .expect("R tuple is a region");
        let y = s
            .value(j as usize)
            .as_region()
            .expect("S tuple is a region");
        if x.intersects(y) {
            edges.push((i, j));
        }
    });
    BipartiteGraph::new(r.len() as u32, s.len() as u32, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Equality, SetContainment, SpatialOverlap};
    use crate::value::IdSet;
    use jp_geometry::{Rect, Region};
    use jp_graph::properties::is_equijoin_graph;

    #[test]
    fn equijoin_graph_matches_definition() {
        let r = Relation::from_ints("R", [1, 1, 2, 7, 9]);
        let s = Relation::from_ints("S", [1, 2, 2, 9, 9, 4]);
        let by_def = join_graph(&r, &s, &Equality);
        let fast = equijoin_graph(&r, &s);
        assert_eq!(by_def, fast);
        // Theorem 3.2's premise: equijoin graphs are unions of complete
        // bipartite graphs.
        assert!(is_equijoin_graph(&by_def));
        // 2 ones x 1 one + 1 two x 2 twos + 1 nine x 2 nines = 2+2+2
        assert_eq!(by_def.edge_count(), 6);
    }

    #[test]
    fn containment_graph_matches_definition() {
        let sets_r = [
            IdSet::new(vec![1]),
            IdSet::new(vec![1, 2]),
            IdSet::empty(),
            IdSet::new(vec![5]),
        ];
        let sets_s = [
            IdSet::new(vec![1, 2, 3]),
            IdSet::new(vec![2]),
            IdSet::new(vec![1]),
        ];
        let r = Relation::from_sets("R", sets_r);
        let s = Relation::from_sets("S", sets_s);
        let by_def = join_graph(&r, &s, &SetContainment);
        let fast = containment_graph(&r, &s);
        assert_eq!(by_def, fast);
        // r2 = {} joins everything; r3 = {5} joins nothing.
        assert!(by_def.has_edge(2, 0) && by_def.has_edge(2, 1) && by_def.has_edge(2, 2));
        assert_eq!(by_def.left_neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn spatial_graph_matches_definition() {
        let r = Relation::from_regions(
            "R",
            [
                Region::rect(Rect::new(0, 0, 10, 10)),
                Region::new(vec![Rect::new(0, 20, 2, 30), Rect::new(0, 20, 12, 22)]),
            ],
        );
        let s = Relation::from_regions(
            "S",
            [
                Region::rect(Rect::new(5, 5, 6, 6)),
                Region::rect(Rect::new(11, 21, 11, 21)), // touches r1's foot
                Region::rect(Rect::new(5, 27, 9, 29)),   // inside r1's MBR, outside region
            ],
        );
        let by_def = join_graph(&r, &s, &SpatialOverlap);
        let fast = spatial_graph(&r, &s);
        assert_eq!(by_def, fast);
        assert!(by_def.has_edge(0, 0));
        assert!(by_def.has_edge(1, 1));
        assert!(
            !by_def.has_edge(1, 2),
            "MBR hit but region miss must be refined away"
        );
    }

    #[test]
    fn empty_relations() {
        let r = Relation::from_ints("R", []);
        let s = Relation::from_ints("S", [1]);
        let g = join_graph(&r, &s, &Equality);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(equijoin_graph(&r, &s).edge_count(), 0);
    }

    #[test]
    fn multiset_duplicates_become_distinct_vertices() {
        let r = Relation::from_ints("R", [5, 5]);
        let s = Relation::from_ints("S", [5]);
        let g = equijoin_graph(&r, &s);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.left_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not a set")]
    fn containment_rejects_wrong_domain() {
        let r = Relation::from_ints("R", [1]);
        let s = Relation::from_sets("S", [IdSet::empty()]);
        containment_graph(&r, &s);
    }
}
