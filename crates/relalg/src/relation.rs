//! Single-column relations (multisets of values).
//!
//! "In this paper, for simplicity, we assume that all relations have a
//! single column, and that all joins are on that column. The relations are
//! allowed to be multi-sets." Tuples keep positional identity: two equal
//! values are two distinct tuples and become two distinct vertices of the
//! join graph.

use crate::value::{IdSet, Value};
use jp_geometry::{Rect, Region};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named single-column relation. Tuple ids are positions (`0..len`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    name: String,
    values: Vec<Value>,
}

impl Relation {
    /// Builds a relation from raw values.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        Relation {
            name: name.into(),
            values,
        }
    }

    /// Integer-valued relation.
    pub fn from_ints(name: impl Into<String>, ints: impl IntoIterator<Item = i64>) -> Self {
        Relation::new(name, ints.into_iter().map(Value::Int).collect())
    }

    /// String-valued relation.
    pub fn from_strs<S: Into<String>>(
        name: impl Into<String>,
        strs: impl IntoIterator<Item = S>,
    ) -> Self {
        Relation::new(
            name,
            strs.into_iter().map(|s| Value::Str(s.into())).collect(),
        )
    }

    /// Set-valued relation.
    pub fn from_sets(name: impl Into<String>, sets: impl IntoIterator<Item = IdSet>) -> Self {
        Relation::new(name, sets.into_iter().map(Value::Set).collect())
    }

    /// Region-valued (spatial) relation.
    pub fn from_regions(
        name: impl Into<String>,
        regions: impl IntoIterator<Item = Region>,
    ) -> Self {
        Relation::new(name, regions.into_iter().map(Value::Spatial).collect())
    }

    /// Rectangle-valued (spatial) relation — each rectangle becomes a
    /// single-rectangle region.
    pub fn from_rects(name: impl Into<String>, rects: impl IntoIterator<Item = Rect>) -> Self {
        Relation::from_regions(name, rects.into_iter().map(Region::rect))
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tuples (multiset cardinality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of tuple `i`.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values, in tuple order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterator over `(tuple_id, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Value)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }

    /// The MBRs of a spatial relation, as `(rect, tuple_id)` pairs for the
    /// filter step of spatial join algorithms.
    ///
    /// # Panics
    /// Panics if any tuple is not spatial (`Spatial` or `Polygon`).
    pub fn mbrs(&self) -> Vec<(Rect, u32)> {
        self.iter()
            .map(|(i, v)| match v {
                Value::Spatial(r) => (r.mbr(), i),
                Value::Polygon(p) => (p.mbr(), i),
                other => panic!(
                    "relation {:?} tuple {i} is {}, not spatial",
                    self.name,
                    other.domain()
                ),
            })
            .collect()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} tuples)", self.name, self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Relation::from_ints("R", [1, 1, 2]);
        assert_eq!(r.name(), "R");
        assert_eq!(r.len(), 3);
        assert_eq!(r.value(1), &Value::Int(1));
        assert!(!r.is_empty());

        let s = Relation::from_strs("S", ["a", "b"]);
        assert_eq!(s.value(0), &Value::Str("a".into()));

        let t = Relation::from_sets("T", [IdSet::new(vec![1, 2])]);
        assert_eq!(t.value(0).as_set().unwrap().len(), 2);
    }

    #[test]
    fn multiset_semantics_preserved() {
        // duplicates stay distinct tuples
        let r = Relation::from_ints("R", [7, 7, 7]);
        assert_eq!(r.len(), 3);
        let ids: Vec<u32> = r.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn mbrs_of_spatial_relation() {
        let r = Relation::from_rects("R", [Rect::new(0, 0, 2, 2), Rect::new(5, 5, 9, 9)]);
        let mbrs = r.mbrs();
        assert_eq!(mbrs.len(), 2);
        assert_eq!(mbrs[1], (Rect::new(5, 5, 9, 9), 1));
    }

    #[test]
    #[should_panic(expected = "not spatial")]
    fn mbrs_rejects_non_spatial() {
        Relation::from_ints("R", [1]).mbrs();
    }

    #[test]
    fn display() {
        assert_eq!(Relation::from_ints("R", [1, 2]).to_string(), "R(2 tuples)");
    }
}
