//! A fluent join-execution facade.
//!
//! The module-level functions in [`crate::algorithms`] are the canonical
//! API; [`Join`] wraps them for callers who want algorithm selection by
//! name or automatic dispatch on the predicate — the entry point a
//! downstream application would actually call.
//!
//! ```
//! use jp_relalg::query::Join;
//! use jp_relalg::Relation;
//!
//! let r = Relation::from_ints("R", [1, 2, 2, 3]);
//! let s = Relation::from_ints("S", [2, 3, 4]);
//! let out = Join::new(&r, &s).equality().run();
//! assert_eq!(out.pairs, vec![(1, 0), (2, 0), (3, 1)]);
//! assert_eq!(out.algorithm, "hash_join");
//! ```

use crate::algorithms::{self, JoinResult};
use crate::predicate::{Band, Equality, SetContainment, SpatialOverlap};
use crate::relation::Relation;
use std::time::{Duration, Instant};

/// Which predicate the join runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pred {
    Equality,
    SetContainment,
    SpatialOverlap,
    Band(i64),
}

/// The outcome of a join execution: the result pairs, the algorithm that
/// produced them, and how long it took.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Result tuple-id pairs, sorted (the join graph's edge list).
    pub pairs: JoinResult,
    /// The algorithm chosen.
    pub algorithm: &'static str,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// A fluent join builder over two relations.
#[derive(Debug, Clone, Copy)]
pub struct Join<'a> {
    r: &'a Relation,
    s: &'a Relation,
    pred: Pred,
    algo: Option<&'static str>,
}

impl<'a> Join<'a> {
    /// Starts a join between `r` and `s` (equality by default).
    pub fn new(r: &'a Relation, s: &'a Relation) -> Self {
        Join {
            r,
            s,
            pred: Pred::Equality,
            algo: None,
        }
    }

    /// Equality predicate (`r.A = s.B`) — dispatches to hash join.
    pub fn equality(mut self) -> Self {
        self.pred = Pred::Equality;
        self
    }

    /// Set-containment predicate (`r.A ⊆ s.B`) — dispatches to the
    /// inverted-index join.
    pub fn containment(mut self) -> Self {
        self.pred = Pred::SetContainment;
        self
    }

    /// Spatial-overlap predicate — dispatches to the plane-sweep join.
    pub fn overlap(mut self) -> Self {
        self.pred = Pred::SpatialOverlap;
        self
    }

    /// Band predicate `|r.A − s.B| ≤ w` — evaluated by nested loops.
    pub fn band(mut self, w: i64) -> Self {
        self.pred = Pred::Band(w);
        self
    }

    /// Forces a specific algorithm instead of the predicate default.
    /// Names match [`crate::algorithms`] function names (e.g.
    /// `"sort_merge"`, `"signature"`, `"rtree"`).
    pub fn algorithm(mut self, name: &'static str) -> Self {
        self.algo = Some(name);
        self
    }

    /// Executes the join.
    ///
    /// # Panics
    /// Panics on an unknown algorithm name or an algorithm/predicate
    /// mismatch (e.g. `"rtree"` under equality).
    pub fn run(self) -> JoinOutput {
        let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Relalg);
        let t0 = Instant::now();
        let (algorithm, mut pairs): (&'static str, JoinResult) = match (self.pred, self.algo) {
            (Pred::Equality, None | Some("hash_join")) => {
                ("hash_join", algorithms::equi::hash_join(self.r, self.s))
            }
            (Pred::Equality, Some("sort_merge")) => {
                ("sort_merge", algorithms::equi::sort_merge(self.r, self.s))
            }
            (Pred::Equality, Some("index_nested_loops")) => (
                "index_nested_loops",
                algorithms::equi::index_nested_loops(self.r, self.s),
            ),
            (Pred::Equality, Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &Equality),
            ),
            (Pred::SetContainment, None | Some("inverted_index")) => (
                "inverted_index",
                algorithms::containment::inverted_index(self.r, self.s),
            ),
            (Pred::SetContainment, Some("signature")) => (
                "signature",
                algorithms::containment::signature(self.r, self.s),
            ),
            (Pred::SetContainment, Some("partitioned")) => (
                "partitioned",
                algorithms::containment::partitioned(self.r, self.s, 64),
            ),
            (Pred::SetContainment, Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &SetContainment),
            ),
            (Pred::SpatialOverlap, None | Some("sweep")) => {
                ("sweep", algorithms::spatial::sweep(self.r, self.s))
            }
            (Pred::SpatialOverlap, Some("pbsm")) => {
                ("pbsm", algorithms::spatial::pbsm(self.r, self.s))
            }
            (Pred::SpatialOverlap, Some("rtree")) => {
                ("rtree", algorithms::spatial::rtree(self.r, self.s))
            }
            (Pred::SpatialOverlap, Some("index_nested_loops")) => (
                "index_nested_loops",
                algorithms::spatial::index_nested_loops(self.r, self.s),
            ),
            (Pred::SpatialOverlap, Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &SpatialOverlap),
            ),
            (Pred::Band(w), None | Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &Band(w)),
            ),
            (pred, Some(name)) => {
                panic!("algorithm {name:?} is not available for predicate {pred:?}")
            }
        };
        pairs.sort_unstable();
        JoinOutput {
            pairs,
            algorithm,
            elapsed: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IdSet;
    use crate::workload;

    #[test]
    fn default_dispatch_per_predicate() {
        let r = Relation::from_ints("R", [1, 2]);
        let s = Relation::from_ints("S", [2]);
        let out = Join::new(&r, &s).run();
        assert_eq!(out.algorithm, "hash_join");
        assert_eq!(out.pairs, vec![(1, 0)]);

        let r = Relation::from_sets("R", [IdSet::new(vec![1])]);
        let s = Relation::from_sets("S", [IdSet::new(vec![1, 2])]);
        let out = Join::new(&r, &s).containment().run();
        assert_eq!(out.algorithm, "inverted_index");
        assert_eq!(out.pairs, vec![(0, 0)]);
    }

    #[test]
    fn all_named_algorithms_agree() {
        let (r, s) = workload::zipf_equijoin(60, 60, 10, 0.7, 31);
        let base = Join::new(&r, &s).run().pairs;
        for name in ["sort_merge", "index_nested_loops", "nested_loops"] {
            assert_eq!(
                Join::new(&r, &s).algorithm(name).run().pairs,
                base,
                "{name}"
            );
        }

        let rs = workload::uniform_rects(60, 800, 40, 32);
        let ss = workload::uniform_rects(60, 800, 40, 33);
        let base = Join::new(&rs, &ss).overlap().run().pairs;
        for name in ["pbsm", "rtree", "index_nested_loops", "nested_loops"] {
            assert_eq!(
                Join::new(&rs, &ss).overlap().algorithm(name).run().pairs,
                base,
                "{name}"
            );
        }
    }

    #[test]
    fn band_joins_run() {
        let r = Relation::from_ints("R", [1, 5]);
        let s = Relation::from_ints("S", [2, 9]);
        let out = Join::new(&r, &s).band(1).run();
        assert_eq!(out.pairs, vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn mismatched_algorithm_panics() {
        let r = Relation::from_ints("R", [1]);
        Join::new(&r, &r.clone())
            .equality()
            .algorithm("rtree")
            .run();
    }
}
