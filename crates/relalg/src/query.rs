//! A fluent join-execution facade.
//!
//! The module-level functions in [`crate::algorithms`] are the canonical
//! API; [`Join`] wraps them for callers who want algorithm selection by
//! name or automatic dispatch on the predicate — the entry point a
//! downstream application would actually call.
//!
//! ```
//! use jp_relalg::query::Join;
//! use jp_relalg::Relation;
//!
//! let r = Relation::from_ints("R", [1, 2, 2, 3]);
//! let s = Relation::from_ints("S", [2, 3, 4]);
//! let out = Join::new(&r, &s).equality().run();
//! assert_eq!(out.pairs, vec![(1, 0), (2, 0), (3, 1)]);
//! assert_eq!(out.algorithm, "hash_join");
//! ```

use crate::algorithms::{self, JoinResult};
use crate::error::RelalgError;
use crate::predicate::{Band, Equality, SetContainment, SpatialOverlap};
use crate::relation::Relation;
use crate::trie::MultiRelation;
use std::time::{Duration, Instant};

/// One atom `R_i(x, y, …)` of a conjunctive query: a relation index
/// into the query's relation slice plus the variables its columns bind,
/// in column order. Variables are small integers; an atom may not
/// repeat a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Index into the relation slice the query is evaluated against.
    pub relation: usize,
    /// Variable bound by each column.
    pub vars: Vec<u32>,
}

/// A full conjunctive query `Q(vars) ← R_0(…) ∧ R_1(…) ∧ …` together
/// with a fractional edge cover certifying its AGM output bound
/// (Ngo–Porat–Ré–Rudra 2012): weights `w_i ≥ 0`, one per atom, with
/// every variable's incident weight summing to at least 1, so
/// `|output| ≤ ∏ |R_i|^{w_i}` for every instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    name: String,
    atoms: Vec<Atom>,
    cover: Vec<f64>,
}

impl ConjunctiveQuery {
    /// Builds and validates a query: at least one atom, no repeated
    /// variable within an atom, and a valid fractional edge cover.
    ///
    /// # Errors
    /// [`RelalgError::EmptyQuery`], [`RelalgError::RepeatedVariable`],
    /// [`RelalgError::MalformedCover`], or
    /// [`RelalgError::UncoveredVariable`].
    pub fn new(
        name: impl Into<String>,
        atoms: Vec<Atom>,
        cover: Vec<f64>,
    ) -> Result<Self, RelalgError> {
        if atoms.is_empty() {
            return Err(RelalgError::EmptyQuery);
        }
        for (ai, atom) in atoms.iter().enumerate() {
            let mut seen = atom.vars.clone();
            seen.sort_unstable();
            for w in seen.windows(2) {
                if let &[a, b] = w {
                    if a == b {
                        return Err(RelalgError::RepeatedVariable { atom: ai, var: a });
                    }
                }
            }
        }
        if cover.len() != atoms.len() {
            return Err(RelalgError::MalformedCover {
                detail: format!("{} weights for {} atoms", cover.len(), atoms.len()),
            });
        }
        if let Some(w) = cover.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(RelalgError::MalformedCover {
                detail: format!("weight {w} is not a finite non-negative number"),
            });
        }
        let q = ConjunctiveQuery {
            name: name.into(),
            atoms,
            cover,
        };
        for v in q.variables() {
            let incident: f64 = q
                .atoms
                .iter()
                .zip(&q.cover)
                .filter(|(a, _)| a.vars.contains(&v))
                .map(|(_, w)| w)
                .sum();
            // Tolerance for 1/3-style weights that don't sum exactly.
            if incident < 1.0 - 1e-9 {
                return Err(RelalgError::UncoveredVariable { var: v });
            }
        }
        Ok(q)
    }

    /// Query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The fractional edge cover weights, one per atom.
    pub fn cover(&self) -> &[f64] {
        &self.cover
    }

    /// All distinct variables, ascending.
    pub fn variables(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self.atoms.iter().flat_map(|a| a.vars.clone()).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// The shared variable ordering both multiway algorithms bind in:
    /// descending atom frequency (most-constrained variable first),
    /// variable id as the tiebreak. Deterministic for a given query.
    pub fn variable_order(&self) -> Vec<u32> {
        let mut vs = self.variables();
        let freq = |v: u32| self.atoms.iter().filter(|a| a.vars.contains(&v)).count();
        vs.sort_by_key(|&v| (std::cmp::Reverse(freq(v)), v));
        vs
    }

    /// The AGM bound `∏ |R_i|^{w_i}` certified by the query's
    /// fractional edge cover, over the given relation cardinalities.
    /// An empty relation under a positive weight gives bound 0.
    pub fn agm_bound(&self, sizes: &[usize]) -> f64 {
        self.atoms
            .iter()
            .zip(&self.cover)
            .map(|(a, &w)| {
                let n = sizes.get(a.relation).copied().unwrap_or(0) as f64;
                if w == 0.0 {
                    1.0
                } else {
                    n.powf(w)
                }
            })
            .product()
    }

    /// Validates the query against concrete relations: every atom's
    /// relation index in range with matching arity.
    ///
    /// # Errors
    /// [`RelalgError::UnknownRelation`] or [`RelalgError::ArityMismatch`].
    pub fn check_relations(&self, rels: &[MultiRelation]) -> Result<(), RelalgError> {
        for (ai, atom) in self.atoms.iter().enumerate() {
            let Some(rel) = rels.get(atom.relation) else {
                return Err(RelalgError::UnknownRelation {
                    atom: ai,
                    relation: atom.relation,
                    available: rels.len(),
                });
            };
            if rel.arity() != atom.vars.len() {
                return Err(RelalgError::ArityMismatch {
                    relation: rel.name().to_string(),
                    expected: atom.vars.len(),
                    found: rel.arity(),
                });
            }
        }
        Ok(())
    }

    /// The triangle query `Q(a,b,c) ← R(a,b) ∧ S(b,c) ∧ T(a,c)` with
    /// the optimal cover (½, ½, ½): AGM bound `√(|R|·|S|·|T|)`.
    pub fn triangle() -> Self {
        let atoms = vec![
            Atom {
                relation: 0,
                vars: vec![0, 1],
            },
            Atom {
                relation: 1,
                vars: vec![1, 2],
            },
            Atom {
                relation: 2,
                vars: vec![0, 2],
            },
        ];
        ConjunctiveQuery::new("triangle", atoms, vec![0.5; 3]).expect("statically well-formed")
    }

    /// The 4-clique query over six binary edge relations with the
    /// optimal cover (⅓ each): AGM bound `∏|R_i|^{1/3}`.
    pub fn four_clique() -> Self {
        let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let atoms = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Atom {
                relation: i,
                vars: vec![a, b],
            })
            .collect();
        ConjunctiveQuery::new("four_clique", atoms, vec![1.0 / 3.0; 6])
            .expect("statically well-formed")
    }

    /// The bowtie query: two triangles sharing apex variable `a` —
    /// `R(a,b) ∧ S(b,c) ∧ T(c,a) ∧ U(a,d) ∧ V(d,e) ∧ W(e,a)` with cover
    /// ½ on every atom (the apex is covered twice over; the bound is
    /// not tight there, which the experiments surface).
    pub fn bowtie() -> Self {
        let edges = [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)];
        let atoms = edges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Atom {
                relation: i,
                vars: vec![a, b],
            })
            .collect();
        ConjunctiveQuery::new("bowtie", atoms, vec![0.5; 6]).expect("statically well-formed")
    }
}

/// Which predicate the join runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pred {
    Equality,
    SetContainment,
    SpatialOverlap,
    Band(i64),
}

/// The outcome of a join execution: the result pairs, the algorithm that
/// produced them, and how long it took.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Result tuple-id pairs, sorted (the join graph's edge list).
    pub pairs: JoinResult,
    /// The algorithm chosen.
    pub algorithm: &'static str,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// A fluent join builder over two relations.
#[derive(Debug, Clone, Copy)]
pub struct Join<'a> {
    r: &'a Relation,
    s: &'a Relation,
    pred: Pred,
    algo: Option<&'static str>,
}

impl<'a> Join<'a> {
    /// Starts a join between `r` and `s` (equality by default).
    pub fn new(r: &'a Relation, s: &'a Relation) -> Self {
        Join {
            r,
            s,
            pred: Pred::Equality,
            algo: None,
        }
    }

    /// Equality predicate (`r.A = s.B`) — dispatches to hash join.
    pub fn equality(mut self) -> Self {
        self.pred = Pred::Equality;
        self
    }

    /// Set-containment predicate (`r.A ⊆ s.B`) — dispatches to the
    /// inverted-index join.
    pub fn containment(mut self) -> Self {
        self.pred = Pred::SetContainment;
        self
    }

    /// Spatial-overlap predicate — dispatches to the plane-sweep join.
    pub fn overlap(mut self) -> Self {
        self.pred = Pred::SpatialOverlap;
        self
    }

    /// Band predicate `|r.A − s.B| ≤ w` — evaluated by nested loops.
    pub fn band(mut self, w: i64) -> Self {
        self.pred = Pred::Band(w);
        self
    }

    /// Forces a specific algorithm instead of the predicate default.
    /// Names match [`crate::algorithms`] function names (e.g.
    /// `"sort_merge"`, `"signature"`, `"rtree"`).
    pub fn algorithm(mut self, name: &'static str) -> Self {
        self.algo = Some(name);
        self
    }

    /// Executes the join.
    ///
    /// # Panics
    /// Panics on an unknown algorithm name or an algorithm/predicate
    /// mismatch (e.g. `"rtree"` under equality).
    pub fn run(self) -> JoinOutput {
        let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Relalg);
        let t0 = Instant::now();
        let (algorithm, mut pairs): (&'static str, JoinResult) = match (self.pred, self.algo) {
            (Pred::Equality, None | Some("hash_join")) => {
                ("hash_join", algorithms::equi::hash_join(self.r, self.s))
            }
            (Pred::Equality, Some("sort_merge")) => {
                ("sort_merge", algorithms::equi::sort_merge(self.r, self.s))
            }
            (Pred::Equality, Some("index_nested_loops")) => (
                "index_nested_loops",
                algorithms::equi::index_nested_loops(self.r, self.s),
            ),
            (Pred::Equality, Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &Equality),
            ),
            (Pred::SetContainment, None | Some("inverted_index")) => (
                "inverted_index",
                algorithms::containment::inverted_index(self.r, self.s),
            ),
            (Pred::SetContainment, Some("signature")) => (
                "signature",
                algorithms::containment::signature(self.r, self.s),
            ),
            (Pred::SetContainment, Some("partitioned")) => (
                "partitioned",
                algorithms::containment::partitioned(self.r, self.s, 64),
            ),
            (Pred::SetContainment, Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &SetContainment),
            ),
            (Pred::SpatialOverlap, None | Some("sweep")) => {
                ("sweep", algorithms::spatial::sweep(self.r, self.s))
            }
            (Pred::SpatialOverlap, Some("pbsm")) => {
                ("pbsm", algorithms::spatial::pbsm(self.r, self.s))
            }
            (Pred::SpatialOverlap, Some("rtree")) => {
                ("rtree", algorithms::spatial::rtree(self.r, self.s))
            }
            (Pred::SpatialOverlap, Some("index_nested_loops")) => (
                "index_nested_loops",
                algorithms::spatial::index_nested_loops(self.r, self.s),
            ),
            (Pred::SpatialOverlap, Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &SpatialOverlap),
            ),
            (Pred::Band(w), None | Some("nested_loops")) => (
                "nested_loops",
                algorithms::nested_loops(self.r, self.s, &Band(w)),
            ),
            (pred, Some(name)) => {
                panic!("algorithm {name:?} is not available for predicate {pred:?}")
            }
        };
        pairs.sort_unstable();
        JoinOutput {
            pairs,
            algorithm,
            elapsed: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IdSet;
    use crate::workload;

    #[test]
    fn default_dispatch_per_predicate() {
        let r = Relation::from_ints("R", [1, 2]);
        let s = Relation::from_ints("S", [2]);
        let out = Join::new(&r, &s).run();
        assert_eq!(out.algorithm, "hash_join");
        assert_eq!(out.pairs, vec![(1, 0)]);

        let r = Relation::from_sets("R", [IdSet::new(vec![1])]);
        let s = Relation::from_sets("S", [IdSet::new(vec![1, 2])]);
        let out = Join::new(&r, &s).containment().run();
        assert_eq!(out.algorithm, "inverted_index");
        assert_eq!(out.pairs, vec![(0, 0)]);
    }

    #[test]
    fn all_named_algorithms_agree() {
        let (r, s) = workload::zipf_equijoin(60, 60, 10, 0.7, 31);
        let base = Join::new(&r, &s).run().pairs;
        for name in ["sort_merge", "index_nested_loops", "nested_loops"] {
            assert_eq!(
                Join::new(&r, &s).algorithm(name).run().pairs,
                base,
                "{name}"
            );
        }

        let rs = workload::uniform_rects(60, 800, 40, 32);
        let ss = workload::uniform_rects(60, 800, 40, 33);
        let base = Join::new(&rs, &ss).overlap().run().pairs;
        for name in ["pbsm", "rtree", "index_nested_loops", "nested_loops"] {
            assert_eq!(
                Join::new(&rs, &ss).overlap().algorithm(name).run().pairs,
                base,
                "{name}"
            );
        }
    }

    #[test]
    fn band_joins_run() {
        let r = Relation::from_ints("R", [1, 5]);
        let s = Relation::from_ints("S", [2, 9]);
        let out = Join::new(&r, &s).band(1).run();
        assert_eq!(out.pairs, vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn mismatched_algorithm_panics() {
        let r = Relation::from_ints("R", [1]);
        Join::new(&r, &r.clone())
            .equality()
            .algorithm("rtree")
            .run();
    }
}
