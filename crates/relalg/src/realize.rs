//! Realization lemmas: which join graphs can each predicate produce?
//!
//! This is the heart of the paper's *combinatorial* separation:
//!
//! * Equijoins only produce disjoint unions of complete bipartite graphs
//!   (§3.1) — [`equijoin_instance`] realizes exactly those;
//! * Set-containment joins are **universal** (Lemma 3.3): *every*
//!   bipartite graph is the join graph of some containment instance —
//!   [`set_containment_instance`] is the paper's construction
//!   (`r_i = {i}`, `s_j = {i : (r_i, s_j) ∈ E}`);
//! * Spatial-overlap joins realize the worst-case family `G_n` with plain
//!   rectangles (Lemma 3.4) — [`spatial_spider_instance`] — and, with
//!   rectilinear comb regions, *every* bipartite graph —
//!   [`spatial_universal_instance`] (a strengthening the paper does not
//!   need but which makes the T4.2 hardness-for-spatial-graphs experiment
//!   run on arbitrary inputs).
//!
//! Every constructor is paired with a test that rebuilds the join graph
//! from the produced relations and checks it equals the input graph.

use crate::relation::Relation;
use crate::value::IdSet;
use jp_geometry::{Rect, Region};
use jp_graph::{properties, BipartiteGraph};

/// Realizes a disjoint-union-of-complete-bipartite graph as an equijoin
/// instance: component `c` becomes key value `c` on both sides.
///
/// Returns `None` if `g` is not an equijoin join graph (Theorem 3.2's
/// characterization fails). Isolated vertices become non-joining fresh key
/// values, preserving vertex counts.
pub fn equijoin_instance(g: &BipartiteGraph) -> Option<(Relation, Relation)> {
    if !properties::is_equijoin_graph(g) {
        return None;
    }
    let cm = jp_graph::ComponentMap::new(g);
    // Keys for isolated vertices start above the component ids and are
    // globally unique so they join with nothing.
    let mut next_free = cm.count as i64;
    let mut r_vals = Vec::with_capacity(g.left_count() as usize);
    for l in 0..g.left_count() {
        let c = cm.left[l as usize];
        if c == u32::MAX {
            r_vals.push(next_free);
            next_free += 1;
        } else {
            r_vals.push(c as i64);
        }
    }
    let mut s_vals = Vec::with_capacity(g.right_count() as usize);
    for r in 0..g.right_count() {
        let c = cm.right[r as usize];
        if c == u32::MAX {
            s_vals.push(next_free);
            next_free += 1;
        } else {
            s_vals.push(c as i64);
        }
    }
    Some((
        Relation::from_ints("R", r_vals),
        Relation::from_ints("S", s_vals),
    ))
}

/// **Lemma 3.3.** Realizes *any* bipartite graph as a set-containment
/// instance: `r_i` is the singleton `{i}` and `s_j` is the set of left
/// indices adjacent to `j`. Then `r_i ⊆ s_j ⇔ i ∈ s_j ⇔ (i, j) ∈ E`.
///
/// ```
/// use jp_graph::generators;
/// use jp_relalg::{containment_graph, realize};
///
/// // Even the worst-case spider is a containment join graph.
/// let g = generators::spider(5);
/// let (r, s) = realize::set_containment_instance(&g);
/// assert_eq!(containment_graph(&r, &s).unwrap(), g);
/// ```
pub fn set_containment_instance(g: &BipartiteGraph) -> (Relation, Relation) {
    let r = Relation::from_sets("R", (0..g.left_count()).map(|i| IdSet::new(vec![i])));
    let s = Relation::from_sets(
        "S",
        (0..g.right_count()).map(|j| IdSet::new(g.right_neighbors(j).to_vec())),
    );
    (r, s)
}

/// **Lemma 3.4.** Realizes the Figure 1 family `G_n` as a spatial-overlap
/// instance using plain axis-aligned rectangles:
///
/// * the centre `c` is a long horizontal bar high above the baseline;
/// * each middle vertex `v_i` is a tall vertical bar crossing `c`;
/// * each foot `w_i` is a small square at the bottom of `v_i`'s bar,
///   far below `c` and horizontally clear of every other bar.
///
/// Left relation holds `{c, w_1..w_n}` (matching
/// `jp_graph::generators::spider`'s layout), right relation holds
/// `{v_1..v_n}`.
pub fn spatial_spider_instance(n: u32) -> (Relation, Relation) {
    assert!(n >= 1);
    let span = 10 * (n as i64 - 1) + 2;
    let mut left = Vec::with_capacity(n as usize + 1);
    // c: horizontal bar at height 100..102 spanning all columns.
    left.push(Rect::new(0, 100, span, 102));
    // w_i: square in column i at the baseline.
    for i in 0..n as i64 {
        left.push(Rect::new(10 * i, 0, 10 * i + 2, 2));
    }
    // v_i: vertical bar in column i from the baseline through c.
    let right: Vec<Rect> = (0..n as i64)
        .map(|i| Rect::new(10 * i, 0, 10 * i + 2, 102))
        .collect();
    (
        Relation::from_rects("R", left),
        Relation::from_rects("S", right),
    )
}

/// Spatial universality via comb-shaped rectilinear regions: realizes
/// *any* bipartite graph as a spatial-overlap instance.
///
/// Right vertex `j` is a small square in column `j` on the baseline. Left
/// vertex `i` is a comb: a horizontal spine on private row `i` (rows sit
/// strictly above every square) plus, for each neighbour `j`, a vertical
/// tooth from the spine down into square `j`'s column. Teeth of different
/// left vertices may overlap each other, but `R×R` overlaps are invisible
/// to the bipartite join graph; a tooth only reaches square `j` in its own
/// column, so `region(i) ∩ square(j) ≠ ∅ ⇔ (i, j) ∈ E`.
pub fn spatial_universal_instance(g: &BipartiteGraph) -> (Relation, Relation) {
    let cols = g.right_count().max(1) as i64;
    let right: Vec<Region> = (0..g.right_count() as i64)
        .map(|j| Region::rect(Rect::new(10 * j, 0, 10 * j + 2, 2)))
        .collect();
    let left: Vec<Region> = (0..g.left_count())
        .map(|i| {
            let row = 10 + 10 * i as i64;
            let mut rects = vec![Rect::new(0, row, 10 * cols, row + 2)];
            for &j in g.left_neighbors(i) {
                // Tooth: overlaps square j (y in [1,2]) and the spine.
                rects.push(Rect::new(10 * j as i64, 1, 10 * j as i64 + 2, row + 1));
            }
            Region::new(rects)
        })
        .collect();
    (
        Relation::from_regions("R", left),
        Relation::from_regions("S", right),
    )
}

/// Set-*overlap* universality (an extension beyond the paper's Lemma 3.3,
/// proved the same way): every bipartite graph is the join graph of a
/// set-overlap join (`r.A ∩ s.B ≠ ∅`). Give each tuple the set of *edge
/// ids* incident to its vertex: two tuples' sets share an element iff the
/// vertices share an edge. Isolated vertices get fresh singleton sets so
/// they overlap nothing.
pub fn set_overlap_instance(g: &BipartiteGraph) -> (Relation, Relation) {
    let m = g.edge_count() as u32;
    let mut fresh = m; // ids above the edge range never collide
    let mut fresh_set = || {
        let id = fresh;
        fresh += 1;
        IdSet::new(vec![id])
    };
    let r_sets: Vec<IdSet> = (0..g.left_count())
        .map(|l| {
            let edges: Vec<u32> = g
                .left_neighbors(l)
                .iter()
                .map(|&r| g.edge_index(l, r).expect("adjacent") as u32)
                .collect();
            if edges.is_empty() {
                fresh_set()
            } else {
                IdSet::new(edges)
            }
        })
        .collect();
    let s_sets: Vec<IdSet> = (0..g.right_count())
        .map(|r| {
            let edges: Vec<u32> = g
                .right_neighbors(r)
                .iter()
                .map(|&l| g.edge_index(l, r).expect("adjacent") as u32)
                .collect();
            if edges.is_empty() {
                fresh_set()
            } else {
                IdSet::new(edges)
            }
        })
        .collect();
    (
        Relation::from_sets("R", r_sets),
        Relation::from_sets("S", s_sets),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::{containment_graph, equijoin_graph, join_graph, spatial_graph};
    use crate::predicate::{SetContainment, SpatialOverlap};
    use jp_graph::generators;

    #[test]
    fn equijoin_instance_roundtrip() {
        let g = generators::complete_bipartite(2, 3)
            .disjoint_union(&generators::complete_bipartite(1, 4))
            .disjoint_union(&generators::matching(3));
        let (r, s) = equijoin_instance(&g).expect("is an equijoin graph");
        assert_eq!(equijoin_graph(&r, &s).unwrap(), g);
    }

    #[test]
    fn equijoin_instance_preserves_isolated_vertices() {
        let g = jp_graph::BipartiteGraph::new(3, 2, vec![(0, 0)]);
        let (r, s) = equijoin_instance(&g).expect("equijoin graph");
        assert_eq!(r.len(), 3);
        assert_eq!(s.len(), 2);
        let rebuilt = equijoin_graph(&r, &s).unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn equijoin_instance_rejects_non_equijoin_graphs() {
        assert!(equijoin_instance(&generators::path(3)).is_none());
        assert!(equijoin_instance(&generators::spider(3)).is_none());
    }

    #[test]
    fn lemma_3_3_containment_universality() {
        // Arbitrary graphs — including ones no equijoin can produce.
        for g in [
            generators::spider(4),
            generators::path(5),
            generators::cycle(3),
            generators::random_bipartite(6, 7, 0.4, 9),
        ] {
            let (r, s) = set_containment_instance(&g);
            assert_eq!(containment_graph(&r, &s).unwrap(), g, "fast builder");
            assert_eq!(
                join_graph(&r, &s, &SetContainment).unwrap(),
                g,
                "by definition"
            );
        }
    }

    #[test]
    fn lemma_3_4_spider_realized_with_rectangles() {
        for n in 1..8 {
            let (r, s) = spatial_spider_instance(n);
            let got = spatial_graph(&r, &s).unwrap();
            assert_eq!(got, generators::spider(n), "G_{n}");
        }
    }

    #[test]
    fn spatial_universal_realizes_arbitrary_graphs() {
        for g in [
            generators::spider(3),
            generators::path(6),
            generators::cycle(4),
            generators::complete_bipartite(3, 3),
            generators::random_bipartite(5, 8, 0.35, 4),
            jp_graph::BipartiteGraph::new(3, 3, vec![]), // edgeless
        ] {
            let (r, s) = spatial_universal_instance(&g);
            assert_eq!(spatial_graph(&r, &s).unwrap(), g, "fast builder");
            assert_eq!(
                join_graph(&r, &s, &SpatialOverlap).unwrap(),
                g,
                "by definition"
            );
        }
    }

    #[test]
    fn set_overlap_universality() {
        use crate::predicate::SetOverlap;
        for g in [
            generators::spider(4),
            generators::path(7),
            generators::complete_bipartite(3, 3),
            generators::random_bipartite(7, 6, 0.3, 11),
            jp_graph::BipartiteGraph::new(3, 2, vec![(0, 0)]), // isolated vertices
        ] {
            let (r, s) = set_overlap_instance(&g);
            assert_eq!(join_graph(&r, &s, &SetOverlap).unwrap(), g, "{g}");
        }
    }

    #[test]
    fn spatial_universal_keeps_vertex_counts() {
        let g = generators::random_bipartite(4, 9, 0.2, 17);
        let (r, s) = spatial_universal_instance(&g);
        assert_eq!(r.len() as u32, g.left_count());
        assert_eq!(s.len() as u32, g.right_count());
    }
}
