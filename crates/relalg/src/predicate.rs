//! Join predicates `θ` — the objects the paper classifies.
//!
//! "Given two relations `R(A)` and `S(B)` and a join predicate `θ`,
//! generate pairs of tuples `(r, s)` … such that `r θ s` holds."
//!
//! The three predicates the paper studies are [`Equality`] (equijoin),
//! [`SpatialOverlap`] (polygon overlap) and [`SetContainment`]
//! (`r.A ⊆ s.B`). A few neighbours ([`SetOverlap`], [`SetEquality`],
//! [`Band`], [`LessThan`]) are included because their join graphs make
//! instructive comparison points in the experiments (set *equality*, for
//! example, is just an equijoin over the set domain and pebbles
//! perfectly).

use crate::value::Value;

/// A boolean predicate over a pair of column values.
///
/// Predicates are total over [`Value`]: value pairs from the wrong domain
/// simply do not join (returning `false` rather than erroring keeps join
/// graphs well-defined for heterogeneous relations).
pub trait JoinPredicate {
    /// Human-readable predicate name, used in reports.
    fn name(&self) -> &'static str;

    /// Whether tuple values `a θ b` holds.
    fn matches(&self, a: &Value, b: &Value) -> bool;
}

/// The equijoin predicate `r.A = s.B`, over any domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Equality;

impl JoinPredicate for Equality {
    fn name(&self) -> &'static str {
        "equality"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        a == b
    }
}

/// Set containment `r.A ⊆ s.B`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetContainment;

impl JoinPredicate for SetContainment {
    fn name(&self) -> &'static str {
        "set-containment"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Set(x), Value::Set(y)) => x.is_subset_of(y),
            _ => false,
        }
    }
}

/// Set overlap `r.A ∩ s.B ≠ ∅`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetOverlap;

impl JoinPredicate for SetOverlap {
    fn name(&self) -> &'static str {
        "set-overlap"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Set(x), Value::Set(y)) => x.intersects(y),
            _ => false,
        }
    }
}

/// Set equality `r.A = s.B` — an equijoin over the set domain; included to
/// demonstrate that the *predicate*, not the domain, drives hardness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetEquality;

impl JoinPredicate for SetEquality {
    fn name(&self) -> &'static str {
        "set-equality"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        matches!((a, b), (Value::Set(x), Value::Set(y)) if x == y)
    }
}

/// Spatial overlap: regions (or convex polygons) sharing at least one
/// point. Mixed region/polygon pairs are compared through MBR filtering
/// plus the polygon's bounding box — exact for the rectilinear stand-in.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpatialOverlap;

impl JoinPredicate for SpatialOverlap {
    fn name(&self) -> &'static str {
        "spatial-overlap"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Spatial(x), Value::Spatial(y)) => x.intersects(y),
            (Value::Polygon(x), Value::Polygon(y)) => x.intersects(y),
            _ => false,
        }
    }
}

/// Band join `|r.A − s.B| ≤ w` over integers.
#[derive(Debug, Clone, Copy)]
pub struct Band(pub i64);

impl JoinPredicate for Band {
    fn name(&self) -> &'static str {
        "band"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => (x - y).abs() <= self.0,
            _ => false,
        }
    }
}

/// Inequality join `r.A < s.B` over any ordered domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct LessThan;

impl JoinPredicate for LessThan {
    fn name(&self) -> &'static str {
        "less-than"
    }

    fn matches(&self, a: &Value, b: &Value) -> bool {
        a.domain() == b.domain() && a < b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IdSet;

    fn set(v: &[u32]) -> Value {
        Value::Set(IdSet::new(v.to_vec()))
    }

    #[test]
    fn equality_over_domains() {
        assert!(Equality.matches(&Value::Int(3), &Value::Int(3)));
        assert!(!Equality.matches(&Value::Int(3), &Value::Int(4)));
        assert!(Equality.matches(&set(&[1, 2]), &set(&[2, 1])));
        assert!(!Equality.matches(&Value::Int(3), &set(&[3])));
    }

    #[test]
    fn containment_direction() {
        assert!(SetContainment.matches(&set(&[1]), &set(&[1, 2])));
        assert!(!SetContainment.matches(&set(&[1, 2]), &set(&[1])));
        assert!(SetContainment.matches(&set(&[]), &set(&[])));
        assert!(!SetContainment.matches(&Value::Int(1), &set(&[1])));
    }

    #[test]
    fn set_overlap_and_equality() {
        assert!(SetOverlap.matches(&set(&[1, 9]), &set(&[9])));
        assert!(!SetOverlap.matches(&set(&[1]), &set(&[2])));
        assert!(SetEquality.matches(&set(&[4, 2]), &set(&[2, 4])));
        assert!(!SetEquality.matches(&set(&[2]), &set(&[2, 4])));
    }

    #[test]
    fn spatial_overlap() {
        use jp_geometry::{Rect, Region};
        let a = Value::Spatial(Region::rect(Rect::new(0, 0, 5, 5)));
        let b = Value::Spatial(Region::rect(Rect::new(4, 4, 9, 9)));
        let c = Value::Spatial(Region::rect(Rect::new(6, 6, 9, 9)));
        assert!(SpatialOverlap.matches(&a, &b));
        assert!(!SpatialOverlap.matches(&a, &c));
        assert!(!SpatialOverlap.matches(&a, &Value::Int(0)));
    }

    #[test]
    fn band_and_less_than() {
        assert!(Band(2).matches(&Value::Int(5), &Value::Int(7)));
        assert!(Band(2).matches(&Value::Int(7), &Value::Int(5)));
        assert!(!Band(2).matches(&Value::Int(5), &Value::Int(8)));
        assert!(LessThan.matches(&Value::Int(1), &Value::Int(2)));
        assert!(!LessThan.matches(&Value::Int(2), &Value::Int(2)));
        // cross-domain comparisons never join
        assert!(!LessThan.matches(&Value::Int(1), &Value::Str("z".into())));
    }

    #[test]
    fn names() {
        assert_eq!(Equality.name(), "equality");
        assert_eq!(SetContainment.name(), "set-containment");
        assert_eq!(SpatialOverlap.name(), "spatial-overlap");
    }
}
