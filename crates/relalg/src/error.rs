//! Classified errors for the relational layer.
//!
//! Two families of failure used to abort the process instead of
//! reporting: relations larger than `u32::MAX` tuples silently *wrapped*
//! their tuple ids through `as u32` casts (colliding distinct tuples in
//! the join graph), and a predicate applied to the wrong value domain
//! (`r.A ⊆ s.B` over integers, say) hit an `expect` deep inside a
//! builder. Both are **input** errors — adversarial workloads reach the
//! builders through the CLI and the realizers — so they surface here as
//! typed variants instead of panics.

use crate::relation::Relation;
use std::fmt;

/// A classified relational-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalgError {
    /// Tuple ids in join graphs and results are `u32`; a relation with
    /// more tuples than `u32::MAX` cannot be represented without id
    /// collisions, so it is rejected instead of silently wrapping.
    TooManyTuples {
        /// Name of the offending relation.
        relation: String,
        /// Its (unrepresentable) tuple count.
        len: usize,
    },
    /// A tuple's value kind does not match the predicate's domain (for
    /// example an `Int` where set-containment needs a `Set`).
    WrongDomain {
        /// Name of the offending relation.
        relation: String,
        /// Tuple position of the first mismatch.
        tuple: usize,
        /// Domain the predicate evaluates over.
        expected: &'static str,
        /// Domain actually found at `tuple`.
        found: &'static str,
    },
    /// A conjunctive query with no atoms.
    EmptyQuery,
    /// An atom referenced a relation index outside the provided slice.
    UnknownRelation {
        /// Atom position in the query.
        atom: usize,
        /// The out-of-range relation index.
        relation: usize,
        /// How many relations were provided.
        available: usize,
    },
    /// A relation's arity does not match its atom's variable count.
    ArityMismatch {
        /// Name of the offending relation.
        relation: String,
        /// Arity the atom requires.
        expected: usize,
        /// The relation's actual arity.
        found: usize,
    },
    /// An atom repeats a variable (`R(x, x)` is not supported by the
    /// trie iterators).
    RepeatedVariable {
        /// Atom position in the query.
        atom: usize,
        /// The repeated variable.
        var: u32,
    },
    /// The query's fractional edge cover leaves a variable uncovered
    /// (incident weights sum to less than 1), so it certifies no AGM
    /// output bound.
    UncoveredVariable {
        /// The uncovered variable.
        var: u32,
    },
    /// The fractional edge cover has the wrong number of weights or a
    /// negative weight.
    MalformedCover {
        /// What is wrong with it.
        detail: String,
    },
    /// An unknown multiway algorithm name.
    UnknownAlgorithm {
        /// The name that did not resolve.
        name: String,
    },
    /// An internal invariant failed. Never expected; reported instead
    /// of panicking so the planning service cannot be taken down by a
    /// latent bug in the trie iterators.
    Internal(&'static str),
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::TooManyTuples { relation, len } => write!(
                f,
                "relation {relation:?} has {len} tuples; tuple ids are u32, so at most \
                 {} tuples are representable",
                u32::MAX
            ),
            RelalgError::WrongDomain {
                relation,
                tuple,
                expected,
                found,
            } => write!(
                f,
                "relation {relation:?} tuple {tuple} is {found}-valued where the \
                 predicate needs {expected}"
            ),
            RelalgError::EmptyQuery => write!(f, "conjunctive query has no atoms"),
            RelalgError::UnknownRelation {
                atom,
                relation,
                available,
            } => write!(
                f,
                "atom {atom} references relation {relation} but only {available} were provided"
            ),
            RelalgError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation:?} has arity {found} but its atom binds {expected} variables"
            ),
            RelalgError::RepeatedVariable { atom, var } => {
                write!(f, "atom {atom} repeats variable v{var}")
            }
            RelalgError::UncoveredVariable { var } => write!(
                f,
                "fractional edge cover leaves variable v{var} uncovered (incident weight < 1)"
            ),
            RelalgError::MalformedCover { detail } => {
                write!(f, "malformed fractional edge cover: {detail}")
            }
            RelalgError::UnknownAlgorithm { name } => write!(
                f,
                "unknown multiway join algorithm {name:?} (expected lftj, generic, or cascade)"
            ),
            RelalgError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for RelalgError {}

/// Converts a tuple position to a `u32` tuple id, rejecting relations
/// beyond the representable range — the checked discipline shared by the
/// join-graph builders, traces, and the fragmented executor.
pub(crate) fn checked_tuple_count(rel: &Relation) -> Result<u32, RelalgError> {
    u32::try_from(rel.len()).map_err(|_| RelalgError::TooManyTuples {
        relation: rel.name().to_string(),
        len: rel.len(),
    })
}

/// The set carried by tuple `i` of `rel`, or the classified domain error.
pub(crate) fn require_set(rel: &Relation, i: usize) -> Result<&crate::value::IdSet, RelalgError> {
    let v = rel.value(i);
    v.as_set().ok_or_else(|| RelalgError::WrongDomain {
        relation: rel.name().to_string(),
        tuple: i,
        expected: "set",
        found: v.domain(),
    })
}

/// The region carried by tuple `i` of `rel`, or the classified domain
/// error.
pub(crate) fn require_region(
    rel: &Relation,
    i: usize,
) -> Result<&jp_geometry::Region, RelalgError> {
    let v = rel.value(i);
    v.as_region().ok_or_else(|| RelalgError::WrongDomain {
        relation: rel.name().to_string(),
        tuple: i,
        expected: "spatial",
        found: v.domain(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IdSet;

    #[test]
    fn display_variants() {
        let e = RelalgError::TooManyTuples {
            relation: "R".into(),
            len: 5_000_000_000,
        };
        assert!(e.to_string().contains("5000000000"));
        let e = RelalgError::WrongDomain {
            relation: "R".into(),
            tuple: 3,
            expected: "set",
            found: "int",
        };
        assert!(e.to_string().contains("tuple 3"));
        assert!(e.to_string().contains("int"));
        assert!(RelalgError::EmptyQuery.to_string().contains("no atoms"));
        assert!(RelalgError::UncoveredVariable { var: 2 }
            .to_string()
            .contains("v2"));
    }

    #[test]
    fn require_set_classifies() {
        let r = Relation::from_ints("R", [1]);
        match require_set(&r, 0) {
            Err(RelalgError::WrongDomain {
                expected, found, ..
            }) => {
                assert_eq!(expected, "set");
                assert_eq!(found, "int");
            }
            other => panic!("expected WrongDomain, got {other:?}"),
        }
        let s = Relation::from_sets("S", [IdSet::empty()]);
        assert!(require_set(&s, 0).is_ok());
    }

    #[test]
    fn checked_tuple_count_small_relations_pass() {
        let r = Relation::from_ints("R", [1, 2, 3]);
        assert_eq!(checked_tuple_count(&r).unwrap(), 3);
    }
}
