#![forbid(unsafe_code)]
//! Relational substrate for the reproduction of *On the Complexity of
//! Join Predicates* (PODS 2001).
//!
//! Implements §2's model exactly: single-column multiset relations
//! ([`relation::Relation`]), join predicates ([`predicate`]), and the
//! join graph ([`mod@join_graph`]) that the pebble game is played on —
//! plus real join algorithms ([`algorithms`]), the realization lemmas
//! ([`realize`]: Lemma 3.3 set-containment universality, Lemma 3.4
//! spatial realization), synthetic workload generators ([`workload`]),
//! and join-algorithm access traces ([`trace`]) whose implied pebbling
//! cost experiment E16 measures.

pub mod algorithms;
pub mod error;
pub mod join_graph;
pub mod parallel;
pub mod predicate;
pub mod query;
pub mod realize;
pub mod relation;
pub mod trace;
pub mod trie;
pub mod value;
pub mod workload;

pub use algorithms::multiway::{
    explain_plan, query_join_graph, solve as multiway_solve, AtomExplain, MultiwayAlgo,
    MultiwayOutput, MultiwayStats, PlanExplain,
};
pub use error::RelalgError;
pub use join_graph::{containment_graph, equijoin_graph, join_graph, spatial_graph};
pub use predicate::JoinPredicate;
pub use query::{Atom, ConjunctiveQuery};
pub use relation::Relation;
pub use trie::{MultiRelation, TrieIndex, TrieIter};
pub use value::{IdSet, Value};
