//! Parallel fragmented join execution — the *practice* behind §5.
//!
//! "Many join algorithms in practice work by first mapping the input
//! relations `R` and `S` into `R₁ … R_m` and `S₁ … S_n`, and doing the
//! join by investigating a subset of the joins `R_i ⋈ S_j`. This is done
//! either to explore parallelism or to make better use of main memory."
//!
//! [`fragmented_join`] executes exactly that plan: given fragment
//! assignments (produced e.g. by `jp_pebble::fragmentation`), it runs
//! the sub-joins on the `jp-par` work-stealing runtime and merges the
//! results, skipping fragment pairs that the assignment proves empty.
//! Work-stealing matters under skew: with the earlier fixed-wave
//! schedule, one oversized `R_i ⋈ S_j` stalled its entire wave, while
//! here idle workers steal the remaining sub-joins and keep every core
//! busy. The result is always identical to the unfragmented join —
//! output order is fixed by a final sort, so it is deterministic for
//! every thread count, and tests and properties enforce it — which is
//! what makes the §5 *cost* question (how few sub-joins can a mapping
//! get away with?) well-posed.

use crate::algorithms::JoinResult;
use crate::predicate::JoinPredicate;
use crate::relation::Relation;

/// Tuple ids in a [`JoinResult`] are `u32`; a relation position beyond
/// that must fail loudly instead of silently wrapping into a colliding
/// id.
fn tuple_id(position: usize) -> u32 {
    u32::try_from(position).expect("relation has more than u32::MAX tuples; tuple ids are u32")
}

/// Executes `R ⋈ S` as a set of per-fragment-pair sub-joins scheduled on
/// the `jp-par` work-stealing runtime with `max_threads` workers.
///
/// `left_frag[i]` / `right_frag[j]` give each tuple's fragment (`0..p`,
/// `0..q`). Only fragment pairs containing at least one candidate tuple
/// pair are scheduled; within a sub-join the predicate is evaluated
/// exhaustively (nested loops — the baseline every sub-join algorithm
/// refines). A skewed fragment pair no longer stalls its peers: workers
/// that finish early steal queued sub-joins. The final sort makes the
/// output independent of the schedule.
///
/// # Panics
/// Panics if the assignment lengths do not match the relations, a
/// fragment id is out of range, or a relation has more than `u32::MAX`
/// tuples (tuple ids in the result are `u32`).
#[allow(clippy::too_many_arguments)] // the plan IS the argument list
pub fn fragmented_join(
    r: &Relation,
    s: &Relation,
    pred: &(dyn JoinPredicate + Sync),
    left_frag: &[u32],
    p: u32,
    right_frag: &[u32],
    q: u32,
    max_threads: usize,
) -> JoinResult {
    let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Relalg);
    assert_eq!(left_frag.len(), r.len(), "left fragment assignment length");
    assert_eq!(
        right_frag.len(),
        s.len(),
        "right fragment assignment length"
    );
    assert!(max_threads > 0, "need at least one thread");
    // Bucket tuple ids by fragment.
    let mut left_buckets: Vec<Vec<u32>> = vec![Vec::new(); p as usize];
    for (i, &f) in left_frag.iter().enumerate() {
        assert!(f < p, "left fragment {f} out of range");
        left_buckets[f as usize].push(tuple_id(i));
    }
    let mut right_buckets: Vec<Vec<u32>> = vec![Vec::new(); q as usize];
    for (j, &f) in right_frag.iter().enumerate() {
        assert!(f < q, "right fragment {f} out of range");
        right_buckets[f as usize].push(tuple_id(j));
    }
    // Schedule the non-empty fragment pairs; idle workers steal.
    let tasks: Vec<(usize, usize)> = (0..p as usize)
        .flat_map(|a| (0..q as usize).map(move |b| (a, b)))
        .filter(|&(a, b)| !left_buckets[a].is_empty() && !right_buckets[b].is_empty())
        .collect();
    let results = jp_par::run_tasks(max_threads, tasks, |_, (a, b)| {
        sub_join(r, s, pred, &left_buckets[a], &right_buckets[b])
    });
    let mut out: JoinResult = results.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

/// One exhaustive sub-join `R_a ⋈ S_b` over the bucketed tuple ids.
fn sub_join(
    r: &Relation,
    s: &Relation,
    pred: &(dyn JoinPredicate + Sync),
    ls: &[u32],
    rs: &[u32],
) -> JoinResult {
    let mut pairs = Vec::new();
    for &i in ls {
        for &j in rs {
            if pred.matches(r.value(i as usize), s.value(j as usize)) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::nested_loops;
    use crate::predicate::{Equality, SetContainment, SpatialOverlap};
    use crate::workload;

    fn round_robin(n: usize, k: u32) -> Vec<u32> {
        (0..n).map(|i| (i as u32) % k).collect()
    }

    #[test]
    fn matches_sequential_equijoin() {
        let (r, s) = workload::zipf_equijoin(120, 100, 15, 0.8, 21);
        let expect = {
            let mut e = nested_loops(&r, &s, &Equality);
            e.sort_unstable();
            e
        };
        for (p, q, threads) in [(1, 1, 1), (3, 2, 2), (4, 4, 8), (7, 5, 3)] {
            let got = fragmented_join(
                &r,
                &s,
                &Equality,
                &round_robin(r.len(), p),
                p,
                &round_robin(s.len(), q),
                q,
                threads,
            );
            assert_eq!(got, expect, "p={p} q={q} threads={threads}");
        }
    }

    #[test]
    fn matches_sequential_containment_and_spatial() {
        let (r, s) = workload::set_workload(60, 50, 300, 2..=5, 6..=12, 0.5, 22);
        let mut expect = nested_loops(&r, &s, &SetContainment);
        expect.sort_unstable();
        let got = fragmented_join(
            &r,
            &s,
            &SetContainment,
            &round_robin(r.len(), 3),
            3,
            &round_robin(s.len(), 3),
            3,
            4,
        );
        assert_eq!(got, expect);

        let r = workload::uniform_rects(80, 1_000, 50, 23);
        let s = workload::uniform_rects(70, 1_000, 50, 24);
        let mut expect = nested_loops(&r, &s, &SpatialOverlap);
        expect.sort_unstable();
        let got = fragmented_join(
            &r,
            &s,
            &SpatialOverlap,
            &round_robin(r.len(), 2),
            2,
            &round_robin(s.len(), 4),
            4,
            4,
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_fragments_are_skipped() {
        let r = Relation::from_ints("R", [1, 2]);
        let s = Relation::from_ints("S", [1, 2]);
        // all left tuples in fragment 0 of 3; fragments 1,2 empty
        let got = fragmented_join(&r, &s, &Equality, &[0, 0], 3, &[0, 1], 2, 2);
        assert_eq!(got, vec![(0, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fragment_id_rejected() {
        let r = Relation::from_ints("R", [1]);
        fragmented_join(&r, &r.clone(), &Equality, &[5], 2, &[0], 1, 1);
    }

    #[test]
    fn component_pack_mapping_executes_correctly() {
        // end-to-end with the §5 solver: pack, then execute the plan
        use jp_graph::quotient;
        let (r, s) = workload::zipf_equijoin(90, 90, 30, 0.5, 25);
        let g = crate::equijoin_graph(&r, &s).unwrap();
        // simple hash fragmentation here (the pebble-side packer is
        // exercised in jp-pebble's tests; relalg must not depend on it)
        let lf = round_robin(r.len(), 4);
        let rf = round_robin(s.len(), 4);
        let got = fragmented_join(&r, &s, &Equality, &lf, 4, &rf, 4, 4);
        assert_eq!(got, g.edges().to_vec());
        // investigated pairs = edges of the quotient graph
        let pq = quotient(&g, &lf, 4, &rf, 4);
        assert!(pq.edge_count() <= 16);
    }
}

/// Executes only the given fragment pairs — the §5 plan executor: when
/// the mapping was planned against the true join graph, the investigated
/// pairs (`FragmentMapping::investigated` on the pebble side, or the
/// quotient graph's edges) are exactly the sub-joins that can produce
/// output, and every other pair may be skipped safely.
///
/// # Panics
/// As [`fragmented_join`], plus if a pair references an out-of-range
/// fragment.
#[allow(clippy::too_many_arguments)] // the plan IS the argument list
pub fn fragmented_join_pairs(
    r: &Relation,
    s: &Relation,
    pred: &(dyn JoinPredicate + Sync),
    left_frag: &[u32],
    p: u32,
    right_frag: &[u32],
    q: u32,
    pairs: &[(u32, u32)],
    max_threads: usize,
) -> JoinResult {
    assert_eq!(left_frag.len(), r.len(), "left fragment assignment length");
    assert_eq!(
        right_frag.len(),
        s.len(),
        "right fragment assignment length"
    );
    assert!(max_threads > 0, "need at least one thread");
    let mut left_buckets: Vec<Vec<u32>> = vec![Vec::new(); p as usize];
    for (i, &f) in left_frag.iter().enumerate() {
        assert!(f < p, "left fragment {f} out of range");
        left_buckets[f as usize].push(tuple_id(i));
    }
    let mut right_buckets: Vec<Vec<u32>> = vec![Vec::new(); q as usize];
    for (j, &f) in right_frag.iter().enumerate() {
        assert!(f < q, "right fragment {f} out of range");
        right_buckets[f as usize].push(tuple_id(j));
    }
    for &(a, b) in pairs {
        assert!(a < p && b < q, "pair ({a}, {b}) out of range");
    }
    let results = jp_par::run_tasks(max_threads, pairs.to_vec(), |_, (a, b)| {
        sub_join(
            r,
            s,
            pred,
            &left_buckets[a as usize],
            &right_buckets[b as usize],
        )
    });
    let mut out: JoinResult = results.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod pair_tests {
    use super::*;
    use crate::predicate::Equality;
    use crate::workload;
    use jp_graph::quotient;

    #[test]
    fn investigated_pairs_suffice() {
        // plan against the true join graph, then execute only its pairs
        let (r, s) = workload::zipf_equijoin(80, 80, 25, 0.6, 61);
        let g = crate::equijoin_graph(&r, &s).unwrap();
        let lf: Vec<u32> = (0..r.len()).map(|i| (i % 3) as u32).collect();
        let rf: Vec<u32> = (0..s.len()).map(|i| (i % 3) as u32).collect();
        let investigated = quotient(&g, &lf, 3, &rf, 3).edges().to_vec();
        let got = fragmented_join_pairs(&r, &s, &Equality, &lf, 3, &rf, 3, &investigated, 3);
        assert_eq!(got, g.edges().to_vec());
        // fewer pairs than the full grid when the mapping is any good
        assert!(investigated.len() <= 9);
    }

    #[test]
    fn missing_pairs_miss_results() {
        // dropping an investigated pair loses exactly its sub-join output
        let r = Relation::from_ints("R", [1, 2]);
        let s = Relation::from_ints("S", [1, 2]);
        let lf = [0u32, 1];
        let rf = [0u32, 1];
        let all = fragmented_join_pairs(&r, &s, &Equality, &lf, 2, &rf, 2, &[(0, 0), (1, 1)], 2);
        assert_eq!(all, vec![(0, 0), (1, 1)]);
        let partial = fragmented_join_pairs(&r, &s, &Equality, &lf, 2, &rf, 2, &[(0, 0)], 2);
        assert_eq!(partial, vec![(0, 0)]);
    }
}
