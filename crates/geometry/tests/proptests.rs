//! Property-based tests for the spatial substrate: every accelerated
//! structure must agree with the naive predicate.

use jp_geometry::{grid, sweep, ConvexPolygon, Point, RTree, Rect, Region};
use proptest::prelude::*;

fn rect() -> impl Strategy<Value = Rect> {
    (-500i64..500, -500i64..500, 0i64..80, 0i64..80)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn rects(n: usize) -> impl Strategy<Value = Vec<(Rect, u32)>> {
    proptest::collection::vec(rect(), 0..n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, r)| (r, i as u32))
            .collect()
    })
}

fn region() -> impl Strategy<Value = Region> {
    proptest::collection::vec(rect(), 1..4).prop_map(Region::new)
}

fn naive_pairs(a: &[(Rect, u32)], b: &[(Rect, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (ra, ia) in a {
        for (rb, ib) in b {
            if ra.intersects(rb) {
                out.push((*ia, *ib));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #[test]
    fn rect_intersection_consistent(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.intersects(&b));
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
            }
            None => prop_assert!(!a.intersects(&b)),
        }
    }

    #[test]
    fn union_contains_both(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn sweep_equals_naive(a in rects(30), b in rects(30)) {
        let mut got = Vec::new();
        sweep::sweep_join(&a, &b, |x, y| got.push((x, y)));
        got.sort_unstable();
        prop_assert_eq!(got, naive_pairs(&a, &b));
    }

    #[test]
    fn grid_equals_naive(a in rects(30), b in rects(30)) {
        let mut got = Vec::new();
        grid::grid_join(&a, &b, |x, y| got.push((x, y)));
        got.sort_unstable();
        prop_assert_eq!(got, naive_pairs(&a, &b));
    }

    #[test]
    fn rtree_join_equals_naive(a in rects(30), b in rects(30)) {
        let ta = RTree::build(&a);
        let tb = RTree::build(&b);
        let mut got = Vec::new();
        ta.join(&tb, |x, y| got.push((x, y)));
        got.sort_unstable();
        prop_assert_eq!(got, naive_pairs(&a, &b));
    }

    #[test]
    fn rtree_query_equals_filter(entries in rects(40), q in rect()) {
        let t = RTree::build(&entries);
        let mut got = t.query(&q);
        got.sort_unstable();
        let mut expect: Vec<u32> = entries
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn region_overlap_symmetric_and_mbr_sound(a in region(), b in region()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        // region overlap implies MBR overlap (filter step never misses)
        if a.intersects(&b) {
            prop_assert!(a.mbr().intersects(&b.mbr()));
        }
    }

    #[test]
    fn region_translate_invariance(a in region(), b in region(), dx in -50i64..50, dy in -50i64..50) {
        prop_assert_eq!(
            a.intersects(&b),
            a.translate(dx, dy).intersects(&b.translate(dx, dy))
        );
    }

    #[test]
    fn polygon_rect_overlap_agrees(a in rect(), b in rect()) {
        // only non-degenerate rects are polygons
        if a.width() > 0 && a.height() > 0 && b.width() > 0 && b.height() > 0 {
            let pa = ConvexPolygon::from_rect(a);
            let pb = ConvexPolygon::from_rect(b);
            prop_assert_eq!(pa.intersects(&pb), a.intersects(&b));
        }
    }

    #[test]
    fn polygon_contains_its_vertices(a in rect()) {
        if a.width() > 0 && a.height() > 0 {
            let p = ConvexPolygon::from_rect(a);
            for &v in p.vertices() {
                prop_assert!(p.contains_point(v));
            }
            prop_assert!(p.contains_point(Point::new(
                a.min.x + a.width() / 2,
                a.min.y + a.height() / 2
            )));
        }
    }
}
