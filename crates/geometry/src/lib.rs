#![forbid(unsafe_code)]
//! Spatial substrate for the reproduction of *On the Complexity of Join
//! Predicates* (PODS 2001).
//!
//! The paper's spatial-overlap join predicate is "the polygon in `r.A`
//! overlaps the polygon in `s.B`". This crate supplies the geometric
//! machinery the spatial join algorithms need:
//!
//! * [`Point`], [`Rect`] — integer-coordinate primitives (closed axis-
//!   aligned rectangles; integer coordinates keep every predicate exact).
//!   **Coordinate contract:** spans must fit in `i64` — keep coordinates
//!   within `±2⁶²` so widths, heights, and interval differences never
//!   overflow (predicates like [`Rect::intersects`] are overflow-free,
//!   but measures such as [`Rect::width`] and [`Region::area`] subtract
//!   coordinates in `i64` first);
//! * [`Region`] — rectilinear regions (finite unions of rectangles), the
//!   polygon stand-in documented in `DESIGN.md`: rectangles realize the
//!   worst-case family of Lemma 3.4 and comb-shaped regions realize *any*
//!   bipartite join graph spatially;
//! * [`ConvexPolygon`] — convex polygons with an exact separating-axis
//!   overlap test, honouring the paper's "polygons over some coordinate
//!   system";
//! * [`RTree`] — an STR bulk-loaded R-tree with range queries and a
//!   synchronized-traversal join;
//! * [`sweep`] — plane-sweep rectangle intersection;
//! * [`grid`] — uniform-grid (PBSM-style) partitioned intersection with
//!   duplicate avoidance.

pub mod grid;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod region;
pub mod rtree;
pub mod sweep;

pub use point::Point;
pub use polygon::ConvexPolygon;
pub use rect::Rect;
pub use region::Region;
pub use rtree::RTree;
