//! Closed axis-aligned rectangles.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed axis-aligned rectangle `[x_min, x_max] × [y_min, y_max]`.
///
/// Rectangles are *closed*: two rectangles sharing only a boundary point
/// overlap. This matches the usual spatial-join convention (filter step on
/// minimum bounding rectangles must never miss a refinement hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Builds a rectangle from corner coordinates.
    ///
    /// # Panics
    /// Panics if `x_min > x_max` or `y_min > y_max`.
    pub fn new(x_min: i64, y_min: i64, x_max: i64, y_max: i64) -> Self {
        assert!(x_min <= x_max, "x_min {x_min} > x_max {x_max}");
        assert!(y_min <= y_max, "y_min {y_min} > y_max {y_max}");
        Rect {
            min: Point::new(x_min, y_min),
            max: Point::new(x_max, y_max),
        }
    }

    /// A degenerate rectangle covering a single point.
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Width along x (0 for a degenerate rectangle).
    pub fn width(&self) -> i64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> i64 {
        self.max.y - self.min.y
    }

    /// Area, computed in `i128` to avoid overflow.
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Closed-overlap test: true when the rectangles share at least one
    /// point (touching boundaries count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection rectangle, if the rectangles overlap.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.min.x.max(other.min.x),
            self.min.y.max(other.min.y),
            self.max.x.min(other.max.x),
            self.max.y.min(other.max.y),
        ))
    }

    /// Whether `self` fully contains `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Whether the (closed) rectangle contains a point.
    pub fn contains_point(&self, p: Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.min.x.min(other.min.x),
            self.min.y.min(other.min.y),
            self.max.x.max(other.max.x),
            self.max.y.max(other.max.y),
        )
    }

    /// Bounding box of a non-empty rectangle slice.
    pub fn bounding(rects: &[Rect]) -> Option<Rect> {
        let (first, rest) = rects.split_first()?;
        Some(rest.iter().fold(*first, |acc, r| acc.union(r)))
    }

    /// Centre point with truncating division (used only for space-driven
    /// partitioning heuristics, never for predicates).
    pub fn center(&self) -> Point {
        Point::new(
            self.min.x + self.width() / 2,
            self.min.y + self.height() / 2,
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}]×[{}..{}]",
            self.min.x, self.max.x, self.min.y, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = Rect::new(0, 1, 4, 7);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 6);
        assert_eq!(r.area(), 24);
        assert_eq!(r.center(), Point::new(2, 4));
    }

    #[test]
    #[should_panic(expected = "x_min")]
    fn rejects_inverted() {
        Rect::new(5, 0, 0, 5);
    }

    #[test]
    fn overlap_cases() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.intersects(&Rect::new(5, 5, 15, 15))); // proper overlap
        assert!(a.intersects(&Rect::new(10, 0, 20, 10))); // shared edge
        assert!(a.intersects(&Rect::new(10, 10, 20, 20))); // shared corner
        assert!(a.intersects(&Rect::new(2, 2, 3, 3))); // containment
        assert!(!a.intersects(&Rect::new(11, 0, 20, 10))); // disjoint in x
        assert!(!a.intersects(&Rect::new(0, 11, 10, 20))); // disjoint in y
    }

    #[test]
    fn intersection_geometry() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, -5, 15, 5);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 0, 10, 5)));
        assert_eq!(a.intersection(&Rect::new(20, 20, 30, 30)), None);
        // intersection is symmetric
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn containment() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.contains_rect(&Rect::new(2, 2, 8, 8)));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&Rect::new(2, 2, 11, 8)));
        assert!(a.contains_point(Point::new(0, 10)));
        assert!(!a.contains_point(Point::new(-1, 5)));
    }

    #[test]
    fn union_and_bounding() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(5, -2, 6, 0);
        assert_eq!(a.union(&b), Rect::new(0, -2, 6, 1));
        assert_eq!(Rect::bounding(&[a, b]), Some(Rect::new(0, -2, 6, 1)));
        assert_eq!(Rect::bounding(&[]), None);
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Rect::point(Point::new(3, 3));
        assert_eq!(p.area(), 0);
        assert!(p.intersects(&Rect::new(3, 3, 5, 5)));
        assert!(!p.intersects(&Rect::new(4, 4, 5, 5)));
    }
}
