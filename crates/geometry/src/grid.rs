//! Uniform-grid partitioned rectangle join (PBSM-style).
//!
//! Partition-Based Spatial-Merge join (Patel & DeWitt, cited as \[13\] in
//! the paper) overlays a uniform grid, replicates each rectangle into
//! every cell it intersects, and joins cell-by-cell. Replication would
//! report a pair once per shared cell; the standard *reference-point*
//! trick deduplicates for free: a pair is reported only in the cell
//! containing the top-left corner of its intersection rectangle.

use crate::rect::Rect;
use std::collections::HashMap;

/// A uniform grid over a bounding universe.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    universe: Rect,
    cells_x: i64,
    cells_y: i64,
    cell_w: i64,
    cell_h: i64,
}

impl UniformGrid {
    /// Builds a `cells_x × cells_y` grid covering `universe`.
    ///
    /// # Panics
    /// Panics if either cell count is zero or the universe is degenerate.
    pub fn new(universe: Rect, cells_x: i64, cells_y: i64) -> Self {
        assert!(cells_x > 0 && cells_y > 0, "cell counts must be positive");
        assert!(
            universe.width() > 0 && universe.height() > 0,
            "universe must have positive area"
        );
        // Ceiling division; all quantities are positive here (signed
        // `div_ceil` is not yet stable).
        let ceil_div = |a: i64, b: i64| (a + b - 1) / b;
        UniformGrid {
            universe,
            cells_x,
            cells_y,
            cell_w: ceil_div(universe.width(), cells_x),
            cell_h: ceil_div(universe.height(), cells_y),
        }
    }

    /// The cell coordinates containing a point, clamped to the grid (so
    /// rectangles sticking out of the universe still land in edge cells).
    fn cell_of(&self, x: i64, y: i64) -> (i64, i64) {
        let cx = ((x - self.universe.min.x) / self.cell_w).clamp(0, self.cells_x - 1);
        let cy = ((y - self.universe.min.y) / self.cell_h).clamp(0, self.cells_y - 1);
        (cx, cy)
    }

    /// Range of cells a rectangle overlaps.
    fn cell_range(&self, r: &Rect) -> (i64, i64, i64, i64) {
        let (x0, y0) = self.cell_of(r.min.x, r.min.y);
        let (x1, y1) = self.cell_of(r.max.x, r.max.y);
        (x0, y0, x1, y1)
    }
}

/// Joins two rectangle sets over a uniform grid, reporting every
/// intersecting pair exactly once via `f`. The grid resolution is chosen
/// as `⌈√(max(|a|,|b|))⌉` per axis over the union bounding box.
pub fn grid_join(a: &[(Rect, u32)], b: &[(Rect, u32)], mut f: impl FnMut(u32, u32)) {
    let Some(bb_a) = Rect::bounding(&a.iter().map(|(r, _)| *r).collect::<Vec<_>>()) else {
        return;
    };
    let Some(bb_b) = Rect::bounding(&b.iter().map(|(r, _)| *r).collect::<Vec<_>>()) else {
        return;
    };
    let universe = bb_a.union(&bb_b);
    if universe.width() == 0 || universe.height() == 0 {
        // Degenerate universe (all rects on a line): fall back to a sweep.
        crate::sweep::sweep_join(a, b, f);
        return;
    }
    let cells = (a.len().max(b.len()) as f64).sqrt().ceil().max(1.0) as i64;
    grid_join_with(&UniformGrid::new(universe, cells, cells), a, b, &mut f);
}

/// Grid join with an explicit grid (exposed for tuning experiments).
pub fn grid_join_with(
    grid: &UniformGrid,
    a: &[(Rect, u32)],
    b: &[(Rect, u32)],
    f: &mut impl FnMut(u32, u32),
) {
    // Bucket B's rectangles by cell.
    let mut buckets: HashMap<(i64, i64), Vec<(Rect, u32)>> = HashMap::new();
    for &(r, id) in b {
        let (x0, y0, x1, y1) = grid.cell_range(&r);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                buckets.entry((cx, cy)).or_default().push((r, id));
            }
        }
    }
    // Probe with A, deduplicating via the reference point of the
    // intersection.
    for &(ra, ia) in a {
        let (x0, y0, x1, y1) = grid.cell_range(&ra);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                let Some(bucket) = buckets.get(&(cx, cy)) else {
                    continue;
                };
                for &(rb, ib) in bucket {
                    let Some(ix) = ra.intersection(&rb) else {
                        continue;
                    };
                    // Report only in the cell owning the intersection's
                    // lower-left corner.
                    if grid.cell_of(ix.min.x, ix.min.y) == (cx, cy) {
                        f(ia, ib);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[(Rect, u32)], b: &[(Rect, u32)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (ra, ia) in a {
            for (rb, ib) in b {
                if ra.intersects(rb) {
                    out.push((*ia, *ib));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn collect_grid(a: &[(Rect, u32)], b: &[(Rect, u32)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        grid_join(a, b, |x, y| out.push((x, y)));
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_inputs() {
        let r = [(Rect::new(0, 0, 1, 1), 0u32)];
        assert!(collect_grid(&[], &r).is_empty());
        assert!(collect_grid(&r, &[]).is_empty());
    }

    #[test]
    fn pairs_reported_exactly_once_despite_replication() {
        // One huge rectangle spanning many cells against many small ones.
        let a = [(Rect::new(0, 0, 1000, 1000), 0)];
        let b: Vec<(Rect, u32)> = (0..50)
            .map(|i| {
                (
                    Rect::new(i * 20, i * 20, i * 20 + 10, i * 20 + 10),
                    i as u32,
                )
            })
            .collect();
        let got = collect_grid(&a, &b);
        assert_eq!(got, naive(&a, &b));
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn matches_naive_on_scattered_rects() {
        let mk = |set: u64, n: u64| -> Vec<(Rect, u32)> {
            (0..n)
                .map(|i| {
                    let h = i
                        .wrapping_mul(0x9e3779b97f4a7c15)
                        .wrapping_add(set.wrapping_mul(0xd1b54a32d192ed03))
                        .rotate_left(23);
                    let x = (h % 500) as i64;
                    let y = ((h >> 9) % 500) as i64;
                    let w = ((h >> 18) % 60) as i64;
                    let hh = ((h >> 27) % 60) as i64;
                    (Rect::new(x, y, x + w, y + hh), i as u32)
                })
                .collect()
        };
        let a = mk(7, 120);
        let b = mk(13, 90);
        assert_eq!(collect_grid(&a, &b), naive(&a, &b));
    }

    #[test]
    fn degenerate_universe_falls_back() {
        // All rectangles on the line y = 0 with zero height.
        let a = [(Rect::new(0, 0, 10, 0), 0), (Rect::new(20, 0, 30, 0), 1)];
        let b = [(Rect::new(5, 0, 25, 0), 0)];
        assert_eq!(collect_grid(&a, &b), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn explicit_grid_resolution_sanity() {
        let universe = Rect::new(0, 0, 100, 100);
        let grid = UniformGrid::new(universe, 4, 4);
        let a = [(Rect::new(0, 0, 99, 99), 0)];
        let b = [(Rect::new(98, 98, 99, 99), 1)];
        let mut out = Vec::new();
        grid_join_with(&grid, &a, &b, &mut |x, y| out.push((x, y)));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cells_rejected() {
        UniformGrid::new(Rect::new(0, 0, 10, 10), 0, 4);
    }
}
