//! Plane-sweep rectangle intersection between two sets.
//!
//! The classical sort–sweep spatial join filter step: sort both sets by
//! `x_min`, sweep a vertical line left to right, keep per-set active lists
//! of rectangles whose x-interval covers the line, and test each newly
//! opened rectangle against the *other* set's active list on the y-axis.
//! Expired rectangles (those with `x_max` behind the sweep line) are
//! removed lazily when scanned.
//!
//! Complexity `O(n log n + k·ā)` where `ā` is the mean active-list length —
//! the standard behaviour the paper's spatial-join citations (\[3\], \[13\])
//! build on.

use crate::rect::Rect;

/// Reports every intersecting pair `(a_id, b_id)` between the two sets,
/// exactly once, via `f`.
pub fn sweep_join(a: &[(Rect, u32)], b: &[(Rect, u32)], mut f: impl FnMut(u32, u32)) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let mut ea: Vec<(Rect, u32)> = a.to_vec();
    let mut eb: Vec<(Rect, u32)> = b.to_vec();
    ea.sort_by_key(|(r, _)| r.min.x);
    eb.sort_by_key(|(r, _)| r.min.x);
    let mut active_a: Vec<(Rect, u32)> = Vec::new();
    let mut active_b: Vec<(Rect, u32)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() || j < eb.len() {
        // Open next rectangle in x order; ties broken toward A (arbitrary
        // but deterministic; correctness does not depend on tie order
        // because closed rectangles meeting exactly at the line still have
        // overlapping x-intervals).
        let take_a = j >= eb.len() || (i < ea.len() && ea[i].0.min.x <= eb[j].0.min.x);
        if take_a {
            let (r, id) = ea[i];
            i += 1;
            // Expire then scan the other side's active list.
            active_b.retain(|(rb, _)| rb.max.x >= r.min.x);
            for &(rb, idb) in &active_b {
                if r.min.y <= rb.max.y && rb.min.y <= r.max.y {
                    f(id, idb);
                }
            }
            active_a.push((r, id));
        } else {
            let (r, id) = eb[j];
            j += 1;
            active_a.retain(|(ra, _)| ra.max.x >= r.min.x);
            for &(ra, ida) in &active_a {
                if r.min.y <= ra.max.y && ra.min.y <= r.max.y {
                    f(ida, id);
                }
            }
            active_b.push((r, id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[(Rect, u32)], b: &[(Rect, u32)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (ra, ia) in a {
            for (rb, ib) in b {
                if ra.intersects(rb) {
                    out.push((*ia, *ib));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn collect_sweep(a: &[(Rect, u32)], b: &[(Rect, u32)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        sweep_join(a, b, |x, y| out.push((x, y)));
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_inputs() {
        let r = [(Rect::new(0, 0, 1, 1), 0u32)];
        assert!(collect_sweep(&[], &r).is_empty());
        assert!(collect_sweep(&r, &[]).is_empty());
    }

    #[test]
    fn basic_overlaps() {
        let a = [(Rect::new(0, 0, 10, 10), 0), (Rect::new(20, 0, 30, 10), 1)];
        let b = [
            (Rect::new(5, 5, 25, 6), 0),
            (Rect::new(100, 100, 101, 101), 1),
        ];
        assert_eq!(collect_sweep(&a, &b), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn touching_edges_count() {
        let a = [(Rect::new(0, 0, 10, 10), 0)];
        let b = [(Rect::new(10, 10, 20, 20), 1)]; // shares corner (10,10)
        assert_eq!(collect_sweep(&a, &b), vec![(0, 1)]);
    }

    #[test]
    fn matches_naive_on_random_grid() {
        // Deterministic pseudo-random rectangles without a RNG dependency:
        // hash-like scatter via multiplicative mixing.
        let mk = |set: u64| -> Vec<(Rect, u32)> {
            (0..80u64)
                .map(|i| {
                    let h = (i.wrapping_mul(0x9e3779b97f4a7c15)
                        ^ set.wrapping_mul(0xbf58476d1ce4e5b9))
                    .rotate_left(17);
                    let x = (h % 200) as i64;
                    let y = ((h >> 8) % 200) as i64;
                    let w = ((h >> 16) % 30) as i64 + 1;
                    let hgt = ((h >> 24) % 30) as i64 + 1;
                    (Rect::new(x, y, x + w, y + hgt), i as u32)
                })
                .collect()
        };
        let a = mk(1);
        let b = mk(2);
        assert_eq!(collect_sweep(&a, &b), naive(&a, &b));
    }

    #[test]
    fn reports_each_pair_once() {
        let a = [(Rect::new(0, 0, 100, 100), 7)];
        let b = [(Rect::new(10, 10, 20, 20), 3)];
        let mut count = 0;
        sweep_join(&a, &b, |x, y| {
            assert_eq!((x, y), (7, 3));
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn identical_x_starts() {
        // Many rectangles opening at the same x coordinate.
        let a: Vec<(Rect, u32)> = (0..10)
            .map(|i| (Rect::new(0, i * 10, 5, i * 10 + 5), i as u32))
            .collect();
        let b: Vec<(Rect, u32)> = (0..10)
            .map(|i| (Rect::new(0, i * 10 + 3, 5, i * 10 + 8), i as u32))
            .collect();
        assert_eq!(collect_sweep(&a, &b), naive(&a, &b));
    }
}
