//! Rectilinear regions — finite unions of rectangles.
//!
//! This is the crate's polygon stand-in (see DESIGN.md §1): every
//! rectilinear polygon is a finite union of rectangles, and unions of
//! rectangles are closed under the constructions the paper needs. In
//! particular the comb-shaped regions built by
//! `jp_relalg::realize::spatial_universal` show that *every* bipartite
//! graph is the join graph of a spatial-overlap join over such regions —
//! the spatial analogue of the paper's Lemma 3.3 universality argument,
//! and a strengthening of Lemma 3.4 (which only needs plain rectangles).

use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A region of the plane given as a finite union of closed rectangles.
/// The rectangles may overlap each other; the region is their union.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// Region consisting of a single rectangle.
    pub fn rect(r: Rect) -> Self {
        Region { rects: vec![r] }
    }

    /// Region from a list of rectangles.
    ///
    /// # Panics
    /// Panics if the list is empty — an empty region never overlaps
    /// anything and would silently disappear from every join graph.
    pub fn new(rects: Vec<Rect>) -> Self {
        assert!(!rects.is_empty(), "a region needs at least one rectangle");
        Region { rects }
    }

    /// The constituent rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of constituent rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Never true (regions are non-empty by construction), provided for
    /// clippy-idiomatic pairing with [`Region::len`].
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Minimum bounding rectangle of the region — the filter-step geometry
    /// every spatial join algorithm indexes.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(&self.rects).expect("regions are non-empty")
    }

    /// Exact overlap test: true iff some rectangle of `self` intersects
    /// some rectangle of `other`. This is the refinement step of the
    /// filter-and-refine spatial join.
    pub fn intersects(&self, other: &Region) -> bool {
        // Cheap reject on MBRs first (the common case in joins is "no").
        if !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        self.rects
            .iter()
            .any(|a| other.rects.iter().any(|b| a.intersects(b)))
    }

    /// Translates the region by `(dx, dy)`.
    pub fn translate(&self, dx: i64, dy: i64) -> Region {
        Region {
            rects: self
                .rects
                .iter()
                .map(|r| Rect::new(r.min.x + dx, r.min.y + dy, r.max.x + dx, r.max.y + dy))
                .collect(),
        }
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::rect(r)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region({} rects, mbr {})", self.rects.len(), self.mbr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Region {
        // An L: vertical bar + horizontal foot.
        Region::new(vec![Rect::new(0, 0, 2, 10), Rect::new(0, 0, 10, 2)])
    }

    #[test]
    #[should_panic(expected = "at least one rectangle")]
    fn empty_region_rejected() {
        Region::new(vec![]);
    }

    #[test]
    fn mbr_covers_all_parts() {
        assert_eq!(l_shape().mbr(), Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn mbr_overlap_without_region_overlap() {
        // A square sitting inside the L's bounding box but outside the L
        // itself: the filter step would pass it, refinement must reject.
        let l = l_shape();
        let hole = Region::rect(Rect::new(5, 5, 9, 9));
        assert!(l.mbr().intersects(&hole.mbr()));
        assert!(!l.intersects(&hole));
    }

    #[test]
    fn region_overlap_cases() {
        let l = l_shape();
        assert!(l.intersects(&Region::rect(Rect::new(1, 5, 1, 5)))); // in the bar
        assert!(l.intersects(&Region::rect(Rect::new(8, 0, 12, 1)))); // in the foot
        assert!(l.intersects(&l)); // self overlap
        assert!(!l.intersects(&Region::rect(Rect::new(20, 20, 30, 30))));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = l_shape();
        let b = Region::rect(Rect::new(5, 5, 9, 9));
        let c = Region::rect(Rect::new(1, 1, 3, 3));
        assert_eq!(a.intersects(&b), b.intersects(&a));
        assert_eq!(a.intersects(&c), c.intersects(&a));
    }

    #[test]
    fn translation_preserves_shape() {
        let l = l_shape().translate(100, -50);
        assert_eq!(l.mbr(), Rect::new(100, -50, 110, -40));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn from_rect() {
        let r: Region = Rect::new(0, 0, 1, 1).into();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}

impl Region {
    /// Exact area of the region (the measure of the union — overlapping
    /// constituent rectangles are not double-counted). Coordinate-
    /// compression sweep: `O(k² log k)` for `k` rectangles.
    pub fn area(&self) -> i128 {
        // gather and sort distinct x coordinates
        let mut xs: Vec<i64> = self.rects.iter().flat_map(|r| [r.min.x, r.max.x]).collect();
        xs.sort_unstable();
        xs.dedup();
        let mut total: i128 = 0;
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            if x0 == x1 {
                continue;
            }
            // y-intervals of rects spanning this x slab, merged
            let mut ys: Vec<(i64, i64)> = self
                .rects
                .iter()
                .filter(|r| r.min.x <= x0 && r.max.x >= x1)
                .map(|r| (r.min.y, r.max.y))
                .collect();
            ys.sort_unstable();
            let mut covered: i128 = 0;
            let mut cur: Option<(i64, i64)> = None;
            for (lo, hi) in ys {
                match cur {
                    None => cur = Some((lo, hi)),
                    Some((clo, chi)) => {
                        if lo <= chi {
                            cur = Some((clo, chi.max(hi)));
                        } else {
                            covered += (chi - clo) as i128;
                            cur = Some((lo, hi));
                        }
                    }
                }
            }
            if let Some((clo, chi)) = cur {
                covered += (chi - clo) as i128;
            }
            total += covered * (x1 - x0) as i128;
        }
        total
    }
}

#[cfg(test)]
mod area_tests {
    use super::*;

    #[test]
    fn single_rect_area() {
        assert_eq!(Region::rect(Rect::new(0, 0, 4, 3)).area(), 12);
        assert_eq!(Region::rect(Rect::new(5, 5, 5, 9)).area(), 0); // degenerate
    }

    #[test]
    fn overlapping_rects_not_double_counted() {
        let r = Region::new(vec![Rect::new(0, 0, 4, 4), Rect::new(2, 2, 6, 6)]);
        // 16 + 16 − 4 overlap
        assert_eq!(r.area(), 28);
        // identical duplicates collapse entirely
        let d = Region::new(vec![Rect::new(0, 0, 3, 3), Rect::new(0, 0, 3, 3)]);
        assert_eq!(d.area(), 9);
    }

    #[test]
    fn disjoint_rects_sum() {
        let r = Region::new(vec![Rect::new(0, 0, 2, 2), Rect::new(10, 10, 13, 12)]);
        assert_eq!(r.area(), 4 + 6);
    }

    #[test]
    fn l_shape_area() {
        // vertical 2×10 bar + horizontal 10×2 foot, overlapping in 2×2
        let l = Region::new(vec![Rect::new(0, 0, 2, 10), Rect::new(0, 0, 10, 2)]);
        assert_eq!(l.area(), 20 + 20 - 4);
    }
}
