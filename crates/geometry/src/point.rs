//! Integer 2-D points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point with `i64` coordinates. Integer coordinates keep every overlap
/// predicate in the crate exact (no epsilon comparisons anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i64,
    /// Vertical coordinate.
    pub y: i64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Cross product of `(b − self)` and `(c − self)`: positive when
    /// `a→b→c` turns left, negative when right, zero when collinear.
    /// Computed in `i128` to avoid overflow on large coordinates.
    pub fn cross(self, b: Point, c: Point) -> i128 {
        let abx = (b.x - self.x) as i128;
        let aby = (b.y - self.y) as i128;
        let acx = (c.x - self.x) as i128;
        let acy = (c.y - self.y) as i128;
        abx * acy - aby * acx
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_orientation() {
        let a = Point::new(0, 0);
        let b = Point::new(1, 0);
        assert!(a.cross(b, Point::new(1, 1)) > 0); // left turn
        assert!(a.cross(b, Point::new(1, -1)) < 0); // right turn
        assert_eq!(a.cross(b, Point::new(2, 0)), 0); // collinear
    }

    #[test]
    fn cross_no_overflow_on_extremes() {
        let a = Point::new(i64::MIN / 4, i64::MIN / 4);
        let b = Point::new(i64::MAX / 4, 0);
        let c = Point::new(0, i64::MAX / 4);
        // Just checking it does not panic and has the right sign.
        assert!(a.cross(b, c) > 0);
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(-3, 9).to_string(), "(-3, 9)");
    }
}
