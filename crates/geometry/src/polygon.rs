//! Convex polygons with an exact separating-axis overlap test.
//!
//! Kept to honour the paper's framing ("the elements of the domain are
//! typically polygons over some coordinate system"). The join algorithms
//! themselves operate on [`crate::Region`]s; convex polygons are converted
//! through [`ConvexPolygon::mbr`] for indexing and compared exactly here
//! for refinement.

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A convex polygon given by its vertices in counter-clockwise order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Builds a convex polygon from CCW vertices.
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are given, if the vertices are not
    /// in strictly convex CCW position (collinear triples are rejected to
    /// keep the representation canonical), or on repeated vertices.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            assert!(
                a.cross(b, c) > 0,
                "vertices must be in strictly convex CCW order (violated at index {i})"
            );
        }
        ConvexPolygon { vertices }
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_rect(r: Rect) -> Self {
        assert!(
            r.width() > 0 && r.height() > 0,
            "degenerate rect is not a polygon"
        );
        ConvexPolygon::new(vec![
            r.min,
            Point::new(r.max.x, r.min.y),
            r.max,
            Point::new(r.min.x, r.max.y),
        ])
    }

    /// The vertices, CCW.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        let xs: Vec<i64> = self.vertices.iter().map(|p| p.x).collect();
        let ys: Vec<i64> = self.vertices.iter().map(|p| p.y).collect();
        Rect::new(
            *xs.iter().min().unwrap(),
            *ys.iter().min().unwrap(),
            *xs.iter().max().unwrap(),
            *ys.iter().max().unwrap(),
        )
    }

    /// Whether the (closed) polygon contains a point.
    pub fn contains_point(&self, p: Point) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            a.cross(b, p) >= 0
        })
    }

    /// Exact closed-overlap test via the separating-axis theorem: two
    /// convex polygons are disjoint iff some edge normal of one strictly
    /// separates them. Touching polygons count as overlapping.
    pub fn intersects(&self, other: &ConvexPolygon) -> bool {
        !self.separates(other) && !other.separates(self)
    }

    /// True if some edge of `self` strictly separates `other` from `self`.
    fn separates(&self, other: &ConvexPolygon) -> bool {
        let n = self.vertices.len();
        (0..n).any(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // All of `other` strictly right of directed edge a->b?
            other.vertices.iter().all(|&p| a.cross(b, p) < 0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConvexPolygon {
        ConvexPolygon::new(vec![Point::new(0, 0), Point::new(10, 0), Point::new(0, 10)])
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_vertices() {
        ConvexPolygon::new(vec![Point::new(0, 0), Point::new(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "CCW")]
    fn clockwise_rejected() {
        ConvexPolygon::new(vec![Point::new(0, 0), Point::new(0, 10), Point::new(10, 0)]);
    }

    #[test]
    #[should_panic(expected = "CCW")]
    fn collinear_rejected() {
        ConvexPolygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(10, 0),
            Point::new(0, 10),
        ]);
    }

    #[test]
    fn from_rect_roundtrip() {
        let p = ConvexPolygon::from_rect(Rect::new(1, 2, 5, 9));
        assert_eq!(p.mbr(), Rect::new(1, 2, 5, 9));
        assert_eq!(p.vertices().len(), 4);
    }

    #[test]
    fn point_containment() {
        let t = triangle();
        assert!(t.contains_point(Point::new(1, 1)));
        assert!(t.contains_point(Point::new(0, 0))); // vertex
        assert!(t.contains_point(Point::new(5, 0))); // edge
        assert!(!t.contains_point(Point::new(6, 6))); // beyond hypotenuse
        assert!(!t.contains_point(Point::new(-1, 0)));
    }

    #[test]
    fn overlap_basic() {
        let t = triangle();
        let far = ConvexPolygon::from_rect(Rect::new(20, 20, 30, 30));
        assert!(!t.intersects(&far));
        let inside = ConvexPolygon::from_rect(Rect::new(1, 1, 2, 2));
        assert!(t.intersects(&inside));
        assert!(inside.intersects(&t));
        assert!(t.intersects(&t));
    }

    #[test]
    fn overlap_without_vertex_containment() {
        // A plus-sign configuration: neither polygon contains a vertex of
        // the other, yet they overlap. The SAT test must catch this.
        let horizontal = ConvexPolygon::from_rect(Rect::new(-10, -1, 10, 1));
        let vertical = ConvexPolygon::from_rect(Rect::new(-1, -10, 1, 10));
        assert!(horizontal.intersects(&vertical));
    }

    #[test]
    fn touching_counts_as_overlap() {
        let a = ConvexPolygon::from_rect(Rect::new(0, 0, 5, 5));
        let b = ConvexPolygon::from_rect(Rect::new(5, 0, 10, 5)); // shares edge x=5
        assert!(a.intersects(&b));
        let c = ConvexPolygon::from_rect(Rect::new(5, 5, 10, 10)); // shares corner
        assert!(a.intersects(&c));
        let d = ConvexPolygon::from_rect(Rect::new(6, 0, 10, 5));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn sat_agrees_with_rect_overlap() {
        // Rectangle polygons must agree with Rect::intersects.
        let rects = [
            Rect::new(0, 0, 4, 4),
            Rect::new(2, 2, 6, 6),
            Rect::new(4, 0, 8, 4),
            Rect::new(5, 5, 9, 9),
            Rect::new(-3, -3, -1, -1),
        ];
        for a in &rects {
            for b in &rects {
                let pa = ConvexPolygon::from_rect(*a);
                let pb = ConvexPolygon::from_rect(*b);
                assert_eq!(pa.intersects(&pb), a.intersects(b), "{a} vs {b}");
            }
        }
    }
}
