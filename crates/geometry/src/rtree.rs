//! STR bulk-loaded R-tree.
//!
//! Sort-Tile-Recursive packing (Leutenegger et al.): entries are sorted by
//! x-centre, cut into vertical slabs of `√(n/fanout)` pages each, and each
//! slab is sorted by y-centre and packed into leaves. The tree supports
//! range queries and a synchronized-traversal join — the index-based
//! spatial join that `jp-relalg` benchmarks against plane sweep and PBSM.

use crate::rect::Rect;

/// Maximum number of entries per node.
pub const DEFAULT_FANOUT: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mbr: Rect,
        entries: Vec<(Rect, u32)>,
    },
    Inner {
        mbr: Rect,
        children: Vec<u32>,
    },
}

impl Node {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }
}

/// An immutable R-tree over `(Rect, id)` entries, bulk-loaded with STR.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<u32>,
    len: usize,
    height: usize,
}

impl RTree {
    /// Bulk-loads a tree with the default fanout.
    pub fn build(entries: &[(Rect, u32)]) -> Self {
        Self::build_with_fanout(entries, DEFAULT_FANOUT)
    }

    /// Bulk-loads a tree with a custom fanout (`≥ 2`).
    pub fn build_with_fanout(entries: &[(Rect, u32)], fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut tree = RTree {
            nodes: Vec::new(),
            root: None,
            len: entries.len(),
            height: 0,
        };
        if entries.is_empty() {
            return tree;
        }
        // STR leaf packing.
        let mut sorted: Vec<(Rect, u32)> = entries.to_vec();
        sorted.sort_by_key(|(r, id)| (r.center().x, *id));
        let n_leaves = sorted.len().div_ceil(fanout);
        let n_slabs = (n_leaves as f64).sqrt().ceil() as usize;
        let slab_cap = n_leaves.div_ceil(n_slabs) * fanout;
        let mut level: Vec<u32> = Vec::with_capacity(n_leaves);
        for slab in sorted.chunks(slab_cap.max(1)) {
            let mut slab: Vec<(Rect, u32)> = slab.to_vec();
            slab.sort_by_key(|(r, id)| (r.center().y, *id));
            for leaf in slab.chunks(fanout) {
                let mbr = leaf
                    .iter()
                    .map(|(r, _)| *r)
                    .reduce(|a, b| a.union(&b))
                    .expect("chunks are non-empty");
                tree.nodes.push(Node::Leaf {
                    mbr,
                    entries: leaf.to_vec(),
                });
                level.push(tree.nodes.len() as u32 - 1);
            }
        }
        tree.height = 1;
        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<u32> = Vec::with_capacity(level.len().div_ceil(fanout));
            for group in level.chunks(fanout) {
                let mbr = group
                    .iter()
                    .map(|&c| tree.nodes[c as usize].mbr())
                    .reduce(|a, b| a.union(&b))
                    .expect("chunks are non-empty");
                tree.nodes.push(Node::Inner {
                    mbr,
                    children: group.to_vec(),
                });
                next.push(tree.nodes.len() as u32 - 1);
            }
            level = next;
            tree.height += 1;
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree indexes no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 for the empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Ids of all entries whose rectangle intersects `query`, in
    /// unspecified order.
    pub fn query(&self, query: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx as usize] {
                Node::Leaf { mbr, entries } => {
                    if mbr.intersects(query) {
                        out.extend(
                            entries
                                .iter()
                                .filter(|(r, _)| r.intersects(query))
                                .map(|(_, id)| *id),
                        );
                    }
                }
                Node::Inner { mbr, children } => {
                    if mbr.intersects(query) {
                        stack.extend_from_slice(children);
                    }
                }
            }
        }
        out
    }

    /// Synchronized-traversal join: invokes `f(a_id, b_id)` for every pair
    /// of entries whose rectangles intersect. Each qualifying pair is
    /// reported exactly once.
    pub fn join(&self, other: &RTree, mut f: impl FnMut(u32, u32)) {
        let (Some(ra), Some(rb)) = (self.root, other.root) else {
            return;
        };
        let mut stack = vec![(ra, rb)];
        while let Some((ia, ib)) = stack.pop() {
            let na = &self.nodes[ia as usize];
            let nb = &other.nodes[ib as usize];
            if !na.mbr().intersects(&nb.mbr()) {
                continue;
            }
            match (na, nb) {
                (Node::Leaf { entries: ea, .. }, Node::Leaf { entries: eb, .. }) => {
                    for (r1, id1) in ea {
                        for (r2, id2) in eb {
                            if r1.intersects(r2) {
                                f(*id1, *id2);
                            }
                        }
                    }
                }
                (Node::Inner { children, .. }, Node::Leaf { .. }) => {
                    for &c in children {
                        stack.push((c, ib));
                    }
                }
                (Node::Leaf { .. }, Node::Inner { children, .. }) => {
                    for &c in children {
                        stack.push((ia, c));
                    }
                }
                (Node::Inner { children: ca, .. }, Node::Inner { children: cb, .. }) => {
                    for &a in ca {
                        for &b in cb {
                            stack.push((a, b));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_rects(n: i64, size: i64, stride: i64) -> Vec<(Rect, u32)> {
        // n x n grid of size×size squares spaced by stride.
        let mut out = Vec::new();
        let mut id = 0;
        for i in 0..n {
            for j in 0..n {
                out.push((
                    Rect::new(i * stride, j * stride, i * stride + size, j * stride + size),
                    id,
                ));
                id += 1;
            }
        }
        out
    }

    fn naive_query(entries: &[(Rect, u32)], q: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = entries
            .iter()
            .filter(|(r, _)| r.intersects(q))
            .map(|(_, id)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.query(&Rect::new(0, 0, 100, 100)).is_empty());
        t.join(&t, |_, _| panic!("no pairs in empty join"));
    }

    #[test]
    fn single_entry() {
        let t = RTree::build(&[(Rect::new(0, 0, 5, 5), 42)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.query(&Rect::new(3, 3, 8, 8)), vec![42]);
        assert!(t.query(&Rect::new(6, 6, 8, 8)).is_empty());
    }

    #[test]
    fn query_matches_naive_on_grid() {
        let entries = grid_rects(10, 5, 7); // overlapping neighbours
        let t = RTree::build(&entries);
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 2);
        for q in [
            Rect::new(0, 0, 10, 10),
            Rect::new(33, 33, 34, 34),
            Rect::new(-5, -5, -1, -1),
            Rect::new(0, 0, 100, 100),
        ] {
            let mut got = t.query(&q);
            got.sort_unstable();
            assert_eq!(got, naive_query(&entries, &q), "query {q}");
        }
    }

    #[test]
    fn join_matches_naive() {
        let a = grid_rects(6, 6, 8);
        let b: Vec<(Rect, u32)> = grid_rects(6, 6, 8)
            .into_iter()
            .map(|(r, id)| {
                (
                    Rect::new(r.min.x + 3, r.min.y + 3, r.max.x + 3, r.max.y + 3),
                    id,
                )
            })
            .collect();
        let ta = RTree::build(&a);
        let tb = RTree::build(&b);
        let mut got = Vec::new();
        ta.join(&tb, |x, y| got.push((x, y)));
        got.sort_unstable();
        let mut expect = Vec::new();
        for (r1, i1) in &a {
            for (r2, i2) in &b {
                if r1.intersects(r2) {
                    expect.push((*i1, *i2));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
        // no duplicates
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), got.len());
    }

    #[test]
    fn custom_fanout_same_results() {
        let entries = grid_rects(8, 4, 5);
        let q = Rect::new(10, 10, 25, 25);
        let expect = naive_query(&entries, &q);
        for fanout in [2, 3, 16, 64] {
            let t = RTree::build_with_fanout(&entries, fanout);
            let mut got = t.query(&q);
            got.sort_unstable();
            assert_eq!(got, expect, "fanout {fanout}");
        }
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_one_rejected() {
        RTree::build_with_fanout(&[(Rect::new(0, 0, 1, 1), 0)], 1);
    }
}
