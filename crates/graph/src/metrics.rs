//! Structural metrics of bipartite join graphs.
//!
//! Used by the CLI's `info` command and the census experiments to
//! characterize where a join graph sits between the paper's extremes
//! (unions of complete bipartite graphs vs the spider family).

use crate::bipartite::BipartiteGraph;
use crate::components::ComponentMap;
use std::collections::VecDeque;

/// A summary of a join graph's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Edge count `m`.
    pub edges: usize,
    /// Non-isolated vertex count.
    pub vertices: usize,
    /// Connected components with edges (`β₀`).
    pub components: u32,
    /// Edge density `m / (|R'|·|S'|)` over non-isolated vertices
    /// (1.0 for a single complete bipartite component).
    pub density: f64,
    /// Largest component's edge count.
    pub largest_component_edges: usize,
    /// Diameter of the largest component (edges on the longest shortest
    /// path), or 0 for the edgeless graph.
    pub diameter: usize,
    /// Number of degree-1 vertices (the pendant fuel of Theorem 3.3's
    /// lower bound).
    pub leaves: usize,
}

/// Computes the metrics. Diameter uses BFS from every vertex of the
/// largest component — `O(V·E)`; fine for the CLI/census sizes.
pub fn metrics(g: &BipartiteGraph) -> GraphMetrics {
    let (s, _, _) = g.strip_isolated();
    let cm = ComponentMap::new(&s);
    let mut comp_edges = vec![0usize; cm.count as usize];
    for &c in &cm.edge {
        comp_edges[c as usize] += 1;
    }
    let largest = comp_edges.iter().copied().max().unwrap_or(0);
    let density = if s.vertex_count() == 0 {
        0.0
    } else {
        s.edge_count() as f64 / (s.left_count() as f64 * s.right_count() as f64)
    };
    GraphMetrics {
        edges: s.edge_count(),
        vertices: s.vertex_count() as usize,
        components: cm.count,
        density,
        largest_component_edges: largest,
        diameter: diameter_of(&s),
        leaves: s.vertices().filter(|&v| s.degree(v) == 1).count(),
    }
}

/// Diameter of the largest (by edges) component of a stripped graph.
fn diameter_of(s: &BipartiteGraph) -> usize {
    if s.edge_count() == 0 {
        return 0;
    }
    let n = s.vertex_count() as usize;
    let mut best = 0usize;
    let mut dist = vec![usize::MAX; n];
    for start in 0..n {
        dist.iter_mut().for_each(|d| *d = usize::MAX);
        dist[start] = 0;
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            let v = s.unflatten(u);
            let nbrs: Vec<usize> = match v.side {
                crate::Side::Left => s
                    .left_neighbors(v.index)
                    .iter()
                    .map(|&r| s.flat_index(crate::Vertex::right(r)))
                    .collect(),
                crate::Side::Right => s
                    .right_neighbors(v.index)
                    .iter()
                    .map(|&l| s.flat_index(crate::Vertex::left(l)))
                    .collect(),
            };
            for w in nbrs {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    best = best.max(dist[w]);
                    q.push_back(w);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complete_bipartite_metrics() {
        let m = metrics(&generators::complete_bipartite(3, 4));
        assert_eq!(m.edges, 12);
        assert_eq!(m.vertices, 7);
        assert_eq!(m.components, 1);
        assert!((m.density - 1.0).abs() < 1e-12);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.leaves, 0);
    }

    #[test]
    fn spider_metrics() {
        let m = metrics(&generators::spider(4));
        assert_eq!(m.edges, 8);
        assert_eq!(m.leaves, 4); // the feet
        assert_eq!(m.diameter, 4); // w_i .. v_i .. c .. v_j .. w_j
        assert_eq!(m.components, 1);
    }

    #[test]
    fn path_diameter_is_its_length() {
        for len in [1u32, 4, 7] {
            assert_eq!(metrics(&generators::path(len)).diameter, len as usize);
        }
    }

    #[test]
    fn disconnected_and_isolated_handling() {
        let g = jp_graph_test_union();
        let m = metrics(&g);
        assert_eq!(m.components, 2);
        assert_eq!(m.largest_component_edges, 6);
        // isolated vertices are excluded everywhere
        assert_eq!(m.vertices, 5 + 6);
    }

    fn jp_graph_test_union() -> BipartiteGraph {
        // K_{2,3} (6 edges, 5 vertices) + path(5) (5 edges, 6 vertices) +
        // isolated padding
        let u = generators::complete_bipartite(2, 3).disjoint_union(&generators::path(5));
        BipartiteGraph::new(u.left_count() + 2, u.right_count() + 2, u.edges().to_vec())
    }

    #[test]
    fn edgeless_graph_metrics() {
        let m = metrics(&BipartiteGraph::new(3, 3, vec![]));
        assert_eq!(m.edges, 0);
        assert_eq!(m.vertices, 0);
        assert_eq!(m.diameter, 0);
        assert_eq!(m.density, 0.0);
    }
}
