//! DFS forests over general graphs.
//!
//! The constructive proof of Theorem 3.1 works on a *rooted DFS tree* of
//! the line graph `L(G)` and relies on two DFS facts:
//!
//! 1. in a DFS tree of an undirected graph, the children of any node are
//!    pairwise non-adjacent (a cross edge between two children would have
//!    been explored as a tree edge), and
//! 2. because `L(G)` is `K_{1,3}`-free, (1) implies every node of the DFS
//!    tree has at most two children.
//!
//! [`DfsTree`] exposes the rooted-tree view (parent, children, preorder)
//! that the 1.25-approximation of `jp-pebble` manipulates.

use crate::graph::Graph;

/// A rooted spanning tree of one connected component, produced by DFS.
#[derive(Debug, Clone)]
pub struct DfsTree {
    /// The root vertex.
    pub root: u32,
    /// `parent[v]` for every vertex in the component; `u32::MAX` for the
    /// root and for vertices outside the component.
    pub parent: Vec<u32>,
    /// Children lists, in DFS discovery order.
    pub children: Vec<Vec<u32>>,
    /// Vertices of the component in preorder.
    pub preorder: Vec<u32>,
}

impl DfsTree {
    /// Runs an iterative DFS from `root` over `g`, visiting neighbours in
    /// sorted order. Only the component of `root` is covered.
    pub fn new(g: &Graph, root: u32) -> Self {
        let n = g.vertex_count() as usize;
        let mut parent = vec![u32::MAX; n];
        let mut children = vec![Vec::new(); n];
        let mut preorder = Vec::new();
        let mut visited = vec![false; n];
        // stack of (vertex, next neighbour position)
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        visited[root as usize] = true;
        preorder.push(root);
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            let mut advanced = false;
            while *i < nbrs.len() {
                let w = nbrs[*i];
                *i += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parent[w as usize] = v;
                    children[v as usize].push(w);
                    preorder.push(w);
                    stack.push((w, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
            }
        }
        DfsTree {
            root,
            parent,
            children,
            preorder,
        }
    }

    /// Whether `v` belongs to the tree.
    pub fn contains(&self, v: u32) -> bool {
        v == self.root || self.parent[v as usize] != u32::MAX
    }

    /// Number of vertices in the tree.
    pub fn len(&self) -> usize {
        self.preorder.len()
    }

    /// True when the tree is empty (never the case for a valid root).
    pub fn is_empty(&self) -> bool {
        self.preorder.is_empty()
    }

    /// Subtree sizes (number of descendants including self), indexed by
    /// vertex; 0 for vertices outside the tree.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![0u32; self.parent.len()];
        // preorder reversed is a valid bottom-up order
        for &v in self.preorder.iter().rev() {
            size[v as usize] += 1;
            let p = self.parent[v as usize];
            if p != u32::MAX {
                size[p as usize] += size[v as usize];
            }
        }
        size
    }

    /// Checks that children of every node are pairwise non-adjacent in `g`
    /// — the DFS-tree property the Theorem 3.1 construction relies on.
    pub fn children_independent(&self, g: &Graph) -> bool {
        self.children.iter().all(|ch| {
            ch.iter()
                .enumerate()
                .all(|(i, &a)| ch[i + 1..].iter().all(|&b| !g.has_edge(a, b)))
        })
    }
}

/// BFS order of the component containing `root`.
pub fn bfs_order(g: &Graph, root: u32) -> Vec<u32> {
    let mut visited = vec![false; g.vertex_count() as usize];
    let mut order = vec![root];
    visited[root as usize] = true;
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &w in g.neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                order.push(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_path() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let t = DfsTree::new(&g, 0);
        assert_eq!(t.preorder, vec![0, 1, 2, 3]);
        assert_eq!(t.parent[3], 2);
        assert_eq!(t.children[1], vec![2]);
        assert!(t.contains(3));
        assert_eq!(t.len(), 4);
        assert_eq!(t.subtree_sizes(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn dfs_covers_only_component() {
        let g = Graph::new(4, vec![(0, 1), (2, 3)]);
        let t = DfsTree::new(&g, 0);
        assert_eq!(t.len(), 2);
        assert!(!t.contains(2));
    }

    #[test]
    fn dfs_children_independent_on_clique() {
        // In K4 a DFS from 0 is a path, so every node has <= 1 child.
        let g = Graph::complete(4);
        let t = DfsTree::new(&g, 0);
        assert!(t.children_independent(&g));
        assert!(t.children.iter().all(|c| c.len() <= 1));
    }

    #[test]
    fn dfs_children_independent_on_star() {
        // DFS of a star from the centre: children are the leaves, pairwise
        // non-adjacent.
        let g = Graph::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let t = DfsTree::new(&g, 0);
        assert_eq!(t.children[0].len(), 4);
        assert!(t.children_independent(&g));
    }

    #[test]
    fn subtree_sizes_on_branching_tree() {
        //    0
        //   / \
        //  1   2
        //      |
        //      3
        let g = Graph::new(4, vec![(0, 1), (0, 2), (2, 3)]);
        let t = DfsTree::new(&g, 0);
        let s = t.subtree_sizes();
        assert_eq!(s[0], 4);
        assert_eq!(s[1], 1);
        assert_eq!(s[2], 2);
        assert_eq!(s[3], 1);
    }

    #[test]
    fn bfs_order_levels() {
        let g = Graph::new(5, vec![(0, 1), (0, 2), (1, 3), (2, 4)]);
        let order = bfs_order(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4));
    }
}
