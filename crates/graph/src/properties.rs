//! Structural predicates on bipartite graphs.
//!
//! The paper's Theorem 3.2 rests on a structural fact: *every connected
//! component of an equijoin join graph is a complete bipartite graph* (all
//! tuples with the same key value join pairwise, and distinct keys never
//! mix). [`is_equijoin_graph`] checks exactly that, and the linear-time
//! pebbler of Theorem 4.1 uses it as its admission test.

use crate::bipartite::BipartiteGraph;
use crate::components::ComponentMap;

/// Whether `g` (after ignoring isolated vertices) is a single complete
/// bipartite graph: every left vertex adjacent to every right vertex.
pub fn is_complete_bipartite(g: &BipartiteGraph) -> bool {
    let (s, _, _) = g.strip_isolated();
    s.edge_count() == s.left_count() as usize * s.right_count() as usize
}

/// Whether every connected component of `g` is a complete bipartite graph
/// — the characterization of equijoin join graphs (§3.1).
///
/// Runs in `O(|V| + |E|)`: component `c` with `k_c` left vertices, `l_c`
/// right vertices and `m_c` edges is complete bipartite iff
/// `m_c = k_c · l_c` (a component can never have more).
pub fn is_equijoin_graph(g: &BipartiteGraph) -> bool {
    let cm = ComponentMap::new(g);
    let n = cm.count as usize;
    let mut lefts = vec![0usize; n];
    let mut rights = vec![0usize; n];
    let mut edges = vec![0usize; n];
    for &c in &cm.left {
        if c != u32::MAX {
            lefts[c as usize] += 1;
        }
    }
    for &c in &cm.right {
        if c != u32::MAX {
            rights[c as usize] += 1;
        }
    }
    for &c in &cm.edge {
        edges[c as usize] += 1;
    }
    (0..n).all(|c| edges[c] == lefts[c] * rights[c])
}

/// Whether `g` is a matching: every non-isolated vertex has degree 1.
pub fn is_matching(g: &BipartiteGraph) -> bool {
    g.vertices().all(|v| g.degree(v) <= 1)
}

/// Degree statistics `(min, max)` over non-isolated vertices; `None` for an
/// edgeless graph.
pub fn degree_range(g: &BipartiteGraph) -> Option<(usize, usize)> {
    let degs: Vec<usize> = g
        .vertices()
        .map(|v| g.degree(v))
        .filter(|&d| d > 0)
        .collect();
    if degs.is_empty() {
        return None;
    }
    Some((*degs.iter().min().unwrap(), *degs.iter().max().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complete_bipartite_detection() {
        assert!(is_complete_bipartite(&generators::complete_bipartite(3, 5)));
        assert!(is_complete_bipartite(&generators::star(4)));
        assert!(!is_complete_bipartite(&generators::path(3)));
        // with isolated vertices: still complete after stripping
        let g = BipartiteGraph::new(3, 2, vec![(0, 0), (0, 1), (2, 0), (2, 1)]);
        assert!(is_complete_bipartite(&g));
    }

    #[test]
    fn equijoin_graph_is_union_of_complete_bipartite() {
        let a = generators::complete_bipartite(2, 3);
        let b = generators::complete_bipartite(4, 1);
        let u = a.disjoint_union(&b);
        assert!(is_equijoin_graph(&u));
        assert!(is_equijoin_graph(&generators::matching(5)));
        assert!(!is_equijoin_graph(&generators::path(3)));
        assert!(!is_equijoin_graph(&generators::spider(3)));
        assert!(!is_equijoin_graph(&generators::cycle(3)));
        // C4 = K_{2,2} is complete bipartite
        assert!(is_equijoin_graph(&generators::cycle(2)));
    }

    #[test]
    fn equijoin_graph_accepts_edgeless() {
        assert!(is_equijoin_graph(&BipartiteGraph::new(3, 3, vec![])));
    }

    #[test]
    fn matching_detection() {
        assert!(is_matching(&generators::matching(4)));
        assert!(is_matching(&BipartiteGraph::new(2, 2, vec![])));
        assert!(!is_matching(&generators::path(2)));
    }

    #[test]
    fn degree_range_works() {
        assert_eq!(degree_range(&generators::spider(4)), Some((1, 4)));
        assert_eq!(degree_range(&BipartiteGraph::new(2, 2, vec![])), None);
        assert_eq!(
            degree_range(&generators::complete_bipartite(2, 2)),
            Some((2, 2))
        );
    }
}
