//! Generators for every graph family the paper touches.
//!
//! * [`complete_bipartite`] — equijoin components (Lemma 3.2);
//! * [`matching`] — the `π̂ = 2m` extreme (Lemma 2.4);
//! * [`spider`] — the worst-case family `G_n` of Figure 1 / Theorem 3.3;
//! * [`incidence_graph`] — the bipartite incidence graph used by the
//!   Theorem 4.4 L-reduction;
//! * random bipartite graphs for the statistical experiments.

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Complete bipartite graph `K_{k,l}` — the shape of every connected
/// component of an equijoin join graph (§3.1).
pub fn complete_bipartite(k: u32, l: u32) -> BipartiteGraph {
    let mut edges = Vec::with_capacity(k as usize * l as usize);
    for i in 0..k {
        for j in 0..l {
            edges.push((i, j));
        }
    }
    BipartiteGraph::new(k, l, edges)
}

/// A perfect matching with `m` edges: `r_i — s_i`. Lemma 2.4: `π̂ = 2m`,
/// `π = m`.
pub fn matching(m: u32) -> BipartiteGraph {
    BipartiteGraph::new(m, m, (0..m).map(|i| (i, i)).collect())
}

/// A path with `m` edges, alternating sides and starting on the left:
/// `r0 — s0 — r1 — s1 — …`.
pub fn path(m: u32) -> BipartiteGraph {
    let left = m / 2 + 1;
    let right = m.div_ceil(2);
    let mut edges = Vec::with_capacity(m as usize);
    for e in 0..m {
        let l = e / 2 + e % 2; // 0,1,1,2,2,...
        let r = e / 2;
        edges.push((l, r));
    }
    BipartiteGraph::new(left.max(1), right.max(1), edges)
}

/// An even cycle with `2k` edges (`k ≥ 2`): `r0 — s0 — r1 — … — s_{k-1} — r0`.
pub fn cycle(k: u32) -> BipartiteGraph {
    assert!(k >= 2, "a bipartite cycle needs at least 4 edges");
    let mut edges = Vec::with_capacity(2 * k as usize);
    for i in 0..k {
        edges.push((i, i));
        edges.push(((i + 1) % k, i));
    }
    BipartiteGraph::new(k, k, edges)
}

/// The star `K_{1,n}` with the centre on the left.
pub fn star(n: u32) -> BipartiteGraph {
    complete_bipartite(1, n)
}

/// The Figure 1 family `G_n` (Theorem 3.3): the *spider* with centre `c`,
/// middle vertices `v_1..v_n` and feet `w_1..w_n`, edges `c—v_i` and
/// `v_i—w_i`.
///
/// Layout: left partition is `{c} ∪ {w_i}` (`c` is left 0, `w_i` is left
/// `i`), right partition is `{v_i}` (`v_i` is right `i − 1`).
///
/// Its line graph is `K_n` plus `n` pendant vertices attached 1–1 (Fig
/// 1(b)), giving `π(G_n) = 1.25·m − 1` with `m = 2n` — the worst case over
/// all join graphs, realizable by both set-containment (Lemma 3.3) and
/// spatial-overlap (Lemma 3.4) joins but never by an equijoin.
pub fn spider(n: u32) -> BipartiteGraph {
    assert!(n >= 1);
    let mut edges = Vec::with_capacity(2 * n as usize);
    for i in 0..n {
        edges.push((0, i)); // c — v_i
        edges.push((i + 1, i)); // w_i — v_i
    }
    BipartiteGraph::new(n + 1, n, edges)
}

/// The incidence graph `B = (X, Y, E′)` of a general graph `G = (V, E)`:
/// `X = V`, `Y = E`, and `(x, e) ∈ E′` iff `x` is an endpoint of `e`
/// (Theorem 4.4's reduction `f`). Every vertex of `Y` has degree exactly 2.
pub fn incidence_graph(g: &Graph) -> BipartiteGraph {
    let mut edges = Vec::with_capacity(2 * g.edge_count());
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        edges.push((u, e as u32));
        edges.push((v, e as u32));
    }
    BipartiteGraph::new(g.vertex_count(), g.edge_count() as u32, edges)
}

/// Erdős–Rényi bipartite graph `G(k, l, p)`: each of the `k·l` possible
/// edges present independently with probability `p`. Isolated vertices are
/// *kept* (strip with [`BipartiteGraph::strip_isolated`] if unwanted).
pub fn random_bipartite(k: u32, l: u32, p: f64, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..k {
        for j in 0..l {
            if rng.random_bool(p) {
                edges.push((i, j));
            }
        }
    }
    BipartiteGraph::new(k, l, edges)
}

/// Random *connected* bipartite graph with exactly `m ≥ k + l − 1` edges:
/// a random spanning tree over `k + l` vertices (alternating construction)
/// plus uniformly chosen extra edges. Panics if `m > k·l` or the tree does
/// not fit.
pub fn random_connected_bipartite(k: u32, l: u32, m: usize, seed: u64) -> BipartiteGraph {
    assert!(k >= 1 && l >= 1);
    let min = (k + l - 1) as usize;
    let max = k as usize * l as usize;
    assert!(
        m >= min,
        "need at least {min} edges for connectivity, got {m}"
    );
    assert!(m <= max, "at most {max} edges possible, got {m}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    // Spanning tree: attach each new vertex (alternating sides while both
    // remain) to a random already-attached vertex of the other side.
    let mut left_in: Vec<u32> = vec![0];
    let mut right_in: Vec<u32> = Vec::new();
    let mut next_l = 1u32;
    let mut next_r = 0u32;
    while next_l < k || next_r < l {
        let take_right = next_r < l && (next_l >= k || right_in.len() <= left_in.len());
        if take_right {
            let l_anchor = left_in[rng.random_range(0..left_in.len())];
            edges.push((l_anchor, next_r));
            right_in.push(next_r);
            next_r += 1;
        } else {
            let r_anchor = right_in[rng.random_range(0..right_in.len())];
            edges.push((next_l, r_anchor));
            left_in.push(next_l);
            next_l += 1;
        }
    }
    // Extra edges, sampled without replacement.
    let mut have: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    while edges.len() < m {
        let e = (rng.random_range(0..k), rng.random_range(0..l));
        if have.insert(e) {
            edges.push(e);
        }
    }
    BipartiteGraph::new(k, l, edges)
}

/// Random general graph on `n` vertices with maximum degree `≤ d`, grown by
/// sampling random non-adjacent pairs with spare degree. Used to generate
/// TSP-k(1,2) instances for the §4 reductions.
pub fn random_bounded_degree(n: u32, d: usize, target_edges: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    let mut attempts = 0usize;
    let budget = 50 * target_edges.max(1) + 200;
    while g.edge_count() < target_edges && attempts < budget {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || g.has_edge(u, v) || g.degree(u) >= d || g.degree(v) >= d {
            continue;
        }
        g.add_edge(u, v);
    }
    g
}

/// Enumerates all distinct edge sets on a `k × l` vertex grid with exactly
/// `m` edges and no isolated vertices — exhaustive small-instance testing
/// (E1 uses it). The count grows as `C(k·l, m)`; keep `k·l` tiny.
pub fn enumerate_bipartite(k: u32, l: u32, m: usize) -> Vec<BipartiteGraph> {
    let all: Vec<(u32, u32)> = (0..k).flat_map(|i| (0..l).map(move |j| (i, j))).collect();
    let mut out = Vec::new();
    let mut pick = Vec::with_capacity(m);
    fn rec(
        all: &[(u32, u32)],
        start: usize,
        m: usize,
        pick: &mut Vec<(u32, u32)>,
        k: u32,
        l: u32,
        out: &mut Vec<BipartiteGraph>,
    ) {
        if pick.len() == m {
            let g = BipartiteGraph::new(k, l, pick.clone());
            let (s, _, _) = g.strip_isolated();
            if s.edge_count() == m {
                out.push(s);
            }
            return;
        }
        if all.len() - start < m - pick.len() {
            return;
        }
        for i in start..all.len() {
            pick.push(all[i]);
            rec(all, i + 1, m, pick, k, l, out);
            pick.pop();
        }
    }
    rec(&all, 0, m, &mut pick, k, l, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::betti_number;
    use crate::line_graph::line_graph;
    use crate::properties;

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert!(properties::is_complete_bipartite(&g));
        assert_eq!(betti_number(&g), 1);
    }

    #[test]
    fn matching_shape() {
        let g = matching(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(betti_number(&g), 6);
        assert!(properties::is_matching(&g));
    }

    #[test]
    fn path_shape() {
        for m in 1..8 {
            let g = path(m);
            assert_eq!(g.edge_count(), m as usize, "path({m})");
            assert_eq!(betti_number(&g), 1);
            // paths have exactly two degree-1 endpoints (for m >= 2)
            let deg1 = g.vertices().filter(|&v| g.degree(v) == 1).count();
            assert_eq!(deg1, 2, "path({m})");
        }
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(betti_number(&g), 1);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn spider_matches_figure_1() {
        // L(G_n) must be K_n plus n pendants attached 1-1 (Fig 1(b)).
        for n in 3..7u32 {
            let g = spider(n);
            assert_eq!(g.edge_count(), 2 * n as usize);
            assert_eq!(betti_number(&g), 1);
            let l = line_graph(&g);
            let deg1: Vec<u32> = (0..l.vertex_count())
                .filter(|&v| l.degree(v) == 1)
                .collect();
            let core: Vec<u32> = (0..l.vertex_count()).filter(|&v| l.degree(v) > 1).collect();
            assert_eq!(deg1.len(), n as usize, "n pendants");
            assert_eq!(core.len(), n as usize, "K_n core");
            assert!(l.is_clique(&core), "core is a clique");
            // each core vertex has exactly one pendant
            for &c in &core {
                let pendants = l.neighbors(c).iter().filter(|&&x| l.degree(x) == 1).count();
                assert_eq!(pendants, 1);
            }
        }
    }

    #[test]
    fn spider_is_never_an_equijoin_graph() {
        // the paper: "the above graph cannot be the join graph for an
        // equijoin since it is not a complete bipartite graph"
        for n in 2..6 {
            assert!(!properties::is_equijoin_graph(&spider(n)));
        }
    }

    #[test]
    fn incidence_graph_degrees() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = incidence_graph(&g);
        assert_eq!(b.left_count(), 4);
        assert_eq!(b.right_count(), 4);
        assert_eq!(b.edge_count(), 8);
        // every edge-vertex has degree exactly 2
        for e in 0..4 {
            assert_eq!(b.right_neighbors(e).len(), 2);
        }
        // vertex degrees carry over
        for v in 0..4 {
            assert_eq!(b.left_neighbors(v).len(), g.degree(v));
        }
    }

    #[test]
    fn random_bipartite_is_deterministic_per_seed() {
        let a = random_bipartite(10, 10, 0.3, 42);
        let b = random_bipartite(10, 10, 0.3, 42);
        let c = random_bipartite(10, 10, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_connected_is_connected_with_exact_m() {
        for seed in 0..20 {
            let g = random_connected_bipartite(5, 6, 14, seed);
            assert_eq!(g.edge_count(), 14);
            assert_eq!(betti_number(&g), 1, "seed {seed}");
            assert!(!g.has_isolated_vertices());
        }
    }

    #[test]
    fn random_connected_tree_case() {
        let g = random_connected_bipartite(4, 4, 7, 1);
        assert_eq!(g.edge_count(), 7); // exactly spanning tree
        assert_eq!(betti_number(&g), 1);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn random_connected_rejects_too_few_edges() {
        random_connected_bipartite(4, 4, 6, 0);
    }

    #[test]
    fn random_bounded_degree_respects_bound() {
        for seed in 0..10 {
            let g = random_bounded_degree(12, 4, 20, seed);
            assert!(g.max_degree() <= 4, "seed {seed}");
        }
    }

    #[test]
    fn enumerate_small() {
        // 2x2 grid, 2 edges, no isolated vertices after stripping:
        // any 2-subset of the 4 possible edges covers >= 1 vertex each;
        // all C(4,2)=6 subsets qualify once stripped.
        let gs = enumerate_bipartite(2, 2, 2);
        assert_eq!(gs.len(), 6);
        for g in &gs {
            assert_eq!(g.edge_count(), 2);
            assert!(!g.has_isolated_vertices());
        }
    }
}

/// Long-legged spider `S(n, len)`: centre `c` with `n` legs, each a path
/// of `len` edges (`len = 2` gives the Figure 1 family `G_n`). Left
/// partition holds `c` and every vertex at even distance from it; right
/// partition holds odd-distance vertices. Longer legs dilute the pendant
/// density of `L(G)`, so the worst-case ratio 1.25 is *specific* to
/// `len = 2` — the extension experiments measure the decay.
pub fn spider_legs(n: u32, len: u32) -> BipartiteGraph {
    assert!(n >= 1 && len >= 1);
    // vertices per leg: `len` beyond the shared centre
    let left_per_leg = len / 2; // even-distance vertices (excluding c)
    let right_per_leg = len.div_ceil(2);
    let left_total = 1 + n * left_per_leg;
    let right_total = n * right_per_leg;
    let mut edges = Vec::with_capacity((n * len) as usize);
    for leg in 0..n {
        // walk the leg: distance d = 1..=len; vertex at distance d is
        // right[(d-1)/2] of the leg when d odd, left[d/2 - 1] when even
        let left_base = 1 + leg * left_per_leg;
        let right_base = leg * right_per_leg;
        for d in 1..=len {
            let (l, r) = if d % 2 == 1 {
                // edge from even-distance vertex (d-1) to odd vertex d
                let l = if d == 1 {
                    0
                } else {
                    left_base + (d - 1) / 2 - 1
                };
                (l, right_base + (d - 1) / 2)
            } else {
                // edge from odd vertex (d-1) to even vertex d
                (left_base + d / 2 - 1, right_base + (d - 2) / 2)
            };
            edges.push((l, r));
        }
    }
    BipartiteGraph::new(left_total, right_total, edges)
}

/// The crown graph `K_{n,n}` minus a perfect matching: every left vertex
/// joins every right vertex except its partner. Dense but *not* complete
/// bipartite — a natural near-equijoin stress case for the classifier.
pub fn crown(n: u32) -> BipartiteGraph {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity((n * (n - 1)) as usize);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                edges.push((i, j));
            }
        }
    }
    BipartiteGraph::new(n, n, edges)
}

/// A caterpillar: a spine path of `spine` edges with one pendant leaf
/// hanging off every *left* spine vertex. Caterpillar line graphs keep a
/// moderate pendant count — between the path (ratio 1) and spider
/// (ratio 1.25) regimes.
pub fn caterpillar(spine: u32) -> BipartiteGraph {
    assert!(spine >= 1);
    let base = path(spine);
    let spine_left = base.left_count();
    let spine_right = base.right_count();
    let mut edges = base.edges().to_vec();
    // pendant leaf (right side) for each left spine vertex
    for l in 0..spine_left {
        edges.push((l, spine_right + l));
    }
    BipartiteGraph::new(spine_left, spine_right + spine_left, edges)
}

#[cfg(test)]
mod extended_family_tests {
    use super::*;
    use crate::components::betti_number;

    #[test]
    fn spider_legs_2_is_the_figure_1_family() {
        for n in 1..6 {
            assert_eq!(spider_legs(n, 2), spider(n), "S({n}, 2) = G_{n}");
        }
    }

    #[test]
    fn spider_legs_shapes() {
        for (n, len) in [(3u32, 1u32), (3, 3), (4, 4), (2, 5)] {
            let g = spider_legs(n, len);
            assert_eq!(g.edge_count(), (n * len) as usize, "S({n},{len}) edges");
            assert_eq!(betti_number(&g), 1, "S({n},{len}) connected");
            // centre degree n (for len >= 1), n leaves of degree 1
            assert_eq!(g.left_neighbors(0).len(), n as usize);
            let deg1 = g.vertices().filter(|&v| g.degree(v) == 1).count();
            assert_eq!(deg1, n as usize, "S({n},{len}) has n leaf feet");
        }
        // legs of length 1 form a star
        assert_eq!(spider_legs(5, 1), star(5));
    }

    #[test]
    fn crown_shape() {
        let g = crown(4);
        assert_eq!(g.edge_count(), 12);
        assert!(!crate::properties::is_complete_bipartite(&g));
        assert!(!crate::properties::is_equijoin_graph(&g));
        assert!(g.vertices().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4);
        // spine path(4): 3 left, 2 right; + 3 pendant leaves
        assert_eq!(g.edge_count(), 7);
        assert_eq!(betti_number(&g), 1);
        let deg1 = g.vertices().filter(|&v| g.degree(v) == 1).count();
        assert!(deg1 >= 3);
    }
}
