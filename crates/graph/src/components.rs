//! Connected components of bipartite graphs and the 0th Betti number `β₀`.
//!
//! Definition 2.2 of the paper defines the *effective* pebbling cost as
//! `π(P) = π̂(P) − β₀(G)` — every connected component costs one unavoidable
//! pebble placement, which `β₀` discounts. The additivity lemma (Lemma 2.2)
//! then says `π` is additive over disjoint unions, so all bounds are stated
//! for connected graphs.

use crate::bipartite::{BipartiteGraph, Side, Vertex};

/// Component decomposition of a bipartite graph.
///
/// Isolated vertices are *not* assigned components (the paper strips them);
/// `β₀` counts only components that contain at least one edge.
#[derive(Debug, Clone)]
pub struct ComponentMap {
    /// Component id per left vertex (`u32::MAX` for isolated vertices).
    pub left: Vec<u32>,
    /// Component id per right vertex (`u32::MAX` for isolated vertices).
    pub right: Vec<u32>,
    /// Component id per edge (same indexing as `g.edges()`).
    pub edge: Vec<u32>,
    /// Number of components containing at least one edge — the `β₀(G)` of
    /// Definition 2.2.
    pub count: u32,
}

impl ComponentMap {
    /// Computes the component decomposition by BFS over the bipartite
    /// adjacency. Runs in `O(|V| + |E|)`.
    pub fn new(g: &BipartiteGraph) -> Self {
        let mut left = vec![u32::MAX; g.left_count() as usize];
        let mut right = vec![u32::MAX; g.right_count() as usize];
        let mut next = 0u32;
        let mut stack: Vec<Vertex> = Vec::new();
        for start in 0..g.left_count() {
            if left[start as usize] != u32::MAX || g.left_neighbors(start).is_empty() {
                continue;
            }
            left[start as usize] = next;
            stack.push(Vertex::left(start));
            while let Some(v) = stack.pop() {
                match v.side {
                    Side::Left => {
                        for &r in g.left_neighbors(v.index) {
                            if right[r as usize] == u32::MAX {
                                right[r as usize] = next;
                                stack.push(Vertex::right(r));
                            }
                        }
                    }
                    Side::Right => {
                        for &l in g.right_neighbors(v.index) {
                            if left[l as usize] == u32::MAX {
                                left[l as usize] = next;
                                stack.push(Vertex::left(l));
                            }
                        }
                    }
                }
            }
            next += 1;
        }
        let edge = g.edges().iter().map(|&(l, _)| left[l as usize]).collect();
        ComponentMap {
            left,
            right,
            edge,
            count: next,
        }
    }

    /// Groups edge ids by component: `result[c]` lists the edges of
    /// component `c`, in edge-list order.
    pub fn edges_by_component(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count as usize];
        for (e, &c) in self.edge.iter().enumerate() {
            groups[c as usize].push(e);
        }
        groups
    }

    /// Component of a vertex, if it is not isolated.
    pub fn component_of(&self, v: Vertex) -> Option<u32> {
        let c = match v.side {
            Side::Left => self.left[v.index as usize],
            Side::Right => self.right[v.index as usize],
        };
        (c != u32::MAX).then_some(c)
    }
}

/// `β₀(G)`: the number of connected components containing at least one
/// edge (Definition 2.2). Isolated vertices are ignored, per §2.
pub fn betti_number(g: &BipartiteGraph) -> u32 {
    ComponentMap::new(g).count
}

/// Whether the graph, after stripping isolated vertices, is connected
/// (i.e. `β₀ = 1`). The edgeless graph is not connected in this sense.
pub fn is_connected(g: &BipartiteGraph) -> bool {
    betti_number(g) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::new(1, 1, vec![(0, 0)]);
        let cm = ComponentMap::new(&g);
        assert_eq!(cm.count, 1);
        assert_eq!(betti_number(&g), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn matching_has_m_components() {
        // Lemma 2.4 context: a matching with m edges has β₀ = m.
        let m = 5;
        let edges = (0..m).map(|i| (i, i)).collect();
        let g = BipartiteGraph::new(m, m, edges);
        assert_eq!(betti_number(&g), m);
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_vertices_ignored() {
        let g = BipartiteGraph::new(3, 3, vec![(0, 0)]);
        let cm = ComponentMap::new(&g);
        assert_eq!(cm.count, 1);
        assert_eq!(cm.component_of(Vertex::left(0)), Some(0));
        assert_eq!(cm.component_of(Vertex::left(1)), None);
        assert_eq!(cm.component_of(Vertex::right(2)), None);
    }

    #[test]
    fn edge_components_follow_vertices() {
        // two components: {r0,s0,r1} and {r2,s1}
        let g = BipartiteGraph::new(3, 2, vec![(0, 0), (1, 0), (2, 1)]);
        let cm = ComponentMap::new(&g);
        assert_eq!(cm.count, 2);
        assert_eq!(cm.edge, vec![0, 0, 1]);
        let groups = cm.edges_by_component();
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn edgeless_graph_has_zero_betti() {
        let g = BipartiteGraph::new(4, 4, vec![]);
        assert_eq!(betti_number(&g), 0);
        assert!(!is_connected(&g));
    }

    #[test]
    fn disjoint_union_adds_betti() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (1, 1)]);
        let h = BipartiteGraph::new(1, 2, vec![(0, 0), (0, 1)]);
        assert_eq!(
            betti_number(&g.disjoint_union(&h)),
            betti_number(&g) + betti_number(&h)
        );
    }
}
