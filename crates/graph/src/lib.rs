#![forbid(unsafe_code)]
//! Graph substrate for the reproduction of *On the Complexity of Join
//! Predicates* (Cai, Chakaravarthy, Kaushik, Naughton — PODS 2001).
//!
//! The paper models a join instance as a **bipartite join graph**
//! `G = (R, S, E)` with one vertex per tuple and one edge per joining pair,
//! and studies a two-pebble game whose moves live on that graph. This crate
//! provides everything graph-theoretic the paper needs:
//!
//! * [`BipartiteGraph`] — join graphs themselves (§2 of the paper);
//! * [`Graph`] — general undirected graphs, used for line graphs, TSP(1,2)
//!   instances and the reduction gadgets (§2.2, §4);
//! * [`mod@line_graph`] — the line graph `L(G)` construction that turns
//!   pebbling into a traveling-salesman path problem (Propositions 2.1/2.2);
//! * [`hamilton`] — exact Hamiltonian-path search (perfect pebblings exist
//!   iff `L(G)` is traceable, Proposition 2.1);
//! * [`generators`] — every graph family the paper mentions, including the
//!   worst-case family `G_n` of Figure 1;
//! * [`components`], [`traversal`], [`properties`] — the structural
//!   subroutines (Betti number `β₀`, DFS trees, complete-bipartite tests)
//!   used by the bounds and the 1.25-approximation of Theorem 3.1;
//! * [`dot`] — DOT export used to regenerate the paper's figures.

pub mod bipartite;
pub mod canon;
pub mod components;
pub mod dot;
pub mod generators;
pub mod graph;
pub mod hamilton;
pub mod line_graph;
pub mod matching;
pub mod metrics;
pub mod properties;
pub mod traversal;

pub use bipartite::{quotient, BipartiteGraph, Side, Vertex};
pub use components::{betti_number, ComponentMap};
pub use graph::Graph;
pub use line_graph::line_graph;
pub use matching::{maximum_matching, Matching};
