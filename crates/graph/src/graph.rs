//! General undirected graphs.
//!
//! Used for line graphs `L(G)` (§2.2), the TSP(1,2) instances of §4 (whose
//! weight-1 edges form a bounded-degree graph), and the diamond gadget of
//! Figure 2.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A simple undirected graph on vertices `0..n` with adjacency lists and a
/// sorted edge list (`u < v` for every stored edge).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "GraphData", into = "GraphData")]
pub struct Graph {
    n: u32,
    edges: Vec<(u32, u32)>,
    adj: Vec<Vec<u32>>,
}

#[derive(Serialize, Deserialize)]
struct GraphData {
    n: u32,
    edges: Vec<(u32, u32)>,
}

impl From<GraphData> for Graph {
    fn from(d: GraphData) -> Self {
        Graph::new(d.n, d.edges)
    }
}

impl From<Graph> for GraphData {
    fn from(g: Graph) -> Self {
        GraphData {
            n: g.n,
            edges: g.edges,
        }
    }
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Edges are
    /// normalized to `u < v`, sorted, and deduplicated; self-loops are
    /// rejected.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(n: u32, edges: Vec<(u32, u32)>) -> Self {
        let mut norm: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| {
                assert!(u < n && v < n, "edge ({u},{v}) out of range (n={n})");
                assert!(u != v, "self-loop at {u}");
                if u < v {
                    (u, v)
                } else {
                    (v, u)
                }
            })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        let mut adj = vec![Vec::new(); n as usize];
        for &(u, v) in &norm {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        Graph {
            n,
            edges: norm,
            adj,
        }
    }

    /// Empty graph on `n` vertices.
    pub fn empty(n: u32) -> Self {
        Graph::new(n, Vec::new())
    }

    /// Complete graph `K_n`.
    pub fn complete(n: u32) -> Self {
        let mut edges = Vec::with_capacity(n as usize * (n as usize).saturating_sub(1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        Graph::new(n, edges)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sorted `(u, v)` edge list with `u < v`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Sorted neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Adjacency test (binary search over the sorted neighbour list).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Adds an edge, keeping invariants. No-op if present.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(u < self.n && v < self.n && u != v);
        if self.has_edge(u, v) {
            return;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        let pos = self.edges.binary_search(&e).unwrap_err();
        self.edges.insert(pos, e);
        let pu = self.adj[u as usize].binary_search(&v).unwrap_err();
        self.adj[u as usize].insert(pu, v);
        let pv = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pv, u);
    }

    /// Removes an edge if present.
    pub fn remove_edge(&mut self, u: u32, v: u32) {
        let e = if u < v { (u, v) } else { (v, u) };
        if let Ok(pos) = self.edges.binary_search(&e) {
            self.edges.remove(pos);
            let pu = self.adj[u as usize].binary_search(&v).unwrap();
            self.adj[u as usize].remove(pu);
            let pv = self.adj[v as usize].binary_search(&u).unwrap();
            self.adj[v as usize].remove(pv);
        }
    }

    /// Whether the graph is connected. The empty graph and the one-vertex
    /// graph count as connected.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n as usize];
        let mut queue = VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.n
    }

    /// Connected component ids (`0..k`, in order of first vertex).
    pub fn component_ids(&self) -> Vec<u32> {
        let mut comp = vec![u32::MAX; self.n as usize];
        let mut next = 0;
        for start in 0..self.n {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            comp[start as usize] = next;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in self.neighbors(u) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// The subgraph induced by `keep` (vertices re-indexed densely in the
    /// order they appear in `keep`). Returns the subgraph and the map from
    /// new indices back to old.
    pub fn induced_subgraph(&self, keep: &[u32]) -> (Graph, Vec<u32>) {
        let mut new_of = vec![u32::MAX; self.n as usize];
        for (new, &old) in keep.iter().enumerate() {
            assert!(
                new_of[old as usize] == u32::MAX,
                "duplicate vertex {old} in keep"
            );
            new_of[old as usize] = new as u32;
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            let (nu, nv) = (new_of[u as usize], new_of[v as usize]);
            if nu != u32::MAX && nv != u32::MAX {
                edges.push((nu, nv));
            }
        }
        (Graph::new(keep.len() as u32, edges), keep.to_vec())
    }

    /// Whether `vs` are pairwise adjacent (a clique).
    pub fn is_clique(&self, vs: &[u32]) -> bool {
        for (i, &u) in vs.iter().enumerate() {
            for &v in &vs[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes() {
        let g = Graph::new(4, vec![(2, 1), (1, 2), (0, 3)]);
        assert_eq!(g.edges(), &[(0, 3), (1, 2)]);
        assert!(g.has_edge(2, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Graph::new(2, vec![(1, 1)]);
    }

    #[test]
    fn complete_graph() {
        let k5 = Graph::complete(5);
        assert_eq!(k5.edge_count(), 10);
        assert_eq!(k5.max_degree(), 4);
        assert!(k5.is_clique(&[0, 1, 2, 3, 4]));
        assert!(k5.is_connected());
    }

    #[test]
    fn add_remove_edge() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 2);
        g.add_edge(2, 0); // no-op
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(2), &[0]);
        g.remove_edge(0, 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        g.remove_edge(0, 2); // no-op
    }

    #[test]
    fn connectivity() {
        assert!(Graph::empty(0).is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(!Graph::empty(2).is_connected());
        let path = Graph::new(3, vec![(0, 1), (1, 2)]);
        assert!(path.is_connected());
        let split = Graph::new(4, vec![(0, 1), (2, 3)]);
        assert!(!split.is_connected());
        assert_eq!(split.component_ids(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn induced_subgraph_reindexes() {
        let g = Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (sub, back) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edges(), &[(0, 1)]); // only 1-2 survives
        assert_eq!(back, vec![1, 2, 4]);
    }

    #[test]
    fn clique_detection() {
        let g = Graph::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2]));
        assert!(g.is_clique(&[]));
    }
}
