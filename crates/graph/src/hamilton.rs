//! Exact Hamiltonian-path search.
//!
//! Proposition 2.1 of the paper: a connected graph `G` with `m` edges has a
//! *perfect* pebbling scheme (`π(G) = m`) iff its line graph `L(G)` has a
//! Hamiltonian path. This module provides the exact (exponential) search
//! used to verify that equivalence on small instances and to certify the
//! Figure 2 diamond gadget (which needs *all* Hamiltonian paths inspected).
//!
//! The existence search is a Held–Karp-style bitmask DP: `dp[mask]` is the
//! set of possible endpoints of a path visiting exactly `mask`. This is
//! `O(2ⁿ · n · Δ)` time and `O(2ⁿ)` words of memory, practical to `n ≈ 24`.

use crate::graph::Graph;

/// Hard cap for the bitmask DP (memory is `2ⁿ` u32 words).
pub const MAX_DP_VERTICES: u32 = 26;

fn endpoint_sets(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    assert!(
        n <= MAX_DP_VERTICES,
        "hamiltonian path DP supports at most {MAX_DP_VERTICES} vertices, got {n}"
    );
    let n = n as usize;
    let mut dp = vec![0u32; 1 << n];
    for v in 0..n {
        dp[1 << v] = 1 << v;
    }
    for mask in 1..(1usize << n) {
        let ends = dp[mask];
        if ends == 0 {
            continue;
        }
        let mut e = ends;
        while e != 0 {
            let v = e.trailing_zeros();
            e &= e - 1;
            for &w in g.neighbors(v) {
                let bit = 1usize << w;
                if mask & bit == 0 {
                    dp[mask | bit] |= bit as u32;
                }
            }
        }
    }
    dp
}

/// Whether `g` has a Hamiltonian path. Graphs with 0 or 1 vertices count
/// as trivially traceable.
pub fn has_hamiltonian_path(g: &Graph) -> bool {
    let n = g.vertex_count() as usize;
    if n <= 1 {
        return true;
    }
    let dp = endpoint_sets(g);
    dp[(1usize << n) - 1] != 0
}

/// Finds a Hamiltonian path, if one exists, as a vertex sequence.
pub fn hamiltonian_path(g: &Graph) -> Option<Vec<u32>> {
    let n = g.vertex_count() as usize;
    if n == 0 {
        return Some(Vec::new());
    }
    if n == 1 {
        return Some(vec![0]);
    }
    let dp = endpoint_sets(g);
    let full = (1usize << n) - 1;
    if dp[full] == 0 {
        return None;
    }
    Some(reconstruct(g, &dp, full, dp[full].trailing_zeros()))
}

/// Finds a Hamiltonian path with prescribed endpoints `s` and `t`, if one
/// exists. The returned path starts at `s` and ends at `t`.
pub fn hamiltonian_path_between(g: &Graph, s: u32, t: u32) -> Option<Vec<u32>> {
    let n = g.vertex_count() as usize;
    assert!(s != t, "endpoints must differ");
    assert!(
        n as u32 <= MAX_DP_VERTICES,
        "hamiltonian path DP supports at most {MAX_DP_VERTICES} vertices, got {n}"
    );
    if n == 2 {
        return g.has_edge(s, t).then(|| vec![s, t]);
    }
    let full = (1usize << n) - 1;
    // Start-constrained DP: dp2[mask] = endpoints of paths that start at s
    // and visit exactly mask.
    let mut dp2 = vec![0u32; 1 << n];
    dp2[1usize << s] = 1 << s;
    for mask in 1..(1usize << n) {
        let ends = dp2[mask];
        if ends == 0 {
            continue;
        }
        let mut e = ends;
        while e != 0 {
            let v = e.trailing_zeros();
            e &= e - 1;
            for &w in g.neighbors(v) {
                let bit = 1usize << w;
                if mask & bit == 0 {
                    dp2[mask | bit] |= bit as u32;
                }
            }
        }
    }
    if dp2[full] & (1 << t) == 0 {
        return None;
    }
    let mut path = reconstruct(g, &dp2, full, t);
    // reconstruct returns the path reversed from endpoint back to the
    // single-vertex mask, which here is forced to start at s.
    debug_assert_eq!(path[0], t);
    path.reverse();
    debug_assert_eq!((path[0], *path.last().unwrap()), (s, t));
    Some(path)
}

fn reconstruct(g: &Graph, dp: &[u32], mut mask: usize, mut v: u32) -> Vec<u32> {
    let mut path = vec![v];
    while mask.count_ones() > 1 {
        let prev_mask = mask & !(1usize << v);
        let candidates = dp[prev_mask];
        let mut found = None;
        for &u in g.neighbors(v) {
            if candidates & (1 << u) != 0 && prev_mask & (1usize << u) != 0 {
                found = Some(u);
                break;
            }
        }
        let u = found.expect("dp table is consistent");
        path.push(u);
        mask = prev_mask;
        v = u;
    }
    path
}

/// Enumerates every Hamiltonian path of `g` (up to direction: each path is
/// reported once, with `path[0] ≤ path[last]`), invoking `f` for each.
/// Backtracking search — use only on small graphs (the Figure 2 gadget has
/// 11 vertices).
pub fn for_each_hamiltonian_path(g: &Graph, mut f: impl FnMut(&[u32])) {
    let n = g.vertex_count() as usize;
    if n == 0 {
        return;
    }
    if n == 1 {
        f(&[0]);
        return;
    }
    let mut path: Vec<u32> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    fn rec(
        g: &Graph,
        path: &mut Vec<u32>,
        used: &mut [bool],
        n: usize,
        f: &mut impl FnMut(&[u32]),
    ) {
        if path.len() == n {
            if path[0] <= *path.last().unwrap() {
                f(path);
            }
            return;
        }
        let last = *path.last().unwrap();
        for &w in g.neighbors(last) {
            if !used[w as usize] {
                used[w as usize] = true;
                path.push(w);
                rec(g, path, used, n, f);
                path.pop();
                used[w as usize] = false;
            }
        }
    }
    for start in 0..n as u32 {
        used[start as usize] = true;
        path.push(start);
        rec(g, &mut path, &mut used, n, &mut f);
        path.pop();
        used[start as usize] = false;
    }
}

/// The set of unordered endpoint pairs over all Hamiltonian paths of `g`.
pub fn hamiltonian_endpoint_pairs(g: &Graph) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for_each_hamiltonian_path(g, |p| {
        let e = (p[0], *p.last().unwrap());
        let e = if e.0 <= e.1 { e } else { (e.1, e.0) };
        if !pairs.contains(&e) {
            pairs.push(e);
        }
    });
    pairs.sort_unstable();
    pairs
}

/// Validates that `path` is a Hamiltonian path of `g`.
pub fn is_hamiltonian_path(g: &Graph, path: &[u32]) -> bool {
    let n = g.vertex_count() as usize;
    if path.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in path {
        if (v as usize) >= n || seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_graphs() {
        assert!(has_hamiltonian_path(&Graph::empty(0)));
        assert!(has_hamiltonian_path(&Graph::empty(1)));
        assert!(!has_hamiltonian_path(&Graph::empty(2)));
    }

    #[test]
    fn path_graph_is_traceable() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let p = hamiltonian_path(&g).unwrap();
        assert!(is_hamiltonian_path(&g, &p));
        assert_eq!(hamiltonian_endpoint_pairs(&g), vec![(0, 3)]);
    }

    #[test]
    fn star_is_not_traceable() {
        // K_{1,3} has no Hamiltonian path.
        let g = Graph::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        assert!(!has_hamiltonian_path(&g));
        assert!(hamiltonian_path(&g).is_none());
    }

    #[test]
    fn complete_graph_any_endpoints() {
        let g = Graph::complete(5);
        assert!(has_hamiltonian_path(&g));
        for s in 0..5 {
            for t in 0..5 {
                if s != t {
                    let p = hamiltonian_path_between(&g, s, t).unwrap();
                    assert!(is_hamiltonian_path(&g, &p));
                    assert_eq!(p[0], s);
                    assert_eq!(*p.last().unwrap(), t);
                }
            }
        }
        // K5 has paths between all 10 pairs
        assert_eq!(hamiltonian_endpoint_pairs(&g).len(), 10);
    }

    #[test]
    fn constrained_endpoints_respected() {
        // path 0-1-2-3: only 0..3 works
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert!(hamiltonian_path_between(&g, 0, 3).is_some());
        assert!(hamiltonian_path_between(&g, 3, 0).is_some());
        assert!(hamiltonian_path_between(&g, 0, 2).is_none());
        assert!(hamiltonian_path_between(&g, 1, 2).is_none());
    }

    #[test]
    fn cycle_has_all_adjacent_breaks() {
        // C5: hamiltonian paths are the cycle minus one edge.
        let g = Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let pairs = hamiltonian_endpoint_pairs(&g);
        // endpoints of each path are the two ends of a removed edge
        assert_eq!(pairs, vec![(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn enumeration_counts_k4() {
        // K4 has 4!/2 = 12 Hamiltonian paths up to direction.
        let mut count = 0;
        for_each_hamiltonian_path(&Graph::complete(4), |_| count += 1);
        assert_eq!(count, 12);
    }

    #[test]
    fn spider_line_graph_is_not_traceable() {
        // L(G_n) for the Fig 1 family: K_n + n pendants. For n >= 3 there
        // is no Hamiltonian path (two pendants force >2 endpoints).
        use crate::{generators, line_graph::line_graph};
        assert!(!has_hamiltonian_path(&line_graph(&generators::spider(3))));
        assert!(!has_hamiltonian_path(&line_graph(&generators::spider(4))));
        // n = 2: G_2 is a path of 4 edges, L is a path -> traceable.
        assert!(has_hamiltonian_path(&line_graph(&generators::spider(2))));
    }

    #[test]
    fn validator_rejects_bad_paths() {
        let g = Graph::new(3, vec![(0, 1), (1, 2)]);
        assert!(is_hamiltonian_path(&g, &[0, 1, 2]));
        assert!(!is_hamiltonian_path(&g, &[0, 2, 1])); // 0-2 not an edge
        assert!(!is_hamiltonian_path(&g, &[0, 1])); // too short
        assert!(!is_hamiltonian_path(&g, &[0, 1, 1])); // repeat
    }
}
