//! Line graphs `L(G)` (§2.2 of the paper).
//!
//! "The line graph `L(G)` of a graph `G` is a graph in which each edge in
//! `G` is represented by a node. Two nodes in `L(G)` are adjacent iff the
//! corresponding edges in `G` share an end point."
//!
//! Pebbling `G` is a traveling-salesman path over `L(G)` viewed as a
//! complete graph with weight 1 on `L(G)`'s edges and 2 elsewhere
//! (Propositions 2.1 and 2.2). Two classical facts the paper uses in the
//! proof of Theorem 3.1 — `L(G)` is connected when `G` is, and `L(G)` is
//! `K_{1,3}`-free — are exposed here as checkable properties.

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;

/// Builds `L(G)` for a bipartite graph. Vertex `e` of the result
/// corresponds to edge `g.edges()[e]`; two vertices are adjacent iff the
/// edges share an endpoint (in either partition).
///
/// Runs in `O(Σ_v deg(v)²)` — the size of the output.
pub fn line_graph(g: &BipartiteGraph) -> Graph {
    let m = g.edge_count();
    // For each vertex, collect the ids of its incident edges, then join
    // every pair within a bucket.
    let mut left_bucket: Vec<Vec<u32>> = vec![Vec::new(); g.left_count() as usize];
    let mut right_bucket: Vec<Vec<u32>> = vec![Vec::new(); g.right_count() as usize];
    for (e, &(l, r)) in g.edges().iter().enumerate() {
        left_bucket[l as usize].push(e as u32);
        right_bucket[r as usize].push(e as u32);
    }
    let mut edges = Vec::new();
    for bucket in left_bucket.iter().chain(right_bucket.iter()) {
        for (i, &a) in bucket.iter().enumerate() {
            for &b in &bucket[i + 1..] {
                edges.push((a, b));
            }
        }
    }
    Graph::new(m as u32, edges)
}

/// Line graph of a *general* graph (used by Theorem 4.4's incidence-graph
/// reduction, where `L(B)` is described as "replace every vertex of degree
/// `i` by a clique of `i` vertices").
pub fn line_graph_general(g: &Graph) -> Graph {
    let m = g.edge_count();
    let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); g.vertex_count() as usize];
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        bucket[u as usize].push(e as u32);
        bucket[v as usize].push(e as u32);
    }
    let mut edges = Vec::new();
    for b in &bucket {
        for (i, &a) in b.iter().enumerate() {
            for &c in &b[i + 1..] {
                edges.push((a, c));
            }
        }
    }
    Graph::new(m as u32, edges)
}

/// Finds an induced claw (`K_{1,3}`) in `g`, if any: returns
/// `(center, [leaf; 3])` where the leaves are pairwise non-adjacent
/// neighbours of the centre. Line graphs never contain one (Harary; used
/// by Theorem 3.1).
pub fn find_claw(g: &Graph) -> Option<(u32, [u32; 3])> {
    for c in 0..g.vertex_count() {
        let nbrs = g.neighbors(c);
        if nbrs.len() < 3 {
            continue;
        }
        for (i, &a) in nbrs.iter().enumerate() {
            for (j, &b) in nbrs.iter().enumerate().skip(i + 1) {
                if g.has_edge(a, b) {
                    continue;
                }
                for &d in nbrs.iter().skip(j + 1) {
                    if !g.has_edge(a, d) && !g.has_edge(b, d) {
                        return Some((c, [a, b, d]));
                    }
                }
            }
        }
    }
    None
}

/// Whether `g` is `K_{1,3}`-free (claw-free).
pub fn is_claw_free(g: &Graph) -> bool {
    find_claw(g).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_of_single_edge() {
        let g = BipartiteGraph::new(1, 1, vec![(0, 0)]);
        let l = line_graph(&g);
        assert_eq!(l.vertex_count(), 1);
        assert_eq!(l.edge_count(), 0);
    }

    #[test]
    fn line_graph_of_path() {
        // r0-s0-r1-s1: edges e0=(0,0) e1=(1,0) e2=(1,1); L is a path.
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (1, 0), (1, 1)]);
        let l = line_graph(&g);
        assert_eq!(l.vertex_count(), 3);
        assert_eq!(l.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn line_graph_of_star_is_clique() {
        // K_{1,4}: all edges share the centre, L = K4.
        let g = BipartiteGraph::new(1, 4, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        let l = line_graph(&g);
        assert_eq!(l, Graph::complete(4));
    }

    #[test]
    fn line_graph_of_k22_is_c4_plus_diagonals() {
        // K_{2,2} has 4 edges; every pair shares an endpoint except the two
        // disjoint "diagonal" pairs. L(K_{2,2}) = C4.
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        let l = line_graph(&g);
        assert_eq!(l.edge_count(), 4);
        // e0=(0,0), e3=(1,1) disjoint; e1=(0,1), e2=(1,0) disjoint.
        assert!(!l.has_edge(0, 3));
        assert!(!l.has_edge(1, 2));
    }

    #[test]
    fn line_graphs_are_claw_free_and_inherit_connectivity() {
        use crate::generators;
        for g in [
            generators::complete_bipartite(3, 4),
            generators::spider(5),
            generators::path(7),
        ] {
            let l = line_graph(&g);
            assert!(is_claw_free(&l), "L(G) must be claw-free for {g}");
            assert!(l.is_connected(), "L(G) must be connected for connected {g}");
        }
    }

    #[test]
    fn claw_is_detected() {
        // K_{1,3} itself.
        let claw = Graph::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        let (c, leaves) = find_claw(&claw).expect("claw exists");
        assert_eq!(c, 0);
        assert_eq!(leaves, [1, 2, 3]);
        assert!(!is_claw_free(&claw));
        assert!(is_claw_free(&Graph::complete(5)));
    }

    #[test]
    fn general_line_graph_matches_bipartite_one() {
        let b = BipartiteGraph::new(2, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2)]);
        // Same graph as a general graph: left vertices 0..2, right 2..5.
        let g = Graph::new(5, vec![(0, 2), (0, 3), (1, 3), (1, 4)]);
        assert_eq!(line_graph(&b), line_graph_general(&g));
    }
}
