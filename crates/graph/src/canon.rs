//! Canonical forms for small bipartite components — the fingerprint
//! behind `jp-pebble`'s memo cache.
//!
//! Lemma 2.2 (additivity) reduces every pebbling problem to its
//! connected components, and real workloads repeat the same component
//! *shapes* endlessly (equijoin `K_{k,l}` blocks, matchings, short
//! paths). Two isomorphic components have the same optimal cost and —
//! up to relabeling — the same optimal scheme, so a cache keyed by a
//! canonical form turns the repeats into hash lookups.
//!
//! [`canonical_form`] computes an exact canonical labeling in two
//! stages:
//!
//! 1. **degree-sequence refinement** (1-WL / color refinement): vertices
//!    start colored by `(side, degree)` and are repeatedly split by the
//!    multiset of neighbor colors until stable. Color ids are ranks of
//!    sorted signatures, so they are isomorphism-invariant;
//! 2. **canonical labeling by exhaustion within color classes**: only
//!    permutations inside a refinement class can matter, so the minimum
//!    relabeled edge list over the (budgeted) product of per-class
//!    permutations is a true canonical form. Both orientations are
//!    tried so a component and its mirror (`K_{2,3}` vs `K_{3,2}`)
//!    share a key.
//!
//! Highly symmetric components (large classes refinement cannot split,
//! e.g. crown graphs) blow the [`MAX_CANON_LABELINGS`] budget; the
//! function then returns `None` and the caller simply solves fresh —
//! canonicalization is an accelerator, never an obligation.

use crate::bipartite::BipartiteGraph;

/// Components with more vertices than this are not canonicalized —
/// beyond it the refinement cost and key size outgrow the solve they
/// would save.
pub const MAX_CANON_VERTICES: u32 = 64;

/// Upper bound on candidate labelings (the product of per-class
/// factorials, both sides, both orientations counted separately).
pub const MAX_CANON_LABELINGS: u64 = 20_000;

/// Largest refinement class the exhaustive stage will permute.
pub const MAX_CANON_CLASS: usize = 7;

/// The canonical fingerprint of a bipartite graph: isomorphic graphs
/// (including mirror images) produce equal keys, non-isomorphic graphs
/// produce distinct keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey {
    /// Vertices on the canonical left side.
    pub left: u32,
    /// Vertices on the canonical right side.
    pub right: u32,
    /// The lexicographically minimal relabeled edge list, sorted.
    pub edges: Vec<(u32, u32)>,
}

/// A canonical key together with the labeling that produced it, so
/// edge-level data attached to the key (e.g. a cached pebbling order)
/// can be translated to and from this graph's labels.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The graph's canonical fingerprint.
    pub key: CanonicalKey,
    /// Whether the canonical left side is this graph's *right* side.
    pub swapped: bool,
    to_canon_a: Vec<u32>,
    to_canon_b: Vec<u32>,
    from_canon_a: Vec<u32>,
    from_canon_b: Vec<u32>,
}

impl CanonicalForm {
    /// The canonical edge id of this graph's edge `e`, i.e. the index
    /// of its relabeled pair in `key.edges`. `None` if `e` is out of
    /// range (the form was built for a different graph).
    pub fn canonical_edge(&self, g: &BipartiteGraph, e: usize) -> Option<usize> {
        let &(l, r) = g.edges().get(e)?;
        let (av, bv) = if self.swapped { (r, l) } else { (l, r) };
        let a = self.to_canon_a.get(av as usize).copied()?;
        let b = self.to_canon_b.get(bv as usize).copied()?;
        self.key.edges.binary_search(&(a, b)).ok()
    }

    /// The edge id in `g` of the canonical edge `k`. `None` if `k` is
    /// out of range or the pair is not an edge of `g` (the form was
    /// built for a different graph).
    pub fn original_edge(&self, g: &BipartiteGraph, k: usize) -> Option<usize> {
        let &(a, b) = self.key.edges.get(k)?;
        let av = self.from_canon_a.get(a as usize).copied()?;
        let bv = self.from_canon_b.get(b as usize).copied()?;
        let (l, r) = if self.swapped { (bv, av) } else { (av, bv) };
        g.edge_index(l, r)
    }
}

/// Computes the canonical form of `g`, or `None` when the graph is too
/// large or too symmetric for the labeling budget (see the module
/// docs) — callers then solve without the cache.
pub fn canonical_form(g: &BipartiteGraph) -> Option<CanonicalForm> {
    if g.vertex_count() > MAX_CANON_VERTICES {
        return None;
    }
    // Orientation 1: canonical left = g's left.
    let fwd: Vec<(u32, u32)> = g.edges().to_vec();
    // Orientation 2: the mirror image.
    let rev: Vec<(u32, u32)> = g.edges().iter().map(|&(l, r)| (r, l)).collect();
    let cand_fwd = best_labeling(g.left_count(), g.right_count(), &fwd);
    let cand_rev = best_labeling(g.right_count(), g.left_count(), &rev);
    let (swapped, best) = match (cand_fwd, cand_rev) {
        (Some(f), Some(r)) => {
            let fk = (g.left_count(), g.right_count(), &f.edges);
            let rk = (g.right_count(), g.left_count(), &r.edges);
            if rk < fk {
                (true, r)
            } else {
                (false, f)
            }
        }
        // Both orientations face the same class structure, so a budget
        // bail on one side is a bail on both; `None` otherwise would
        // make the key depend on which side happened to fit.
        _ => return None,
    };
    let (left, right) = if swapped {
        (g.right_count(), g.left_count())
    } else {
        (g.left_count(), g.right_count())
    };
    Some(CanonicalForm {
        key: CanonicalKey {
            left,
            right,
            edges: best.edges,
        },
        swapped,
        from_canon_a: invert(&best.label_a),
        from_canon_b: invert(&best.label_b),
        to_canon_a: best.label_a,
        to_canon_b: best.label_b,
    })
}

/// The winning labeling of one orientation: the minimal relabeled edge
/// list plus the vertex → canonical-label maps that produced it.
struct Labeling {
    edges: Vec<(u32, u32)>,
    label_a: Vec<u32>,
    label_b: Vec<u32>,
}

/// `label[v] = canonical label` → `inv[label] = v`.
fn invert(label: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; label.len()];
    for (v, &lab) in label.iter().enumerate() {
        if let Some(slot) = inv.get_mut(lab as usize) {
            *slot = v as u32;
        }
    }
    inv
}

/// One refinement class on one side: the vertices sharing a final
/// color, plus every candidate ordering of them the exhaustive stage
/// will try (a single ordering when permuting cannot change the edge
/// list).
struct Class {
    /// `true` for side A (canonical left), `false` for side B.
    side_a: bool,
    /// First canonical label of the class's block.
    base: u32,
    /// Candidate orderings of the class's vertices.
    perms: Vec<Vec<u32>>,
}

/// Exact canonical labeling of one orientation: WL refinement, then
/// the lexicographically minimal relabeled edge list over all
/// per-class permutations. `None` when the budget is blown.
fn best_labeling(a_count: u32, b_count: u32, edges: &[(u32, u32)]) -> Option<Labeling> {
    let (colors_a, colors_b) = refine(a_count, b_count, edges);
    let classes = build_classes(&colors_a, &colors_b, edges)?;

    let mut label_a = vec![0u32; a_count as usize];
    let mut label_b = vec![0u32; b_count as usize];
    let mut counters = vec![0usize; classes.len()];
    let mut best: Option<Labeling> = None;
    loop {
        // Materialize the labeling selected by the current counters.
        for (class, &c) in classes.iter().zip(&counters) {
            let target = if class.side_a {
                &mut label_a
            } else {
                &mut label_b
            };
            let perm = class.perms.get(c)?; // counters stay in range
            for (offset, &v) in perm.iter().enumerate() {
                if let Some(slot) = target.get_mut(v as usize) {
                    *slot = class.base + offset as u32;
                }
            }
        }
        let mut relabeled: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(av, bv)| {
                let a = label_a.get(av as usize).copied().unwrap_or(u32::MAX);
                let b = label_b.get(bv as usize).copied().unwrap_or(u32::MAX);
                (a, b)
            })
            .collect();
        relabeled.sort_unstable();
        let better = match &best {
            Some(b) => relabeled < b.edges,
            None => true,
        };
        if better {
            best = Some(Labeling {
                edges: relabeled,
                label_a: label_a.clone(),
                label_b: label_b.clone(),
            });
        }
        // Advance the odometer over per-class permutation choices.
        let mut done = true;
        for (c, class) in counters.iter_mut().zip(&classes) {
            *c += 1;
            if *c < class.perms.len() {
                done = false;
                break;
            }
            *c = 0;
        }
        if done {
            return best;
        }
    }
}

/// 1-WL color refinement over both sides. Returns the stable color of
/// every vertex, per side; equal colors ⇒ the vertices are not
/// distinguished by any degree-sequence invariant.
fn refine(a_count: u32, b_count: u32, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<usize>) {
    let mut adj_a: Vec<Vec<u32>> = vec![Vec::new(); a_count as usize];
    let mut adj_b: Vec<Vec<u32>> = vec![Vec::new(); b_count as usize];
    for &(av, bv) in edges {
        if let Some(n) = adj_a.get_mut(av as usize) {
            n.push(bv);
        }
        if let Some(n) = adj_b.get_mut(bv as usize) {
            n.push(av);
        }
    }
    // Initial colors: rank of (side, degree) among the distinct pairs.
    let sig0: Vec<(usize, usize)> = adj_a
        .iter()
        .map(|n| (0usize, n.len()))
        .chain(adj_b.iter().map(|n| (1usize, n.len())))
        .collect();
    let mut colors = rank(&sig0);
    let n = colors.len();
    let mut distinct = count_distinct(&colors);
    for _ in 0..n {
        // Signature: own color + sorted neighbor-color multiset. B-side
        // colors live at offset `a_count` in the flat color vector.
        let sig: Vec<(usize, Vec<usize>)> = (0..n)
            .map(|v| {
                let own = colors.get(v).copied().unwrap_or(0);
                let nbrs = if v < a_count as usize {
                    adj_a.get(v).map(Vec::as_slice).unwrap_or(&[])
                } else {
                    adj_b
                        .get(v - a_count as usize)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                };
                let mut nc: Vec<usize> = nbrs
                    .iter()
                    .filter_map(|&u| {
                        let flat = if v < a_count as usize {
                            a_count as usize + u as usize
                        } else {
                            u as usize
                        };
                        colors.get(flat).copied()
                    })
                    .collect();
                nc.sort_unstable();
                (own, nc)
            })
            .collect();
        colors = rank(&sig);
        let d = count_distinct(&colors);
        if d == distinct {
            break;
        }
        distinct = d;
    }
    let colors_b = colors.split_off(a_count as usize);
    (colors, colors_b)
}

/// Replaces each signature by the rank of its value among the sorted
/// distinct signatures — canonical color ids.
fn rank<T: Ord + Clone>(sigs: &[T]) -> Vec<usize> {
    let mut sorted: Vec<T> = sigs.to_vec();
    sorted.sort();
    sorted.dedup();
    sigs.iter()
        .map(|s| sorted.binary_search(s).unwrap_or(0))
        .collect()
}

fn count_distinct(colors: &[usize]) -> usize {
    let mut c = colors.to_vec();
    c.sort_unstable();
    c.dedup();
    c.len()
}

/// Groups each side into refinement classes (in color order, so the
/// label blocks are isomorphism-invariant) and precomputes each class's
/// candidate permutations. `None` when a class is too large or the
/// total labeling count blows [`MAX_CANON_LABELINGS`].
fn build_classes(
    colors_a: &[usize],
    colors_b: &[usize],
    edges: &[(u32, u32)],
) -> Option<Vec<Class>> {
    let mut touched_a = vec![false; colors_a.len()];
    let mut touched_b = vec![false; colors_b.len()];
    for &(av, bv) in edges {
        if let Some(t) = touched_a.get_mut(av as usize) {
            *t = true;
        }
        if let Some(t) = touched_b.get_mut(bv as usize) {
            *t = true;
        }
    }
    let mut classes = Vec::new();
    let mut budget = 1u64;
    for (side_a, colors, touched) in [(true, colors_a, &touched_a), (false, colors_b, &touched_b)] {
        let mut by_color: std::collections::BTreeMap<usize, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (v, &c) in colors.iter().enumerate() {
            by_color.entry(c).or_default().push(v as u32);
        }
        let mut base = 0u32;
        for (_, members) in by_color {
            let size = members.len();
            // Permuting vertices no edge touches cannot change the edge
            // list; give those classes (and singletons) one ordering.
            let needs_perms = size > 1
                && members
                    .iter()
                    .any(|&v| touched.get(v as usize) == Some(&true));
            let perms = if needs_perms {
                if size > MAX_CANON_CLASS {
                    return None;
                }
                let all = permutations(&members);
                budget = budget.saturating_mul(all.len() as u64);
                if budget > MAX_CANON_LABELINGS {
                    return None;
                }
                all
            } else {
                vec![members.clone()]
            };
            classes.push(Class {
                side_a,
                base,
                perms,
            });
            base += size as u32;
        }
    }
    Some(classes)
}

/// All permutations of `items`, by Heap's algorithm.
fn permutations(items: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut a = items.to_vec();
    let n = a.len();
    let mut c = vec![0usize; n];
    out.push(a.clone());
    let mut i = 0;
    while i < n {
        let Some(ci) = c.get_mut(i) else {
            break; // unreachable: i < n == c.len() by construction
        };
        if *ci < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(*ci, i);
            }
            out.push(a.clone());
            *ci += 1;
            i = 0;
        } else {
            *ci = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Relabels `g` by the given vertex permutations (left and right).
    fn relabel(g: &BipartiteGraph, lperm: &[u32], rperm: &[u32]) -> BipartiteGraph {
        let edges = g
            .edges()
            .iter()
            .map(|&(l, r)| (lperm[l as usize], rperm[r as usize]))
            .collect();
        BipartiteGraph::new(g.left_count(), g.right_count(), edges)
    }

    fn key(g: &BipartiteGraph) -> CanonicalKey {
        canonical_form(g).expect("canonicalizable").key
    }

    #[test]
    fn isomorphic_relabelings_share_a_key() {
        for g in [
            generators::spider(4),
            generators::path(7),
            generators::matching(5),
            generators::complete_bipartite(3, 4),
            generators::random_connected_bipartite(4, 4, 9, 3),
            generators::caterpillar(4),
        ] {
            let k = key(&g);
            let lperm: Vec<u32> = (0..g.left_count()).rev().collect();
            let rperm: Vec<u32> = (0..g.right_count())
                .map(|i| (i + 1) % g.right_count())
                .collect();
            assert_eq!(key(&relabel(&g, &lperm, &rperm)), k, "{g}");
        }
    }

    #[test]
    fn mirror_images_share_a_key() {
        assert_eq!(
            key(&generators::complete_bipartite(2, 3)),
            key(&generators::complete_bipartite(3, 2))
        );
        assert_eq!(
            key(&generators::complete_bipartite(1, 5)),
            key(&generators::complete_bipartite(5, 1))
        );
    }

    #[test]
    fn non_isomorphic_graphs_get_distinct_keys() {
        // C8 vs C4 ⊎ C4 (= K_{2,2} ⊎ K_{2,2}): identical degree
        // sequences (2-regular, 4+4 vertices, 8 edges) — refinement
        // alone cannot split them, the exhaustive stage must
        let c8 = generators::cycle(4);
        let c4x2 = generators::cycle(2).disjoint_union(&generators::cycle(2));
        assert_ne!(key(&c8), key(&c4x2));
        assert_ne!(key(&generators::path(5)), key(&generators::path(6)));
        assert_ne!(
            key(&generators::complete_bipartite(2, 3)),
            key(&generators::complete_bipartite(2, 4))
        );
    }

    #[test]
    fn too_symmetric_components_bail_within_budget() {
        // crown(6): 6+6 vertices, all degree 5, WL cannot split either
        // side, 720·720 labelings blow the budget — a clean None
        assert!(canonical_form(&generators::crown(6)).is_none());
    }

    #[test]
    fn canonicalization_is_deterministic() {
        let g = generators::random_connected_bipartite(5, 4, 11, 9);
        let a = canonical_form(&g).unwrap();
        let b = canonical_form(&g).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.swapped, b.swapped);
    }

    #[test]
    fn edge_translation_round_trips() {
        for g in [
            generators::spider(4),
            generators::complete_bipartite(3, 2),
            generators::random_connected_bipartite(4, 5, 10, 1),
        ] {
            let f = canonical_form(&g).unwrap();
            assert_eq!(f.key.edges.len(), g.edge_count());
            let mut seen = vec![false; g.edge_count()];
            for k in 0..f.key.edges.len() {
                let e = f.original_edge(&g, k).expect("maps to an edge");
                assert!(!seen[e], "canonical edge {k} duplicated");
                seen[e] = true;
                assert_eq!(f.canonical_edge(&g, e), Some(k), "round trip of {e}");
            }
            assert!(seen.iter().all(|&s| s), "every edge covered");
        }
    }

    #[test]
    fn translation_carries_schemes_between_isomorphic_copies() {
        // the memo's core soundness property: an edge order expressed in
        // canonical ids lands on corresponding edges of any isomorphic
        // copy
        let g1 = generators::random_connected_bipartite(4, 4, 9, 5);
        let lperm: Vec<u32> = vec![2, 0, 3, 1];
        let rperm: Vec<u32> = vec![1, 3, 0, 2];
        let g2 = relabel(&g1, &lperm, &rperm);
        let f1 = canonical_form(&g1).unwrap();
        let f2 = canonical_form(&g2).unwrap();
        assert_eq!(f1.key, f2.key);
        // the edge correspondence k ↦ (e1, e2) must be induced by a
        // vertex isomorphism (it may differ from (lperm, rperm) by an
        // automorphism of g1, which is fine)
        let mut lmap = vec![None; g1.left_count() as usize];
        let mut rmap = vec![None; g1.right_count() as usize];
        for k in 0..f1.key.edges.len() {
            let e1 = f1.original_edge(&g1, k).unwrap();
            let e2 = f2.original_edge(&g2, k).unwrap();
            let (l1, r1) = g1.edges()[e1];
            let (l2, r2) = g2.edges()[e2];
            for (map, from, to) in [(&mut lmap, l1, l2), (&mut rmap, r1, r2)] {
                match map[from as usize] {
                    None => map[from as usize] = Some(to),
                    Some(prev) => assert_eq!(prev, to, "inconsistent vertex map"),
                }
            }
        }
        // injective on every vertex that carries an edge
        for map in [&lmap, &rmap] {
            let mut targets: Vec<u32> = map.iter().flatten().copied().collect();
            let before = targets.len();
            targets.sort_unstable();
            targets.dedup();
            assert_eq!(targets.len(), before, "vertex map not injective");
        }
    }
}
