//! Maximum matching in general graphs — Edmonds' blossom algorithm.
//!
//! The paper points at Papadimitriou–Yannakakis for approximating
//! `PEBBLE` "within a factor of 7/6"; their TSP(1,2) algorithm is built
//! on matchings. This module supplies the primitive: a maximum matching
//! in an arbitrary graph (line graphs are non-bipartite, so augmenting
//! paths must shrink odd cycles — blossoms).
//!
//! Implementation: the classical `O(V³)` blossom algorithm with an
//! explicit base array (union of blossom contractions), BFS forest, and
//! augmenting-path flipping. Verified against exhaustive search on small
//! graphs and against closed forms on structured families.

use crate::graph::Graph;

/// A matching: `mate[v]` is `v`'s partner or `u32::MAX` when unmatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Partner per vertex (`u32::MAX` = unmatched).
    pub mate: Vec<u32>,
}

impl Matching {
    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.mate.iter().filter(|&&m| m != u32::MAX).count() / 2
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The matched edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, &v)| (v != u32::MAX && (u as u32) < v).then_some((u as u32, v)))
            .collect()
    }

    /// Validates the matching against a graph: partners are mutual,
    /// distinct, and adjacent.
    pub fn validate(&self, g: &Graph) -> bool {
        if self.mate.len() != g.vertex_count() as usize {
            return false;
        }
        self.mate.iter().enumerate().all(|(u, &v)| {
            v == u32::MAX
                || (v != u as u32
                    && (v as usize) < self.mate.len()
                    && self.mate[v as usize] == u as u32
                    && g.has_edge(u as u32, v))
        })
    }
}

/// Computes a maximum matching with Edmonds' blossom algorithm, `O(V³)`.
pub fn maximum_matching(g: &Graph) -> Matching {
    let n = g.vertex_count() as usize;
    const NONE: u32 = u32::MAX;
    let mut mate = vec![NONE; n];
    // greedy warm start
    for u in 0..n as u32 {
        if mate[u as usize] == NONE {
            for &v in g.neighbors(u) {
                if mate[v as usize] == NONE {
                    mate[u as usize] = v;
                    mate[v as usize] = u;
                    break;
                }
            }
        }
    }
    let mut parent = vec![NONE; n]; // BFS forest parent (through matched edges)
    let mut base = vec![0u32; n]; // blossom base per vertex
    let mut q: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut used = vec![false; n];
    let mut blossom = vec![false; n];

    // lowest common ancestor of a and b in the alternating forest
    fn lca(base: &[u32], parent: &[u32], mate: &[u32], mut a: u32, mut b: u32) -> u32 {
        const NONE: u32 = u32::MAX;
        let n = base.len();
        let mut path = vec![false; n];
        loop {
            a = base[a as usize];
            path[a as usize] = true;
            if mate[a as usize] == NONE {
                break;
            }
            a = parent[mate[a as usize] as usize];
        }
        loop {
            b = base[b as usize];
            if path[b as usize] {
                return b;
            }
            b = parent[mate[b as usize] as usize];
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mark_path(
        base: &[u32],
        mate: &[u32],
        parent: &mut [u32],
        blossom: &mut [bool],
        mut v: u32,
        b: u32,
        mut child: u32,
    ) {
        while base[v as usize] != b {
            blossom[base[v as usize] as usize] = true;
            blossom[base[mate[v as usize] as usize] as usize] = true;
            parent[v as usize] = child;
            child = mate[v as usize];
            v = parent[mate[v as usize] as usize];
        }
    }

    // find an augmenting path from root and flip it; returns success
    let mut find_path = |mate: &mut Vec<u32>, root: u32| -> bool {
        used.iter_mut().for_each(|x| *x = false);
        parent.iter_mut().for_each(|x| *x = NONE);
        for (i, b) in base.iter_mut().enumerate() {
            *b = i as u32;
        }
        q.clear();
        q.push_back(root);
        used[root as usize] = true;
        while let Some(v) = q.pop_front() {
            for &to in g.neighbors(v) {
                if base[v as usize] == base[to as usize] || mate[v as usize] == to {
                    continue;
                }
                if to == root
                    || (mate[to as usize] != NONE && parent[mate[to as usize] as usize] != NONE)
                {
                    // blossom found: contract it
                    let curbase = lca(&base, &parent, mate, v, to);
                    blossom.iter_mut().for_each(|x| *x = false);
                    mark_path(&base, mate, &mut parent, &mut blossom, v, curbase, to);
                    mark_path(&base, mate, &mut parent, &mut blossom, to, curbase, v);
                    for i in 0..n {
                        if blossom[base[i] as usize] {
                            base[i] = curbase;
                            if !used[i] {
                                used[i] = true;
                                q.push_back(i as u32);
                            }
                        }
                    }
                } else if parent[to as usize] == NONE {
                    parent[to as usize] = v;
                    if mate[to as usize] == NONE {
                        // augment along the path ending at `to`
                        let mut u = to;
                        while u != NONE {
                            let pv = parent[u as usize];
                            let ppv = mate[pv as usize];
                            mate[u as usize] = pv;
                            mate[pv as usize] = u;
                            u = ppv;
                        }
                        return true;
                    } else {
                        let m = mate[to as usize];
                        if !used[m as usize] {
                            used[m as usize] = true;
                            q.push_back(m);
                        }
                    }
                }
            }
        }
        false
    };

    for v in 0..n as u32 {
        if mate[v as usize] == NONE {
            find_path(&mut mate, v);
        }
    }
    Matching { mate }
}

/// Exhaustive maximum-matching size (reference for tests): branch on each
/// edge. Exponential; tiny graphs only.
pub fn maximum_matching_size_brute(g: &Graph) -> usize {
    fn rec(edges: &[(u32, u32)], used: &mut Vec<bool>) -> usize {
        match edges.split_first() {
            None => 0,
            Some((&(u, v), rest)) => {
                let skip = rec(rest, used);
                if !used[u as usize] && !used[v as usize] {
                    used[u as usize] = true;
                    used[v as usize] = true;
                    let take = 1 + rec(rest, used);
                    used[u as usize] = false;
                    used[v as usize] = false;
                    skip.max(take)
                } else {
                    skip
                }
            }
        }
    }
    let mut used = vec![false; g.vertex_count() as usize];
    rec(g.edges(), &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_families() {
        // path on n vertices: floor(n/2)
        let p5 = Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let m = maximum_matching(&p5);
        assert!(m.validate(&p5));
        assert_eq!(m.len(), 2);
        // K4: perfect matching
        let k4 = Graph::complete(4);
        assert_eq!(maximum_matching(&k4).len(), 2);
        // odd cycle C5: 2 (needs a blossom to see it is not 1)
        let c5 = Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let m = maximum_matching(&c5);
        assert!(m.validate(&c5));
        assert_eq!(m.len(), 2);
        // Petersen graph: perfect matching (size 5)
        let petersen = Graph::new(
            10,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0), // outer C5
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5), // inner pentagram
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9), // spokes
            ],
        );
        let m = maximum_matching(&petersen);
        assert!(m.validate(&petersen));
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn blossom_heavy_case() {
        // two triangles joined by a path — classic blossom trap for
        // non-contracting algorithms.
        let g = Graph::new(
            8,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        );
        let m = maximum_matching(&g);
        assert!(m.validate(&g));
        assert_eq!(m.len(), maximum_matching_size_brute(&g));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use crate::generators::random_bounded_degree;
        for seed in 0..30 {
            let g = random_bounded_degree(9, 4, 12, seed);
            let m = maximum_matching(&g);
            assert!(m.validate(&g), "seed {seed}");
            assert_eq!(m.len(), maximum_matching_size_brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_line_graphs() {
        use crate::{generators, line_graph};
        for seed in 0..10 {
            let b = generators::random_connected_bipartite(4, 4, 9, seed);
            let lg = line_graph(&b);
            let m = maximum_matching(&lg);
            assert!(m.validate(&lg), "seed {seed}");
            assert_eq!(m.len(), maximum_matching_size_brute(&lg), "seed {seed}");
        }
    }

    #[test]
    fn empty_and_trivial() {
        let g = Graph::empty(3);
        let m = maximum_matching(&g);
        assert!(m.is_empty());
        assert!(m.validate(&g));
        assert!(m.edges().is_empty());
        let e = Graph::new(2, vec![(0, 1)]);
        let m = maximum_matching(&e);
        assert_eq!(m.edges(), vec![(0, 1)]);
    }
}
