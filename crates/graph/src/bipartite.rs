//! Bipartite join graphs (§2 of the paper).
//!
//! A join instance over relations `R` and `S` induces the bipartite graph
//! `G = (R, S, E)` with an edge per joining tuple pair. The paper works with
//! the edge set only: "we will remove a priori all isolated vertices, and
//! assume henceforth that all `G` in this paper have no singletons". The
//! [`BipartiteGraph::strip_isolated`] method implements exactly that step.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of the bipartition a vertex belongs to (`R` is left, `S` is
/// right, matching the paper's `G = (R, S, E)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The `R` side (left partition).
    Left,
    /// The `S` side (right partition).
    Right,
}

/// A vertex of a bipartite graph, identified by side and index within that
/// side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Vertex {
    /// Partition the vertex belongs to.
    pub side: Side,
    /// Index within the partition (`0..left_count()` or `0..right_count()`).
    pub index: u32,
}

impl Vertex {
    /// Vertex `index` on the `R` side.
    pub fn left(index: u32) -> Self {
        Vertex {
            side: Side::Left,
            index,
        }
    }

    /// Vertex `index` on the `S` side.
    pub fn right(index: u32) -> Self {
        Vertex {
            side: Side::Right,
            index,
        }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.side {
            Side::Left => write!(f, "r{}", self.index),
            Side::Right => write!(f, "s{}", self.index),
        }
    }
}

/// An undirected bipartite graph with partitions of fixed size and a
/// deduplicated, sorted edge list.
///
/// Edges are pairs `(l, r)` with `l` an index into the left partition and
/// `r` an index into the right partition. Edge indices (positions in
/// [`BipartiteGraph::edges`]) are stable and are the vertex ids of the line
/// graph [`crate::line_graph::line_graph`] builds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "BipartiteGraphData", into = "BipartiteGraphData")]
pub struct BipartiteGraph {
    left: u32,
    right: u32,
    edges: Vec<(u32, u32)>,
    left_adj: Vec<Vec<u32>>,
    right_adj: Vec<Vec<u32>>,
}

/// Serialization proxy: only partition sizes and the edge list are
/// persisted; adjacency is rebuilt on deserialization.
#[derive(Serialize, Deserialize)]
struct BipartiteGraphData {
    left: u32,
    right: u32,
    edges: Vec<(u32, u32)>,
}

impl TryFrom<BipartiteGraphData> for BipartiteGraph {
    type Error = String;

    fn try_from(d: BipartiteGraphData) -> Result<Self, String> {
        for &(l, r) in &d.edges {
            if l >= d.left || r >= d.right {
                return Err(format!(
                    "edge ({l}, {r}) out of range for a {}×{} graph",
                    d.left, d.right
                ));
            }
        }
        Ok(BipartiteGraph::new(d.left, d.right, d.edges))
    }
}

impl From<BipartiteGraph> for BipartiteGraphData {
    fn from(g: BipartiteGraph) -> Self {
        BipartiteGraphData {
            left: g.left,
            right: g.right,
            edges: g.edges,
        }
    }
}

impl BipartiteGraph {
    /// Builds a bipartite graph from partition sizes and an edge list.
    ///
    /// Duplicate edges are collapsed (relations are multisets, but the join
    /// *graph* is simple: a pair of tuples either joins or does not). Edges
    /// are sorted lexicographically.
    ///
    /// ```
    /// use jp_graph::BipartiteGraph;
    ///
    /// let g = BipartiteGraph::new(2, 2, vec![(1, 0), (0, 0), (1, 0)]);
    /// assert_eq!(g.edges(), &[(0, 0), (1, 0)]);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    ///
    /// # Panics
    /// Panics if an edge endpoint is out of range.
    pub fn new(left: u32, right: u32, mut edges: Vec<(u32, u32)>) -> Self {
        for &(l, r) in &edges {
            assert!(
                l < left,
                "left endpoint {l} out of range (left size {left})"
            );
            assert!(
                r < right,
                "right endpoint {r} out of range (right size {right})"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        let mut g = BipartiteGraph {
            left,
            right,
            edges,
            left_adj: Vec::new(),
            right_adj: Vec::new(),
        };
        g.rebuild_adjacency();
        g
    }

    fn rebuild_adjacency(&mut self) {
        self.left_adj = vec![Vec::new(); self.left as usize];
        self.right_adj = vec![Vec::new(); self.right as usize];
        for &(l, r) in &self.edges {
            self.left_adj[l as usize].push(r);
            self.right_adj[r as usize].push(l);
        }
    }

    /// Number of vertices in the left (`R`) partition.
    pub fn left_count(&self) -> u32 {
        self.left
    }

    /// Number of vertices in the right (`S`) partition.
    pub fn right_count(&self) -> u32 {
        self.right
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.left + self.right
    }

    /// Number of edges `m`. The paper measures everything in terms of `m`,
    /// "the number of tuples produced by the join".
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The sorted, deduplicated edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// The endpoints of edge `e` as [`Vertex`] values.
    pub fn edge_vertices(&self, e: usize) -> (Vertex, Vertex) {
        let (l, r) = self.edges[e];
        (Vertex::left(l), Vertex::right(r))
    }

    /// Right-side neighbours of left vertex `l`.
    pub fn left_neighbors(&self, l: u32) -> &[u32] {
        &self.left_adj[l as usize]
    }

    /// Left-side neighbours of right vertex `r`.
    pub fn right_neighbors(&self, r: u32) -> &[u32] {
        &self.right_adj[r as usize]
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: Vertex) -> usize {
        match v.side {
            Side::Left => self.left_adj[v.index as usize].len(),
            Side::Right => self.right_adj[v.index as usize].len(),
        }
    }

    /// Whether the edge `(l, r)` is present. Binary search over the sorted
    /// edge list.
    pub fn has_edge(&self, l: u32, r: u32) -> bool {
        self.edges.binary_search(&(l, r)).is_ok()
    }

    /// Position of edge `(l, r)` in the edge list, if present.
    pub fn edge_index(&self, l: u32, r: u32) -> Option<usize> {
        self.edges.binary_search(&(l, r)).ok()
    }

    /// Whether the graph has any isolated (degree-0) vertices.
    pub fn has_isolated_vertices(&self) -> bool {
        self.left_adj.iter().any(Vec::is_empty) || self.right_adj.iter().any(Vec::is_empty)
    }

    /// Removes isolated vertices, re-indexing both partitions densely.
    ///
    /// This is the paper's normalization step ("we will remove a priori all
    /// isolated vertices"): tuples that join with nothing play no role in
    /// the pebble game. Returns the stripped graph together with the maps
    /// from new indices back to original indices.
    pub fn strip_isolated(&self) -> (BipartiteGraph, Vec<u32>, Vec<u32>) {
        let left_keep: Vec<u32> = (0..self.left)
            .filter(|&l| !self.left_adj[l as usize].is_empty())
            .collect();
        let right_keep: Vec<u32> = (0..self.right)
            .filter(|&r| !self.right_adj[r as usize].is_empty())
            .collect();
        let mut left_map = vec![u32::MAX; self.left as usize];
        for (new, &old) in left_keep.iter().enumerate() {
            left_map[old as usize] = new as u32;
        }
        let mut right_map = vec![u32::MAX; self.right as usize];
        for (new, &old) in right_keep.iter().enumerate() {
            right_map[old as usize] = new as u32;
        }
        let edges = self
            .edges
            .iter()
            .map(|&(l, r)| (left_map[l as usize], right_map[r as usize]))
            .collect();
        let g = BipartiteGraph::new(left_keep.len() as u32, right_keep.len() as u32, edges);
        (g, left_keep, right_keep)
    }

    /// Disjoint union `G ⊎ H` (Lemma 2.2 studies its pebbling cost).
    ///
    /// `H`'s left vertices are shifted by `self.left_count()` and its right
    /// vertices by `self.right_count()`.
    pub fn disjoint_union(&self, other: &BipartiteGraph) -> BipartiteGraph {
        let mut edges = self.edges.clone();
        edges.extend(
            other
                .edges
                .iter()
                .map(|&(l, r)| (l + self.left, r + self.right)),
        );
        BipartiteGraph::new(self.left + other.left, self.right + other.right, edges)
    }

    /// The subgraph induced by a subset of edges, with vertices re-indexed
    /// densely (isolated vertices of the subgraph are dropped).
    pub fn edge_subgraph(&self, edge_ids: &[usize]) -> BipartiteGraph {
        let edges: Vec<(u32, u32)> = edge_ids.iter().map(|&e| self.edges[e]).collect();
        let left = self.left;
        let right = self.right;
        let (g, _, _) = BipartiteGraph::new(left, right, edges).strip_isolated();
        g
    }

    /// Iterator over all vertices (left first, then right).
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        (0..self.left)
            .map(Vertex::left)
            .chain((0..self.right).map(Vertex::right))
    }

    /// Flattens a [`Vertex`] into a single index in `0..vertex_count()`
    /// (left vertices first). Useful for union-find and visited arrays.
    pub fn flat_index(&self, v: Vertex) -> usize {
        match v.side {
            Side::Left => v.index as usize,
            Side::Right => (self.left + v.index) as usize,
        }
    }

    /// Inverse of [`BipartiteGraph::flat_index`].
    pub fn unflatten(&self, idx: usize) -> Vertex {
        if (idx as u32) < self.left {
            Vertex::left(idx as u32)
        } else {
            Vertex::right(idx as u32 - self.left)
        }
    }
}

impl fmt::Display for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BipartiteGraph(|R|={}, |S|={}, m={})",
            self.left,
            self.right,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> BipartiteGraph {
        // r0 - s0 - r1 - s1
        BipartiteGraph::new(2, 2, vec![(0, 0), (1, 0), (1, 1)])
    }

    #[test]
    fn new_sorts_and_dedups() {
        let g = BipartiteGraph::new(2, 2, vec![(1, 1), (0, 0), (1, 1), (1, 0)]);
        assert_eq!(g.edges(), &[(0, 0), (1, 0), (1, 1)]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        BipartiteGraph::new(1, 1, vec![(0, 1)]);
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = path3();
        assert_eq!(g.left_neighbors(0), &[0]);
        assert_eq!(g.left_neighbors(1), &[0, 1]);
        assert_eq!(g.right_neighbors(0), &[0, 1]);
        assert_eq!(g.degree(Vertex::left(1)), 2);
        assert_eq!(g.degree(Vertex::right(1)), 1);
    }

    #[test]
    fn has_edge_and_index() {
        let g = path3();
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_index(1, 1), Some(2));
        assert_eq!(g.edge_index(0, 1), None);
    }

    #[test]
    fn strip_isolated_removes_and_reindexes() {
        let g = BipartiteGraph::new(4, 3, vec![(0, 2), (3, 2)]);
        assert!(g.has_isolated_vertices());
        let (s, lmap, rmap) = g.strip_isolated();
        assert_eq!(s.left_count(), 2);
        assert_eq!(s.right_count(), 1);
        assert_eq!(s.edges(), &[(0, 0), (1, 0)]);
        assert_eq!(lmap, vec![0, 3]);
        assert_eq!(rmap, vec![2]);
        assert!(!s.has_isolated_vertices());
    }

    #[test]
    fn strip_isolated_is_identity_when_clean() {
        let g = path3();
        let (s, lmap, rmap) = g.strip_isolated();
        assert_eq!(s, g);
        assert_eq!(lmap, vec![0, 1]);
        assert_eq!(rmap, vec![0, 1]);
    }

    #[test]
    fn disjoint_union_shifts_indices() {
        let g = path3();
        let h = BipartiteGraph::new(1, 1, vec![(0, 0)]);
        let u = g.disjoint_union(&h);
        assert_eq!(u.left_count(), 3);
        assert_eq!(u.right_count(), 3);
        assert_eq!(u.edge_count(), 4);
        assert!(u.has_edge(2, 2));
    }

    #[test]
    fn edge_subgraph_drops_isolated() {
        let g = path3();
        let s = g.edge_subgraph(&[0]);
        assert_eq!(s.left_count(), 1);
        assert_eq!(s.right_count(), 1);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = path3();
        for v in g.vertices() {
            assert_eq!(g.unflatten(g.flat_index(v)), v);
        }
        assert_eq!(g.vertices().count(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Vertex::left(3).to_string(), "r3");
        assert_eq!(Vertex::right(0).to_string(), "s0");
        assert_eq!(path3().to_string(), "BipartiteGraph(|R|=2, |S|=2, m=3)");
    }
}

/// The quotient of a bipartite graph under vertex classifications: left
/// vertex `l` maps to class `left_class[l]`, right vertex `r` to
/// `right_class[r]`; the quotient has an edge between two classes iff
/// some original edge connects them.
///
/// This is the shared abstraction behind page-level pebbling (tuples →
/// pages; the related work of Merrett et al. the paper builds on) and
/// fragment mappings (tuples → fragments, the §5 open problem): in both,
/// the derived problem lives on the quotient graph.
///
/// # Panics
/// Panics if a classification is the wrong length or a class id is out
/// of range.
pub fn quotient(
    g: &BipartiteGraph,
    left_class: &[u32],
    n_left_classes: u32,
    right_class: &[u32],
    n_right_classes: u32,
) -> BipartiteGraph {
    assert_eq!(
        left_class.len(),
        g.left_count() as usize,
        "left classification length"
    );
    assert_eq!(
        right_class.len(),
        g.right_count() as usize,
        "right classification length"
    );
    let edges = g
        .edges()
        .iter()
        .map(|&(l, r)| {
            let cl = left_class[l as usize];
            let cr = right_class[r as usize];
            assert!(cl < n_left_classes, "left class {cl} out of range");
            assert!(cr < n_right_classes, "right class {cr} out of range");
            (cl, cr)
        })
        .collect();
    BipartiteGraph::new(n_left_classes, n_right_classes, edges)
}

#[cfg(test)]
mod quotient_tests {
    use super::*;

    #[test]
    fn quotient_merges_edges() {
        // path r0-s0-r1-s1 with both lefts in class 0, rights split
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (1, 0), (1, 1)]);
        let q = quotient(&g, &[0, 0], 1, &[0, 1], 2);
        assert_eq!(q.edges(), &[(0, 0), (0, 1)]);
    }

    #[test]
    fn identity_quotient_is_identity() {
        let g = BipartiteGraph::new(3, 2, vec![(0, 1), (2, 0)]);
        let lid: Vec<u32> = (0..3).collect();
        let rid: Vec<u32> = (0..2).collect();
        assert_eq!(quotient(&g, &lid, 3, &rid, 2), g);
    }

    #[test]
    #[should_panic(expected = "classification length")]
    fn wrong_length_rejected() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0)]);
        quotient(&g, &[0], 1, &[0, 0], 1);
    }

    #[test]
    fn total_collapse_gives_single_edge() {
        let g = BipartiteGraph::new(4, 4, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        let q = quotient(&g, &[0; 4], 1, &[0; 4], 1);
        assert_eq!(q.edge_count(), 1);
    }
}
