//! DOT (Graphviz) export — used by the `figures` binary to regenerate the
//! paper's Figure 1 (the family `G_3, G_4, G_5` and the line graph
//! `L(G_5)`) and Figure 2 (the diamond gadget).

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;
use std::fmt::Write;

/// Renders a bipartite graph in DOT, left vertices as boxes (`r#`), right
/// vertices as circles (`s#`), laid out in two ranks.
pub fn bipartite_to_dot(g: &BipartiteGraph, name: &str) -> String {
    let mut s = String::new();
    writeln!(s, "graph \"{name}\" {{").unwrap();
    writeln!(s, "  rankdir=LR;").unwrap();
    writeln!(s, "  {{ rank=same; edge[style=invis];").unwrap();
    for l in 0..g.left_count() {
        writeln!(s, "    r{l} [shape=box];").unwrap();
    }
    writeln!(s, "  }}").unwrap();
    writeln!(s, "  {{ rank=same;").unwrap();
    for r in 0..g.right_count() {
        writeln!(s, "    s{r} [shape=circle];").unwrap();
    }
    writeln!(s, "  }}").unwrap();
    for &(l, r) in g.edges() {
        writeln!(s, "  r{l} -- s{r};").unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

/// Renders a general graph in DOT with optional vertex labels. Vertices
/// beyond the end of a too-short `labels` slice fall back to the
/// unlabeled `v{v}` form instead of panicking.
pub fn graph_to_dot(g: &Graph, name: &str, labels: Option<&[String]>) -> String {
    let mut s = String::new();
    writeln!(s, "graph \"{name}\" {{").unwrap();
    for v in 0..g.vertex_count() {
        match labels.and_then(|ls| ls.get(v as usize)) {
            Some(label) => writeln!(s, "  v{v} [label=\"{label}\"];").unwrap(),
            None => writeln!(s, "  v{v};").unwrap(),
        }
    }
    for &(u, v) in g.edges() {
        writeln!(s, "  v{u} -- v{v};").unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bipartite_dot_contains_all_edges() {
        let g = generators::spider(3);
        let dot = bipartite_to_dot(&g, "G_3");
        assert!(dot.starts_with("graph \"G_3\""));
        for &(l, r) in g.edges() {
            assert!(
                dot.contains(&format!("r{l} -- s{r};")),
                "missing edge ({l},{r})"
            );
        }
    }

    #[test]
    fn graph_dot_labels() {
        let g = Graph::new(2, vec![(0, 1)]);
        let dot = graph_to_dot(&g, "t", Some(&["a".into(), "b".into()]));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("v0 -- v1;"));
        let plain = graph_to_dot(&g, "t", None);
        assert!(!plain.contains("label"));
    }

    #[test]
    fn graph_dot_short_label_slice_does_not_panic() {
        // regression: labels shorter than the vertex count used to index
        // out of bounds; now the tail falls back to the unlabeled form
        let g = Graph::new(3, vec![(0, 1), (1, 2)]);
        let dot = graph_to_dot(&g, "t", Some(&["only".into()]));
        assert!(dot.contains("v0 [label=\"only\"];"));
        assert!(dot.contains("v1;"));
        assert!(dot.contains("v2;"));
        let empty = graph_to_dot(&g, "t", Some(&[]));
        assert!(!empty.contains("label"));
    }
}
