//! Property-based tests for the graph substrate.

use jp_graph::{betti_number, generators, line_graph, properties, BipartiteGraph, Graph};
use proptest::prelude::*;

/// Strategy: a bipartite graph on up to 6×6 vertices with 0..=14 edges
/// (duplicates collapse).
fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..=6, 1u32..=6).prop_flat_map(|(k, l)| {
        proptest::collection::vec((0..k, 0..l), 0..=14)
            .prop_map(move |edges| BipartiteGraph::new(k, l, edges))
    })
}

/// Strategy: a connected bipartite graph (via the generator, seeded).
fn connected_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..=5, 2u32..=5, any::<u64>()).prop_flat_map(|(k, l, seed)| {
        let min = (k + l - 1) as usize;
        let max = (k * l) as usize;
        (Just(k), Just(l), min..=max, Just(seed))
            .prop_map(|(k, l, m, seed)| generators::random_connected_bipartite(k, l, m, seed))
    })
}

proptest! {
    #[test]
    fn edges_are_sorted_and_unique(g in bipartite()) {
        let edges = g.edges();
        for w in edges.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn strip_isolated_preserves_edges(g in bipartite()) {
        let (s, lmap, rmap) = g.strip_isolated();
        prop_assert_eq!(s.edge_count(), g.edge_count());
        prop_assert!(!s.has_isolated_vertices());
        // mapped-back edges equal the original edge set
        let mut mapped: Vec<(u32, u32)> = s
            .edges()
            .iter()
            .map(|&(l, r)| (lmap[l as usize], rmap[r as usize]))
            .collect();
        mapped.sort_unstable();
        prop_assert_eq!(&mapped[..], g.edges());
    }

    #[test]
    fn betti_is_additive_under_disjoint_union(a in bipartite(), b in bipartite()) {
        let u = a.disjoint_union(&b);
        prop_assert_eq!(betti_number(&u), betti_number(&a) + betti_number(&b));
        prop_assert_eq!(u.edge_count(), a.edge_count() + b.edge_count());
    }

    #[test]
    fn line_graph_shape(g in bipartite()) {
        let lg = line_graph(&g);
        prop_assert_eq!(lg.vertex_count() as usize, g.edge_count());
        // adjacency iff shared endpoint
        for (i, &(l1, r1)) in g.edges().iter().enumerate() {
            for (j, &(l2, r2)) in g.edges().iter().enumerate().skip(i + 1) {
                let shares = l1 == l2 || r1 == r2;
                prop_assert_eq!(lg.has_edge(i as u32, j as u32), shares);
            }
        }
    }

    #[test]
    fn line_graphs_are_claw_free(g in bipartite()) {
        prop_assert!(jp_graph::line_graph::is_claw_free(&line_graph(&g)));
    }

    #[test]
    fn line_graph_of_connected_is_connected(g in connected_bipartite()) {
        prop_assert!(line_graph(&g).is_connected());
    }

    #[test]
    fn dfs_tree_covers_component_with_independent_children(g in connected_bipartite()) {
        let lg = line_graph(&g);
        let t = jp_graph::traversal::DfsTree::new(&lg, 0);
        prop_assert_eq!(t.len() as u32, lg.vertex_count());
        prop_assert!(t.children_independent(&lg));
        // claw-freeness + children independence => at most 2 children
        prop_assert!(t.children.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn equijoin_graph_closed_under_union(k in 1u32..4, l in 1u32..4, k2 in 1u32..4, l2 in 1u32..4) {
        let g = generators::complete_bipartite(k, l)
            .disjoint_union(&generators::complete_bipartite(k2, l2));
        prop_assert!(properties::is_equijoin_graph(&g));
    }

    #[test]
    fn serde_roundtrip(g in bipartite()) {
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &g);
        // adjacency is rebuilt, not persisted
        if g.edge_count() > 0 {
            let (l, _r) = g.edges()[0];
            prop_assert_eq!(back.left_neighbors(l), g.left_neighbors(l));
        }
    }

    #[test]
    fn general_graph_add_remove_inverse(n in 2u32..8, edges in proptest::collection::vec((0u32..8, 0u32..8), 0..10)) {
        let valid: Vec<(u32, u32)> = edges.into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        let mut g = Graph::empty(n);
        for &(u, v) in &valid {
            g.add_edge(u, v);
        }
        let g2 = Graph::new(n, valid.clone());
        prop_assert_eq!(&g, &g2);
        for &(u, v) in &valid {
            g.remove_edge(u, v);
        }
        prop_assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn hamiltonian_path_found_is_valid(g in connected_bipartite()) {
        let lg = line_graph(&g);
        if lg.vertex_count() <= 12 {
            if let Some(p) = jp_graph::hamilton::hamiltonian_path(&lg) {
                prop_assert!(jp_graph::hamilton::is_hamiltonian_path(&lg, &p));
            }
        }
    }

    #[test]
    fn incidence_graph_right_degree_two(n in 2u32..8, seed in any::<u64>()) {
        let base = generators::random_bounded_degree(n, 3, n as usize, seed);
        let b = generators::incidence_graph(&base);
        for e in 0..b.right_count() {
            prop_assert_eq!(b.right_neighbors(e).len(), 2);
        }
        prop_assert_eq!(b.edge_count(), 2 * base.edge_count());
    }
}

proptest! {
    #[test]
    fn maximum_matching_is_valid_and_maximal(g in connected_bipartite()) {
        use jp_graph::matching::{maximum_matching, maximum_matching_size_brute};
        let lg = line_graph(&g);
        let m = maximum_matching(&lg);
        prop_assert!(m.validate(&lg));
        if lg.edge_count() <= 18 {
            prop_assert_eq!(m.len(), maximum_matching_size_brute(&lg));
        }
        // maximality (weaker than maximum): no free edge remains
        for &(u, v) in lg.edges() {
            prop_assert!(
                m.mate[u as usize] != u32::MAX || m.mate[v as usize] != u32::MAX,
                "free edge ({u},{v}) next to an unmatched pair"
            );
        }
    }

    #[test]
    fn quotient_preserves_edge_incidence(g in bipartite(), p in 1u32..4, q in 1u32..4) {
        let lf: Vec<u32> = (0..g.left_count()).map(|i| i % p).collect();
        let rf: Vec<u32> = (0..g.right_count()).map(|j| j % q).collect();
        let quot = jp_graph::quotient(&g, &lf, p, &rf, q);
        // every original edge maps to a quotient edge
        for &(l, r) in g.edges() {
            prop_assert!(quot.has_edge(lf[l as usize], rf[r as usize]));
        }
        // and every quotient edge has a preimage
        for &(cl, cr) in quot.edges() {
            prop_assert!(g.edges().iter().any(|&(l, r)| lf[l as usize] == cl && rf[r as usize] == cr));
        }
    }

    #[test]
    fn metrics_are_consistent(g in bipartite()) {
        let m = jp_graph::metrics::metrics(&g);
        prop_assert_eq!(m.edges, g.edge_count());
        prop_assert_eq!(m.components, betti_number(&g));
        prop_assert!(m.largest_component_edges <= m.edges);
        prop_assert!(m.density >= 0.0 && m.density <= 1.0);
        if m.edges > 0 {
            prop_assert!(m.diameter >= 1);
            prop_assert!(m.vertices >= 2);
        }
    }
}
