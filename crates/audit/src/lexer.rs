//! A lightweight token-level Rust lexer.
//!
//! The analyzer needs just enough lexical structure to reason about
//! source files without a full parser: identifiers, punctuation,
//! literals, lifetimes, and comments, each tagged with a 1-based line
//! number. The crate deliberately avoids `syn` (the workspace builds
//! fully offline against vendored stubs), so the tricky corners of the
//! lexical grammar are handled here directly:
//!
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes (and the
//!   `br#"…"#` byte variants) — no escape processing, terminated only by
//!   the matching quote-hash run;
//! * block comments nest (`/* a /* b */ c */` is one comment);
//! * `'a'` is a char literal but `'a` in `&'a str` is a lifetime — a
//!   one-character lookahead past the would-be closing quote
//!   disambiguates, with `'_'`-style escapes handled first.
//!
//! Tokens keep their text (for identifiers, literals, and comments) so
//! rules can match call sites and scan comments for `audit:allow` /
//! `CLAIM(..)` annotations.

/// What a token is; the lexer never fails — unexpected bytes become
/// [`TokenKind::Punct`] tokens so rules can keep walking the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match` …).
    Ident,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// Single punctuation byte (`.`, `!`, `[`, `{`, …).
    Punct,
    /// String literal (`"…"`), escapes left unprocessed.
    Str,
    /// Raw string literal (`r"…"`, `r##"…"##`), byte variants included.
    RawStr,
    /// Character literal (`'x'`, `'\n'`) or byte char (`b'x'`).
    Char,
    /// Byte-string literal (`b"…"`).
    ByteStr,
    /// Numeric literal (`0x1f`, `1_000`, `2.5e3`, `1.25`).
    Num,
    /// `// …` comment, doc (`///`, `//!`) or plain; text excludes the
    /// trailing newline.
    LineComment,
    /// `/* … */` comment (nesting respected), doc or plain.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and the 1-based line where it
/// starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token's verbatim source text.
    pub text: String,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == 1
            && self.text.as_bytes()[0] as char == c
    }

    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The unquoted content of a plain string literal (`"x"` → `x`);
    /// `None` for other kinds. Escapes are not processed — rules only
    /// match literals that contain none.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        self.text.strip_prefix('"')?.strip_suffix('"')
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input
/// degrades to `Punct` tokens and an unterminated comment or literal
/// extends to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self, text: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            if let Some(kind) = kind {
                self.tokens.push(Token {
                    kind,
                    text: text[start..self.pos].to_string(),
                    line,
                });
            }
        }
        self.tokens
    }

    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    /// Consumes one token's worth of input; `None` means whitespace was
    /// skipped and no token should be emitted.
    fn next_kind(&mut self) -> Option<TokenKind> {
        let b = self.peek(0);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.bump();
                None
            }
            b'/' if self.peek(1) == b'/' => {
                while self.pos < self.src.len() && self.peek(0) != b'\n' {
                    self.bump();
                }
                Some(TokenKind::LineComment)
            }
            b'/' if self.peek(1) == b'*' => {
                self.bump();
                self.bump();
                let mut depth = 1u32;
                while self.pos < self.src.len() && depth > 0 {
                    if self.peek(0) == b'/' && self.peek(1) == b'*' {
                        self.bump();
                        self.bump();
                        depth += 1;
                    } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                        self.bump();
                        self.bump();
                        depth -= 1;
                    } else {
                        self.bump();
                    }
                }
                Some(TokenKind::BlockComment)
            }
            b'"' => {
                self.eat_string();
                Some(TokenKind::Str)
            }
            b'r' if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_str_ahead(1)) => {
                self.bump(); // r
                self.eat_raw_string();
                Some(TokenKind::RawStr)
            }
            b'b' if self.peek(1) == b'"' => {
                self.bump(); // b
                self.eat_string();
                Some(TokenKind::ByteStr)
            }
            b'b' if self.peek(1) == b'\'' => {
                self.bump(); // b
                self.bump(); // '
                self.eat_char_body();
                Some(TokenKind::Char)
            }
            b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                self.bump(); // b
                self.bump(); // r
                self.eat_raw_string();
                Some(TokenKind::RawStr)
            }
            b'\'' => {
                // Lifetime or char literal. `'a'` is a char; `'a` (no
                // closing quote after one "body" char, or followed by
                // more ident chars) is a lifetime.
                if self.lifetime_ahead() {
                    self.bump(); // '
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    Some(TokenKind::Lifetime)
                } else {
                    self.bump(); // '
                    self.eat_char_body();
                    Some(TokenKind::Char)
                }
            }
            b'0'..=b'9' => {
                self.eat_number();
                Some(TokenKind::Num)
            }
            b if is_ident_start(b) => {
                // includes raw identifiers r#ident
                if b == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                    self.bump();
                    self.bump();
                }
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                Some(TokenKind::Ident)
            }
            _ => {
                self.bump();
                Some(TokenKind::Punct)
            }
        }
    }

    /// After an `r`, decides whether `#…` begins a raw string (hashes
    /// then a quote) as opposed to e.g. the raw identifier `r#match`.
    fn raw_str_ahead(&self, mut off: usize) -> bool {
        while self.peek(off) == b'#' {
            off += 1;
        }
        self.peek(off) == b'"'
    }

    /// Distinguishes `'a` / `'static` (lifetime) from `'a'` / `'\n'`
    /// (char literal) by looking one character past the candidate body.
    fn lifetime_ahead(&self) -> bool {
        let b1 = self.peek(1);
        if b1 == b'\\' {
            return false; // '\n' etc. are always chars
        }
        if !is_ident_start(b1) {
            return false; // '(' etc.: treat as char-ish, eat_char_body copes
        }
        // ident-start body: lifetime unless a closing quote follows
        // exactly one body character ('a' vs 'ab is not valid Rust, but
        // 'a' vs 'a must split correctly).
        self.peek(2) != b'\''
    }

    fn eat_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    fn eat_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            if self.bump() == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == b'#' {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
    }

    /// Consumes a char literal's body and closing quote (opening quote
    /// already consumed).
    fn eat_char_body(&mut self) {
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
    }

    fn eat_number(&mut self) {
        // Integer/float with underscores, hex/oct/bin prefixes,
        // exponents, and type suffixes — one greedy gulp is enough for
        // analysis purposes.
        while matches!(self.peek(0),
            b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'x' | b'o' | b'_' | b'u' | b's' | b'i')
        {
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'_' | b'f') {
                self.bump();
            }
        }
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            self.bump();
            if matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Rust keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `in [1, 2]`, `return [x]`, …). Used by
/// the panic-freedom rule to avoid false positives on slice patterns and
/// array expressions.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hash_runs_swallow_inner_quotes() {
        let toks = kinds("let s = r#\"a \"quoted\" b\"#; next");
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr).unwrap();
        assert_eq!(raw.1, "r#\"a \"quoted\" b\"#");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
    }

    #[test]
    fn longer_hash_runs_ignore_shorter_closers() {
        // `"#` inside must not terminate an r##…## string
        let toks = kinds("r##\"ends \"# not here\"## tail");
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[0].1, "r##\"ends \"# not here\"##");
        assert_eq!(toks[1], (TokenKind::Ident, "tail".to_string()));
    }

    #[test]
    fn byte_raw_strings_and_byte_strings() {
        let toks = kinds("br#\"raw bytes\"# b\"plain bytes\" b'x'");
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1].0, TokenKind::ByteStr);
        assert_eq!(toks[2].0, TokenKind::Char);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#match".to_string())));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("/* a /* b */ c */ fn");
        assert_eq!(toks.len(), 2, "{toks:?}");
        assert_eq!(
            toks[0],
            (TokenKind::BlockComment, "/* a /* b */ c */".to_string())
        );
        assert_eq!(toks[1], (TokenKind::Ident, "fn".to_string()));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("'a' '\\n' '\\'' 'a 'static '_");
        let got: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            got,
            [
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
            ]
        );
        assert_eq!(toks[3].1, "'a");
        assert_eq!(toks[4].1, "'static");
    }

    #[test]
    fn lifetime_in_reference_position() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let toks = lex("let s = \"a\nb\";\n/* c\nd */\nfn f() {}\n");
        let fn_tok = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(fn_tok.line, 5);
        let str_tok = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(str_tok.line, 1);
    }

    #[test]
    fn unterminated_literals_do_not_hang_or_panic() {
        assert_eq!(lex("\"open").len(), 1);
        assert_eq!(lex("r#\"open").len(), 1);
        assert_eq!(lex("/* open").len(), 1);
        assert_eq!(lex("'x").len(), 1);
    }

    #[test]
    fn str_content_unwraps_plain_strings_only() {
        let toks = lex("\"plain\" r\"raw\"");
        assert_eq!(toks[0].str_content(), Some("plain"));
        assert_eq!(toks[1].str_content(), None, "raw strings are not unquoted");
    }
}
