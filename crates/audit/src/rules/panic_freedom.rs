//! `panic-freedom` — solver modules must not contain reachable panic
//! sites.
//!
//! The solver ladder is the part of the codebase adversarial inputs
//! reach (arbitrary join graphs come in over the CLI and the relalg
//! realizers), so inside the configured modules this rule flags every
//! construct that can abort the process:
//!
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * `assert!` / `assert_eq!` / `assert_ne!` (release-mode aborts;
//!   `debug_assert*` is exempt — compiled out of release builds);
//! * `.unwrap()` / `.expect()` (and their `_err` twins);
//! * slice/array indexing `x[i]` — `get`-based access is the
//!   panic-free alternative; index expressions that are provably in
//!   bounds carry an `audit:allow(panic-freedom) <invariant>`
//!   annotation stating why.
//!
//! Test items are skipped: a test's assertions panic by design.

use crate::lexer::{is_keyword, Token, TokenKind};
use crate::report::Violation;
use crate::source::SourceFile;

/// Rule name, as used in config sections and allow annotations.
pub const NAME: &str = "panic-freedom";

const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Whether `rel_path` falls under one of the configured scope entries
/// (exact file, or directory prefix written with a trailing `/`).
pub fn in_scope(rel_path: &str, paths: &[String]) -> bool {
    paths
        .iter()
        .any(|p| rel_path == p || (p.ends_with('/') && rel_path.starts_with(p.as_str())))
}

/// Runs the rule over one file (caller has already checked scope).
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if file.in_test(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let next_bang = code.get(i + 1).is_some_and(|n| n.is_punct('!'));
                if next_bang && PANIC_MACROS.contains(&t.text.as_str()) {
                    out.push(Violation::new(
                        NAME,
                        &file.rel_path,
                        t.line,
                        format!("call to `{}!` in a solver module", t.text),
                    ));
                    continue;
                }
                let is_method_call = i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method_call
                    && matches!(
                        t.text.as_str(),
                        "unwrap" | "expect" | "unwrap_err" | "expect_err"
                    )
                {
                    out.push(Violation::new(
                        NAME,
                        &file.rel_path,
                        t.line,
                        format!("call to `.{}()` in a solver module", t.text),
                    ));
                }
            }
            TokenKind::Punct if t.is_punct('[') && i > 0 => {
                let prev = code[i - 1];
                let indexable_prefix = match prev.kind {
                    TokenKind::Ident => !is_keyword(&prev.text),
                    TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                if indexable_prefix {
                    out.push(Violation::new(
                        NAME,
                        &file.rel_path,
                        t.line,
                        "slice/array index expression (use `get`/`get_mut`, or state the \
                         bounds invariant in an `audit:allow(panic-freedom)` annotation)",
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::new("crates/core/src/exact.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out.into_iter().map(|v| (v.line, v.message)).collect()
    }

    #[test]
    fn flags_macros_methods_and_indexing() {
        let v = violations(
            "fn f(v: &[u32]) -> u32 {\n\
             \x20   let x = v.first().unwrap();\n\
             \x20   if *x > 3 { panic!(\"boom\") }\n\
             \x20   v[1]\n\
             }\n",
        );
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].0, 2);
        assert_eq!(v[1].0, 3);
        assert_eq!(v[2].0, 4);
    }

    #[test]
    fn skips_tests_patterns_macros_and_debug_asserts() {
        let v = violations(
            "fn f() {\n\
             \x20   debug_assert!(true);\n\
             \x20   let [a, b] = [1u32, 2];\n\
             \x20   let v = vec![a, b];\n\
             \x20   let _ = (a, v);\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { Some(3).unwrap(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn chained_and_call_result_indexing_is_flagged() {
        let v = violations("fn f(m: &M) -> u32 { m.rows()[0][1] }\n");
        assert_eq!(v.len(), 2, "{v:?}");
    }
}
