//! The lint rules.
//!
//! Each rule lives in its own module and exposes a `NAME` (used in
//! `audit.toml` sections and `audit:allow` annotations) plus check
//! functions the engine in [`crate::engine`] drives. See the module
//! docs of each rule for exact semantics.

pub mod claims;
pub mod doc_drift;
pub mod obs_coverage;
pub mod panic_freedom;
pub mod race;
pub mod unsafe_freedom;

/// Name of the meta-rule covering the escape hatches themselves:
/// `audit:allow` annotations must name a real rule and state a reason.
pub const ALLOW_ANNOTATION: &str = "allow-annotation";

/// All rule names, in reporting order.
pub const ALL: [&str; 10] = [
    panic_freedom::NAME,
    obs_coverage::NAME,
    claims::NAME,
    unsafe_freedom::NAME,
    doc_drift::NAME,
    race::ATOMIC_ORDERING,
    race::LOCK_ORDER,
    race::GUARD_ACROSS_CALL,
    race::SPAWN_CONTAINMENT,
    ALLOW_ANNOTATION,
];
