//! `claim-traceability` — code ↔ paper-claim cross-referencing.
//!
//! Tests and solver modules carry `// CLAIM(L2.1)` tags naming the
//! paper results they exercise. This rule keeps the tags honest in both
//! directions:
//!
//! * every tagged ID must exist in the paper documents (PAPER.md /
//!   EXPERIMENTS.md) — no phantom claims;
//! * every *headline* claim (configured in audit.toml) must be cited by
//!   at least one **test** — a tag inside a `#[test]`/`#[cfg(test)]`
//!   item or a file under a `tests/` directory;
//!
//! and emits the traceability matrix (`figures/claims_matrix.md`)
//! mapping each claim to the tests that certify it.

use crate::report::Violation;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Rule name, as used in config sections and allow annotations.
pub const NAME: &str = "claim-traceability";

/// One resolved citation of a claim.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Citation {
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the tag.
    pub line: u32,
    /// Whether the tag sits in test code (what headline claims need).
    pub in_test: bool,
}

/// Everything the rule learns in one pass; the matrix renders from it.
#[derive(Debug, Default)]
pub struct ClaimIndex {
    /// IDs that exist in the paper documents.
    pub known: BTreeSet<String>,
    /// Claim ID → one-line statement scraped from the PAPER.md table.
    pub statements: BTreeMap<String, String>,
    /// Claim ID → citations found in source.
    pub citations: BTreeMap<String, Vec<Citation>>,
}

/// Extracts claim-shaped IDs (`L2.1`, `T4.2`, …) from free text.
fn scan_ids(text: &str, into: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i + 3 < bytes.len() {
        let start_ok = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
        if start_ok && bytes[i].is_ascii_uppercase() {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && j < bytes.len() && bytes[j] == b'.' {
                let mut k = j + 1;
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                if k > j + 1 && (k == bytes.len() || !bytes[k].is_ascii_alphanumeric()) {
                    into.insert(text[i..k].to_string());
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Builds the index from the paper documents and the lexed workspace.
pub fn build_index(paper_texts: &[(String, String)], files: &[SourceFile]) -> ClaimIndex {
    let mut idx = ClaimIndex::default();
    for (_, text) in paper_texts {
        scan_ids(text, &mut idx.known);
        scrape_statements(text, &mut idx.statements);
    }
    for f in files {
        for tag in &f.claims {
            idx.citations
                .entry(tag.id.clone())
                .or_default()
                .push(Citation {
                    file: f.rel_path.clone(),
                    line: tag.line,
                    in_test: f.in_test(tag.line) || is_test_path(&f.rel_path),
                });
        }
    }
    for cites in idx.citations.values_mut() {
        cites.sort();
        cites.dedup();
    }
    idx
}

/// Whether a path is test code by location alone.
fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/")
}

/// Scrapes `| L2.1| statement … | kind |` table rows for statements.
/// Compound row labels (`L3.2/T3.2`, `T3.3 + Fig 1`) attach the
/// statement to every claim-shaped ID in the label cell.
fn scrape_statements(text: &str, into: &mut BTreeMap<String, String>) {
    for line in text.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let (Some(label), Some(statement)) = (cells.next(), cells.next()) else {
            continue;
        };
        let mut ids = BTreeSet::new();
        scan_ids(label, &mut ids);
        if ids.is_empty() || statement.is_empty() || statement.starts_with('-') {
            continue;
        }
        for id in ids {
            into.entry(id).or_insert_with(|| statement.to_string());
        }
    }
}

/// Runs the checks: phantom IDs and uncited headline claims.
pub fn check(idx: &ClaimIndex, headline: &[String], config_file: &str, out: &mut Vec<Violation>) {
    for (id, cites) in &idx.citations {
        if !idx.known.contains(id) {
            for c in cites {
                out.push(Violation::new(
                    NAME,
                    &c.file,
                    c.line,
                    format!("CLAIM({id}) references an ID not found in the paper documents"),
                ));
            }
        }
    }
    for id in headline {
        if !idx.known.contains(id) {
            out.push(Violation::new(
                NAME,
                config_file,
                1,
                format!("headline claim {id} in audit.toml does not exist in the paper documents"),
            ));
            continue;
        }
        let tested = idx
            .citations
            .get(id)
            .is_some_and(|cs| cs.iter().any(|c| c.in_test));
        if !tested {
            out.push(Violation::new(
                NAME,
                config_file,
                1,
                format!("headline claim {id} is cited by no test (add a `// CLAIM({id})` tag)"),
            ));
        }
    }
}

/// Renders the traceability matrix as markdown.
pub fn matrix(idx: &ClaimIndex, headline: &[String]) -> String {
    let mut out = String::new();
    out.push_str("# Claim traceability matrix\n\n");
    out.push_str(
        "Generated by `cargo run -p jp-audit -- check` — do not edit by hand.\n\
         Maps every paper claim cited in the codebase (via `// CLAIM(<id>)`\n\
         tags) to the tests and modules that certify it. Headline claims are\n\
         hard-gated: CI fails if one loses its last citing test.\n\n",
    );
    out.push_str("## Headline claims\n\n");
    out.push_str("| Claim | Paper statement | Citing tests | All citations | Status |\n");
    out.push_str("|---|---|---:|---|---|\n");
    for id in headline {
        out.push_str(&row(idx, id));
    }
    let others: Vec<&String> = idx
        .citations
        .keys()
        .filter(|id| !headline.contains(*id) && idx.known.contains(*id))
        .collect();
    if !others.is_empty() {
        out.push_str("\n## Other cited claims\n\n");
        out.push_str("| Claim | Paper statement | Citing tests | All citations | Status |\n");
        out.push_str("|---|---|---:|---|---|\n");
        for id in others {
            out.push_str(&row(idx, id));
        }
    }
    out
}

fn row(idx: &ClaimIndex, id: &str) -> String {
    let empty = Vec::new();
    let cites = idx.citations.get(id).unwrap_or(&empty);
    let tests = cites.iter().filter(|c| c.in_test).count();
    let mut locs: Vec<String> = cites
        .iter()
        .map(|c| {
            if c.in_test {
                format!("`{}:{}`", c.file, c.line)
            } else {
                format!("{}:{}", c.file, c.line)
            }
        })
        .collect();
    // keep rows readable for heavily-cited claims
    const MAX_LOCS: usize = 6;
    if locs.len() > MAX_LOCS {
        let extra = locs.len() - MAX_LOCS;
        locs.truncate(MAX_LOCS);
        locs.push(format!("… +{extra} more"));
    }
    let statement = idx
        .statements
        .get(id)
        .map(String::as_str)
        .unwrap_or("(not tabulated in PAPER.md)");
    let status = if tests > 0 { "✓" } else { "✗ untested" };
    format!(
        "| {id} | {statement} | {tests} | {} | {status} |\n",
        locs.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Vec<(String, String)> {
        vec![(
            "PAPER.md".to_string(),
            "| ID  | Claim | Kind |\n|---|---|---|\n\
             | L2.1| m+1 <= pihat <= 2m | bound |\n\
             | L3.2/T3.2| equijoins pebble perfectly | algorithm |\n\
             Also discusses T4.2 in prose.\n"
                .to_string(),
        )]
    }

    #[test]
    fn id_scanner_matches_claim_shapes_only() {
        let mut ids = BTreeSet::new();
        scan_ids("L2.1 T3.2, (P2.1) G_n 1.25m E5 v2.x Fig 1 SS2.2", &mut ids);
        let got: Vec<&str> = ids.iter().map(String::as_str).collect();
        // single uppercase letter + digits.digits only — `SS2.2` (a
        // section-style ref) and `E5` (an experiment id) do not match
        assert_eq!(got, ["L2.1", "P2.1", "T3.2"]);
    }

    #[test]
    fn headline_without_test_citation_fails() {
        let files = vec![SourceFile::new(
            "crates/core/src/exact.rs".into(),
            "// CLAIM(L2.1): checked below\nfn f() {}\n",
        )];
        let idx = build_index(&paper(), &files);
        let mut out = Vec::new();
        check(&idx, &["L2.1".to_string()], "audit.toml", &mut out);
        assert_eq!(out.len(), 1, "non-test citation must not satisfy the gate");
        assert!(out[0].message.contains("no test"));
    }

    #[test]
    fn test_citations_satisfy_and_unknown_ids_fail() {
        let files = vec![
            SourceFile::new(
                "tests/paper_claims.rs".into(),
                "// CLAIM(T3.2)\nfn t() {}\n",
            ),
            SourceFile::new("src/lib.rs".into(), "// CLAIM(Z9.9) phantom\n"),
        ];
        let idx = build_index(&paper(), &files);
        let mut out = Vec::new();
        check(&idx, &["T3.2".to_string()], "audit.toml", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("Z9.9"));
        let m = matrix(&idx, &["T3.2".to_string()]);
        assert!(m.contains("| T3.2 | equijoins pebble perfectly | 1 |"));
        assert!(m.contains("✓"));
    }
}
