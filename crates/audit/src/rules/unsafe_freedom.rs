//! `unsafe-freedom` — no `unsafe` anywhere, enforced twice.
//!
//! The whole workspace is `std`-only safe Rust; the pebble game never
//! needs raw pointers. This rule flags every `unsafe` token in scanned
//! source (tests included — unsafety in tests is still unsafety) and,
//! because a lint that merely greps can be bypassed by a later PR,
//! additionally requires each configured crate root to carry
//! `#![forbid(unsafe_code)]` so the compiler backs the same invariant.

use crate::report::Violation;
use crate::source::SourceFile;

/// Rule name, as used in config sections and allow annotations.
pub const NAME: &str = "unsafe-freedom";

/// Flags `unsafe` tokens in one file.
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    for t in &file.tokens {
        if !t.is_comment() && t.is_ident("unsafe") {
            out.push(Violation::new(
                NAME,
                &file.rel_path,
                t.line,
                "`unsafe` is forbidden workspace-wide",
            ));
        }
    }
}

/// Requires `#![forbid(unsafe_code)]` in each configured crate root.
/// `files` is the full lexed workspace; roots that were not scanned (or
/// do not exist) are reported too — a missing root is drift, not a pass.
pub fn check_crate_roots(roots: &[String], files: &[SourceFile], out: &mut Vec<Violation>) {
    for root in roots {
        let Some(file) = files.iter().find(|f| &f.rel_path == root) else {
            out.push(Violation::new(
                NAME,
                root,
                1,
                "configured crate root was not found by the source walker",
            ));
            continue;
        };
        let code: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        let has_forbid = code.iter().any(|t| t.is_ident("forbid"))
            && code.iter().any(|t| t.is_ident("unsafe_code"));
        if !has_forbid {
            out.push(Violation::new(
                NAME,
                root,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_token_is_flagged_even_in_tests() {
        let f = SourceFile::new(
            "crates/graph/src/lib.rs".into(),
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn forbid_attribute_satisfies_the_root_check() {
        let with = SourceFile::new(
            "crates/graph/src/lib.rs".into(),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        let without = SourceFile::new("crates/core/src/lib.rs".into(), "pub fn f() {}\n");
        let mut out = Vec::new();
        check_crate_roots(
            &[
                "crates/graph/src/lib.rs".to_string(),
                "crates/core/src/lib.rs".to_string(),
                "crates/ghost/src/lib.rs".to_string(),
            ],
            &[with, without],
            &mut out,
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].file, "crates/core/src/lib.rs");
        assert_eq!(out[1].file, "crates/ghost/src/lib.rs");
    }

    #[test]
    fn unsafe_in_comments_or_strings_is_not_flagged() {
        let f = SourceFile::new(
            "src/lib.rs".into(),
            "// unsafe is discussed here only\nconst S: &str = \"unsafe\";\n",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
