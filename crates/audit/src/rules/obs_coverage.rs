//! `obs-coverage` — every public solver entrypoint must be observable.
//!
//! PR 1 threaded `jp-obs` spans through the solver ladder; this rule
//! keeps that true as the ladder grows. In the configured files, every
//! non-test `pub fn` must either open a span (`jp_obs::span(…)` in its
//! body) or carry an `audit:allow(obs-coverage) <reason>` annotation —
//! accessors and thin delegating wrappers are exempted explicitly, not
//! silently.
//!
//! The rule also cross-checks component names: every string literal
//! passed as the component of `jp_obs::span` / `jp_obs::counter` (or as
//! the `obs_component` of the shared `per_component_scheme` driver) must
//! appear in the config's `components` list — the same names the obs
//! sinks emit and `--stats` aggregates — and every configured component
//! must actually occur somewhere, so the list cannot rot.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Rule name, as used in config sections and allow annotations.
pub const NAME: &str = "obs-coverage";

/// Per-file pass: uncovered `pub fn`s plus the component literals seen.
pub fn check(file: &SourceFile, components_seen: &mut BTreeSet<String>, out: &mut Vec<Violation>) {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    collect_components(file, &code, components_seen);
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.is_ident("pub") && !file.in_test(t.line) {
            // `pub(crate)` / `pub(super)` items are not public API
            if code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                i += 1;
                continue;
            }
            if code.get(i + 1).is_some_and(|n| n.is_ident("fn")) {
                let name = code
                    .get(i + 2)
                    .map(|n| n.text.clone())
                    .unwrap_or_else(|| "?".to_string());
                // body = first `{` after the fn name through its match
                let mut j = i + 3;
                let mut depth = 0i32;
                let mut body_start = None;
                while j < code.len() {
                    let tok = code[j];
                    if tok.is_punct('{') {
                        depth += 1;
                        body_start.get_or_insert(j);
                    } else if tok.is_punct('}') {
                        depth -= 1;
                        if depth == 0 && body_start.is_some() {
                            break;
                        }
                    } else if tok.is_punct(';') && body_start.is_none() {
                        break; // trait method signature — no body to check
                    }
                    j += 1;
                }
                if let Some(start) = body_start {
                    let body = &code[start..j.min(code.len())];
                    if !opens_span(body) {
                        out.push(Violation::new(
                            NAME,
                            &file.rel_path,
                            t.line,
                            format!(
                                "pub fn `{name}` opens no jp-obs span; instrument it or annotate \
                                 `audit:allow(obs-coverage) <reason>`"
                            ),
                        ));
                    }
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Whether a token slice contains `jp_obs :: span (`.
fn opens_span(body: &[&Token]) -> bool {
    body.windows(4).any(|w| {
        w[0].is_ident("jp_obs") && w[1].is_punct(':') && w[2].is_punct(':') && w[3].is_ident("span")
    })
}

/// Collects component-name string literals from the emission call sites
/// (test regions excluded — test-only components are not part of the
/// emitted surface).
fn collect_components(file: &SourceFile, code: &[&Token], seen: &mut BTreeSet<String>) {
    for (i, t) in code.iter().enumerate() {
        if file.in_test(t.line) {
            continue;
        }
        let is_emit = (t.is_ident("span") || t.is_ident("counter"))
            && i >= 2
            && code[i - 1].is_punct(':')
            && code[i - 2].is_punct(':')
            && i >= 3
            && code[i - 3].is_ident("jp_obs");
        let is_driver = t.is_ident("per_component_scheme");
        if !is_emit && !is_driver {
            continue;
        }
        if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if is_emit {
            // the component is the first argument; a non-literal first
            // argument (a forwarded `obs_component` parameter) cannot be
            // resolved statically and is rightly skipped
            if let Some(c) = code.get(i + 2).and_then(|tok| tok.str_content()) {
                seen.insert(c.to_string());
            }
            continue;
        }
        // driver call: the component is the literal second argument,
        // right after the graph expression — first Str before `)`
        for tok in code.iter().skip(i + 2).take(5) {
            if tok.kind == TokenKind::Str {
                if let Some(c) = tok.str_content() {
                    seen.insert(c.to_string());
                }
                break;
            }
            if tok.is_punct(')') {
                break;
            }
        }
    }
}

/// Cross-checks the collected component names against the configured
/// list (both directions).
pub fn check_components(
    configured: &[String],
    seen: &BTreeSet<String>,
    config_file: &str,
    out: &mut Vec<Violation>,
) {
    for c in seen {
        if !configured.iter().any(|k| k == c) {
            out.push(Violation::new(
                NAME,
                config_file,
                1,
                format!(
                    "obs component \"{c}\" is emitted by the solvers but missing from \
                     `components` in audit.toml"
                ),
            ));
        }
    }
    for c in configured {
        if !seen.contains(c.as_str()) {
            out.push(Violation::new(
                NAME,
                config_file,
                1,
                format!(
                    "obs component \"{c}\" is listed in audit.toml but never emitted by \
                     the scanned solver modules"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstrumented_pub_fn_is_flagged_and_components_collected() {
        let src = "pub fn covered() { let _s = jp_obs::span(\"exact\", \"solve\"); }\n\
                   pub fn bare() -> u32 { 7 }\n\
                   pub(crate) fn internal() {}\n\
                   fn private() {}\n\
                   pub fn driver(g: &G) { per_component_scheme(g, \"approx.nn\", f); }\n";
        let f = SourceFile::new("crates/core/src/exact.rs".into(), src);
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        check(&f, &mut seen, &mut out);
        // `driver` has no span of its own (the driver opens it) — both
        // bare fns are findings; annotations resolve the driver case.
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 5);
        assert!(seen.contains("exact"));
        assert!(seen.contains("approx.nn"));
    }

    #[test]
    fn component_cross_check_finds_drift_both_ways() {
        let configured = vec!["exact".to_string(), "bb".to_string()];
        let seen: BTreeSet<String> = ["exact".to_string(), "rogue".to_string()].into();
        let mut out = Vec::new();
        check_components(&configured, &seen, "audit.toml", &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("rogue"));
        assert!(out[1].message.contains("\"bb\""));
    }
}
