//! `doc-drift` — the CLI's flags and the README must agree.
//!
//! The `jp` CLI parses `--key value` options through
//! `ParsedArgs::opt`/`opt_parse` (see `crates/cli/src/args.rs`) plus the
//! two global literals `--trace`/`--stats`. Every flag name that appears
//! at a call site in the CLI crate must therefore appear (as `--name`)
//! somewhere in the README — otherwise the documented interface has
//! drifted from the real one. Test code is excluded (tests probe
//! deliberately bogus keys).

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Rule name, as used in config sections and allow annotations.
pub const NAME: &str = "doc-drift";

/// Collects flag names from one CLI-crate file: `opt("key")` /
/// `opt_parse("key", …)` call sites and exact `"--flag"` literals.
/// Returns `flag → first (file, line)`.
pub fn collect_flags(file: &SourceFile, into: &mut BTreeMap<String, (String, u32)>) {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if file.in_test(t.line) {
            continue;
        }
        if (t.is_ident("opt") || t.is_ident("opt_parse"))
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(key) = code.get(i + 2).and_then(|n| n.str_content()) {
                record(into, key, &file.rel_path, t.line);
            }
        }
        // `flag_true(a, "memo")` — the args come first, so take the
        // first string literal inside the call's parens
        if t.is_ident("flag_true") && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let mut depth = 0i32;
            for n in &code[i + 1..] {
                if n.is_punct('(') {
                    depth += 1;
                } else if n.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(key) = n.str_content() {
                    record(into, key, &file.rel_path, t.line);
                    break;
                }
            }
        }
        if t.kind == TokenKind::Str {
            if let Some(s) = t.str_content() {
                if let Some(name) = s.strip_prefix("--") {
                    // exact flag literals only — not usage prose
                    if !name.is_empty()
                        && name
                            .bytes()
                            .all(|b| b.is_ascii_lowercase() || b == b'-' || b == b'_')
                    {
                        record(into, name, &file.rel_path, t.line);
                    }
                }
            }
        }
    }
}

fn record(into: &mut BTreeMap<String, (String, u32)>, key: &str, file: &str, line: u32) {
    into.entry(key.to_string())
        .or_insert_with(|| (file.to_string(), line));
}

/// Every collected flag must appear as `--flag` in the README text.
pub fn check(flags: &BTreeMap<String, (String, u32)>, readme: &str, out: &mut Vec<Violation>) {
    for (flag, (file, line)) in flags {
        let needle = format!("--{flag}");
        let documented = readme.match_indices(&needle).any(|(i, _)| {
            match readme.as_bytes().get(i + needle.len()) {
                // `--b` must not be satisfied by `--budget`
                Some(b) => !(b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_'),
                None => true,
            }
        });
        if !documented {
            out.push(Violation::new(
                NAME,
                file,
                *line,
                format!("CLI flag `--{flag}` is parsed here but not documented in the README"),
            ));
        }
    }
}

/// The reverse (stale-row) direction: README *table rows* must not name
/// flags no source parses any more. Only `|`-prefixed lines are scanned,
/// and only backtick spans that *start* with `--` count as flag mentions
/// — prose like `` `cargo run --example quickstart` `` stays exempt.
pub fn check_readme_rows(
    flags: &BTreeMap<String, (String, u32)>,
    readme: &str,
    readme_path: &str,
    out: &mut Vec<Violation>,
) {
    for (lineno, line) in readme.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for span in backtick_spans(line) {
            let Some(name) = span.strip_prefix("--") else {
                continue;
            };
            // trim a value placeholder: `--pulse-file FILE` → pulse-file
            let name = name.split_whitespace().next().unwrap_or("");
            if name.is_empty()
                || !name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b == b'-' || b == b'_')
            {
                continue;
            }
            if !flags.contains_key(name) {
                out.push(Violation::new(
                    NAME,
                    readme_path,
                    u32::try_from(lineno + 1).unwrap_or(u32::MAX),
                    format!(
                        "README table documents `--{name}` but no audited source parses it \
                         (stale row)"
                    ),
                ));
            }
        }
    }
}

/// The contents of each `` `…` `` span on one line, in order.
fn backtick_spans(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        match after.find('`') {
            Some(end) => {
                spans.push(&after[..end]);
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_collected_and_checked_against_readme() {
        let f = SourceFile::new(
            "crates/cli/src/commands.rs".into(),
            "fn c(a: &ParsedArgs) {\n\
             \x20   let out = a.opt(\"out\");\n\
             \x20   let n: usize = a.opt_parse(\"n\", 10).unwrap_or(10);\n\
             \x20   if s == \"--trace\" {}\n\
             \x20   let _ = (out, n);\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { a.opt(\"bogus\"); }\n\
             }\n",
        );
        let mut flags = BTreeMap::new();
        collect_flags(&f, &mut flags);
        assert!(
            flags.contains_key("out") && flags.contains_key("n") && flags.contains_key("trace")
        );
        assert!(!flags.contains_key("bogus"), "test keys are excluded");
        let mut out = Vec::new();
        check(&flags, "documents --out and --trace only", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`--n`"));
    }

    #[test]
    fn stale_readme_rows_are_flagged_but_prose_is_exempt() {
        let mut flags = BTreeMap::new();
        flags.insert("trace".to_string(), ("x.rs".to_string(), 1));
        let readme = "\
Run `cargo run --example quickstart` to begin.\n\
| flag | meaning |\n\
|---|---|\n\
| `--trace FILE` | still parsed |\n\
| `--telemetry` | removed in PR 3 |\n";
        let mut out = Vec::new();
        check_readme_rows(&flags, readme, "README.md", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("`--telemetry`"));
    }

    #[test]
    fn prefix_matches_do_not_count_as_documentation() {
        let mut flags = BTreeMap::new();
        flags.insert("b".to_string(), ("x.rs".to_string(), 1));
        let mut out = Vec::new();
        check(&flags, "only --budget is documented", &mut out);
        assert_eq!(out.len(), 1, "`--budget` must not satisfy `--b`");
        let mut ok = Vec::new();
        check(&flags, "here --b is documented (for buffers)", &mut ok);
        assert!(ok.is_empty(), "exact word-boundary match is documentation");
    }
}
