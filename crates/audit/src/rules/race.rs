//! `jp-race` — concurrency-soundness rules over a shared-state model.
//!
//! A token-level extractor (no type information, same spirit as the rest
//! of this crate) builds a per-file [`FileModel`] of the shared-state
//! surface: every `Atomic*` operation with its `Ordering` argument(s),
//! every `Mutex`/`RwLock` acquisition, every `thread::scope`/spawn
//! boundary, and every channel endpoint. Four rules check the model:
//!
//! * **`atomic-ordering`** — every operation using a non-`SeqCst`
//!   ordering must carry an inline `// race:order(<why>)` justification
//!   (same line or the two lines above, mirroring `audit:allow`). A
//!   reason-less note, or a note covering no such operation, is itself a
//!   finding.
//! * **`lock-order`** — acquisitions made while another guard is live
//!   form edges of a global lock-acquisition graph; any cycle (including
//!   a self-edge: re-acquiring a lock already held) is a potential
//!   deadlock. The graph renders to Graphviz via [`lock_order_dot`].
//! * **`guard-across-call`** — no lock guard may be live across a call
//!   whose callee matches a configured prefix list (solver entrypoints,
//!   obs/pulse sinks): such calls can block, re-enter, or take further
//!   locks the holder cannot see.
//! * **`spawn-containment`** — every `spawn` call must sit in a function
//!   that enters `std::thread::scope` (the jp-par runtime does) or that
//!   receives the `std::thread::Scope` handle as a parameter (the scope
//!   block then lives in the caller); a detached
//!   `thread::spawn`/`Builder::spawn` outlives its caller's borrow
//!   discipline and must be `audit:allow`ed with its lifecycle story.
//!
//! Guard liveness is tracked per function with a brace/statement
//! heuristic: a `let`-bound guard lives until its enclosing block closes
//! or `drop(var)` runs; a temporary guard lives to the end of its
//! statement — including the trailing block of an `if let`/`match` whose
//! scrutinee it is, matching edition-2021 temporary lifetimes. Lock
//! *names* are the last field/binding identifier of the receiver (e.g.
//! `lock(&self.shared.injector)` → `injector`), qualified by crate, so
//! the graph is heuristic-but-stable; all four rules skip test code.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Rule: non-`SeqCst` orderings need a `race:order(<why>)` note.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule: the global lock-acquisition graph must be acyclic.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule: no guard held across a call into a forbidden callee.
pub const GUARD_ACROSS_CALL: &str = "guard-across-call";
/// Rule: every spawn is scoped (or explicitly lifecycle-annotated).
pub const SPAWN_CONTAINMENT: &str = "spawn-containment";

/// Method names that take one or two `Ordering` arguments on atomics.
const ATOMIC_METHODS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// `std::sync::atomic::Ordering` variants. These never collide with
/// `std::cmp::Ordering`'s (`Less`/`Equal`/`Greater`), so matching the
/// `Ordering :: <variant>` token run on the variant name is unambiguous
/// even for fully-qualified paths.
const ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Chain adapters that pass a guard through unchanged, so
/// `m.lock().unwrap_or_else(|e| e.into_inner())` still binds a guard.
const GUARD_PRESERVING: [&str; 3] = ["unwrap", "unwrap_or_else", "expect"];

/// Default forbidden-callee prefixes for `guard-across-call` when the
/// config section lists none: the solver entrypoints and every
/// jp-obs/jp-pulse emission (each of which may flush a sink or take
/// registry locks of its own).
pub const DEFAULT_FORBIDDEN_CALLS: [&str; 11] = [
    "solve",
    "pebble_",
    "portfolio_",
    "optimal_",
    "bb_min",
    "run_tasks",
    "counter",
    "gauge_set",
    "span",
    "flush",
    "adopt",
];

/// One atomic operation and the `Ordering`s it was called with.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    /// 1-based line of the method identifier.
    pub line: u32,
    /// The atomic method (`load`, `fetch_add`, …) or `use` for a bare
    /// `Ordering::…` outside any recognized call.
    pub method: String,
    /// `(variant, line)` per `Ordering::` argument, in source order.
    pub orderings: Vec<(String, u32)>,
    /// Whether a `race:order` note with a reason covers the operation.
    pub justified: bool,
}

impl AtomicOp {
    /// Whether any argument uses a non-`SeqCst` ordering.
    pub fn relaxed(&self) -> bool {
        self.orderings.iter().any(|(v, _)| v != "SeqCst")
    }

    fn lines(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.line).chain(self.orderings.iter().map(|&(_, l)| l))
    }
}

/// One `Mutex`/`RwLock` acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Crate-qualified heuristic lock name (`pulse.MEMBERS`).
    pub name: String,
    /// `lock`, `read`, or `write`.
    pub op: String,
}

/// An acquisition of `second` while `first` was held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub first: String,
    /// The lock acquired under it.
    pub second: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// A call made while a lock guard was live, matching a forbidden prefix.
#[derive(Debug, Clone)]
pub struct GuardCall {
    /// 1-based line of the call.
    pub line: u32,
    /// The held lock's name.
    pub guard: String,
    /// The callee identifier.
    pub callee: String,
}

/// One spawn site.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 1-based line of the `spawn` identifier.
    pub line: u32,
    /// Whether the enclosing function enters `thread::scope`.
    pub scoped: bool,
}

/// One channel constructor or endpoint-type mention.
#[derive(Debug, Clone)]
pub struct ChannelSite {
    /// 1-based line.
    pub line: u32,
    /// The matched identifier (`channel`, `Sender`, …).
    pub what: String,
}

/// The shared-state model of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Atomic operations with their orderings.
    pub atomics: Vec<AtomicOp>,
    /// Lock acquisition sites.
    pub locks: Vec<LockSite>,
    /// Nested-acquisition edges.
    pub edges: Vec<LockEdge>,
    /// Forbidden calls under a live guard.
    pub guard_calls: Vec<GuardCall>,
    /// Spawn sites.
    pub spawns: Vec<SpawnSite>,
    /// Channel constructors/endpoints.
    pub channels: Vec<ChannelSite>,
}

/// The crate qualifier for lock names: `crates/pulse/src/…` → `pulse`.
fn crate_prefix(rel_path: &str) -> Option<&str> {
    rel_path.strip_prefix("crates/")?.split('/').next()
}

fn qualify(rel_path: &str, name: &str) -> String {
    match crate_prefix(rel_path) {
        Some(c) => format!("{c}.{name}"),
        None => name.to_string(),
    }
}

/// Builds the shared-state model of `file`. `forbidden_calls` is the
/// callee-prefix list of the `guard-across-call` rule (matched against
/// every call made while a guard is live). Test code is skipped.
pub fn extract(file: &SourceFile, forbidden_calls: &[String]) -> FileModel {
    let code: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| !t.is_comment() && !file.in_test(t.line))
        .collect();
    let mut model = FileModel::default();
    scan_atomics(&code, file, &mut model);
    scan_channels(&code, &mut model);
    scan_functions(&code, file, forbidden_calls, &mut model);
    model
}

/// Is `code[i..]` the token run `Ordering :: <variant>`? Returns the
/// variant token index.
fn ordering_variant_at(code: &[&Token], i: usize) -> Option<usize> {
    if !code[i].is_ident("Ordering") {
        return None;
    }
    let (c1, c2, v) = (code.get(i + 1)?, code.get(i + 2)?, code.get(i + 3)?);
    if !c1.is_punct(':') || !c2.is_punct(':') {
        return None;
    }
    // `Ordering::<T>` (turbofish) or `Ordering::Variant(x)` never occur
    // for the atomic enum; require a bare known variant.
    if ORDERING_VARIANTS.contains(&v.text.as_str()) && v.kind == TokenKind::Ident {
        Some(i + 3)
    } else {
        None
    }
}

/// One stack frame: an open atomic-method call collecting orderings.
struct OpenCall {
    method: String,
    line: u32,
    /// Paren depth just after the call's `(` was consumed.
    depth: i32,
    orderings: Vec<(String, u32)>,
}

fn scan_atomics(code: &[&Token], file: &SourceFile, model: &mut FileModel) {
    let mut depth = 0i32;
    let mut stack: Vec<OpenCall> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            while stack.last().is_some_and(|c| c.depth > depth) {
                let call = stack.pop().unwrap_or_else(|| unreachable!());
                push_op(model, file, call.method, call.line, call.orderings);
            }
        } else if t.kind == TokenKind::Ident
            && ATOMIC_METHODS.contains(&t.text.as_str())
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            stack.push(OpenCall {
                method: t.text.clone(),
                line: t.line,
                depth: depth + 1, // the `(` is consumed next iteration
                orderings: Vec::new(),
            });
        } else if let Some(vi) = ordering_variant_at(code, i) {
            let variant = (code[vi].text.clone(), code[vi].line);
            match stack.last_mut() {
                Some(call) => call.orderings.push(variant),
                // a bare `Ordering::X` outside any atomic call (bound to
                // a variable, passed through a helper…)
                None => push_op(model, file, "use".to_string(), variant.1, vec![variant]),
            }
            i = vi + 1;
            continue;
        }
        i += 1;
    }
    // unterminated calls at EOF (malformed input) still flush
    while let Some(call) = stack.pop() {
        push_op(model, file, call.method, call.line, call.orderings);
    }
    model.atomics.sort_by_key(|op| op.line);
}

fn push_op(
    model: &mut FileModel,
    file: &SourceFile,
    method: String,
    line: u32,
    orderings: Vec<(String, u32)>,
) {
    // `.load(…)`/`.store(…)` on non-atomics (e.g. io) carry no
    // `Ordering::` argument — only ordering-carrying calls are atomic.
    if orderings.is_empty() {
        return;
    }
    let mut op = AtomicOp {
        line,
        method,
        orderings,
        justified: false,
    };
    let justified = op.lines().any(|l| file.order_justified(l));
    op.justified = justified;
    model.atomics.push(op);
}

fn scan_channels(code: &[&Token], model: &mut FileModel) {
    for (i, t) in code.iter().enumerate() {
        let ctor = (t.is_ident("channel") || t.is_ident("sync_channel"))
            && code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let endpoint = t.is_ident("Sender") || t.is_ident("Receiver") || t.is_ident("SyncSender");
        if ctor || endpoint {
            model.channels.push(ChannelSite {
                line: t.line,
                what: t.text.clone(),
            });
        }
    }
}

/// A live lock guard inside one function body.
struct Guard {
    /// Crate-qualified lock name.
    name: String,
    /// Binding identifier, when `let`-bound (for `drop(var)`).
    var: Option<String>,
    /// Brace depth (relative to the body) at acquisition.
    depth: i32,
    /// Temporary (not `let`-bound, or chained past the guard): lives to
    /// the end of its statement only.
    temp: bool,
    /// A block opened at the guard's own depth since acquisition — the
    /// trailing block of an `if let`/`match` consuming the temporary.
    opened_block: bool,
}

fn scan_functions(
    code: &[&Token],
    file: &SourceFile,
    forbidden_calls: &[String],
    model: &mut FileModel,
) {
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_ident("fn") && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            // body starts at the first `{` outside the signature parens
            let mut j = i + 2;
            let mut paren = 0i32;
            while j < code.len() {
                let t = code[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('{') && paren == 0 {
                    break;
                } else if t.is_punct(';') && paren == 0 {
                    break; // trait method declaration — no body
                }
                j += 1;
            }
            if j < code.len() && code[j].is_punct('{') {
                let end = match_brace(code, j);
                scan_body(&code[i..j], &code[j + 1..end], file, forbidden_calls, model);
                i = end + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the `}` matching the `{` at `open`, or `code.len() - 1`.
fn match_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Walks one function body tracking guard liveness; `sig` is the
/// function's signature tokens (from `fn` to the opening brace) and
/// `body` excludes the outer braces. Nested `fn` items are rare enough
/// to share the walk.
fn scan_body(
    sig: &[&Token],
    body: &[&Token],
    file: &SourceFile,
    forbidden_calls: &[String],
    model: &mut FileModel,
) {
    // A spawn is contained when this function opens `thread::scope`
    // itself, or when it receives the `std::thread::Scope` handle as a
    // parameter — the scope block then lives in the caller, which
    // cannot outlive its own `thread::scope` call.
    let has_scope = body.iter().enumerate().any(|(k, t)| {
        t.is_ident("scope") && k >= 2 && body[k - 1].is_punct(':') && body[k - 2].is_punct(':')
    }) || sig.iter().any(|t| t.is_ident("Scope"));
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;
    let mut i = 0usize;
    while i < body.len() {
        let t = body[i];
        if t.is_punct('{') {
            for g in guards.iter_mut().filter(|g| g.temp && g.depth == depth) {
                g.opened_block = true;
            }
            depth += 1;
            pending_let = None;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth && !(g.temp && g.opened_block && g.depth >= depth));
            pending_let = None;
        } else if t.is_punct(';') {
            guards.retain(|g| !(g.temp && g.depth == depth));
            pending_let = None;
        } else if t.is_ident("let") {
            // `let [mut] name = …` — first identifier of the pattern
            let mut k = i + 1;
            if body.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            // tuple/struct patterns: step into the first ident
            while body
                .get(k)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('&'))
            {
                k += 1;
            }
            pending_let = body
                .get(k)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
        } else if t.is_ident("drop")
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && body.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(var) = body.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                guards.retain(|g| g.var.as_deref() != Some(var.text.as_str()));
            }
        } else if let Some((name, op, after)) = acquisition_at(body, i, file) {
            for g in &guards {
                model.edges.push(LockEdge {
                    first: g.name.clone(),
                    second: name.clone(),
                    line: t.line,
                });
            }
            model.locks.push(LockSite {
                line: t.line,
                name: name.clone(),
                op,
            });
            // does the chain continue past guard-preserving adapters?
            let (rest, chained) = chain_end(body, after);
            guards.push(Guard {
                name,
                var: if chained { None } else { pending_let.clone() },
                depth,
                temp: chained || pending_let.is_none(),
                opened_block: false,
            });
            i = rest;
            continue;
        } else if !guards.is_empty()
            && t.kind == TokenKind::Ident
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && body[i - 1].is_ident("fn"))
            && forbidden_calls
                .iter()
                .any(|p| t.text.starts_with(p.as_str()))
        {
            if let Some(g) = guards.last() {
                model.guard_calls.push(GuardCall {
                    line: t.line,
                    guard: g.name.clone(),
                    callee: t.text.clone(),
                });
            }
        } else if t.is_ident("spawn")
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && i > 0
            && (body[i - 1].is_punct('.') || body[i - 1].is_punct(':'))
        {
            model.spawns.push(SpawnSite {
                line: t.line,
                scoped: has_scope,
            });
        }
        i += 1;
    }
}

/// If `body[i]` begins a lock acquisition, returns `(qualified name,
/// op, index past the call's closing paren)`.
fn acquisition_at(body: &[&Token], i: usize, file: &SourceFile) -> Option<(String, String, usize)> {
    let t = body[i];
    let prev_dot = i > 0 && body[i - 1].is_punct('.');
    // free helper: `lock(&self.shared.injector)` — the workspace-wide
    // poison-tolerant `fn lock<T>(m: &Mutex<T>)` idiom
    if t.is_ident("lock") && !prev_dot && body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        if i > 0 && body[i - 1].is_ident("fn") {
            return None; // the helper's own definition
        }
        let close = match_paren(body, i + 1);
        let name = last_field_ident(&body[i + 2..close])?;
        return Some((qualify(&file.rel_path, &name), "lock".into(), close + 1));
    }
    // methods: `.lock()`, `.read()`, `.write()` with no arguments (io
    // read/write always take a buffer, so the empty-args shape is the
    // synchronization one)
    if prev_dot
        && (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && body.get(i + 1).is_some_and(|n| n.is_punct('('))
        && body.get(i + 2).is_some_and(|n| n.is_punct(')'))
    {
        let name = receiver_ident(body, i - 1)?;
        return Some((qualify(&file.rel_path, &name), t.text.clone(), i + 3));
    }
    None
}

/// Index of the `)` matching the `(` at `open`, or the last index.
fn match_paren(body: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in body.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    body.len().saturating_sub(1)
}

/// The last field identifier of a receiver expression at bracket depth
/// zero: `&self.shared.injector` → `injector`; `self.locals[victim]` →
/// `locals` (index subscripts are skipped).
fn last_field_ident(group: &[&Token]) -> Option<String> {
    let mut last = None;
    let mut k = 0usize;
    while k < group.len() {
        let t = group[k];
        if t.is_punct('[') {
            // skip the subscript
            let mut depth = 0i32;
            while k < group.len() {
                if group[k].is_punct('[') {
                    depth += 1;
                } else if group[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
        } else if t.kind == TokenKind::Ident && !t.is_ident("self") && !t.is_ident("mut") {
            last = Some(t.text.clone());
        }
        k += 1;
    }
    last
}

/// The receiver's last field identifier, scanning backwards from the
/// `.` at `dot`: `self.shards[i].read()` → `shards`.
fn receiver_ident(body: &[&Token], dot: usize) -> Option<String> {
    let mut k = dot.checked_sub(1)?;
    loop {
        let t = body[k];
        if t.is_punct(']') {
            // skip the subscript backwards
            let mut depth = 0i32;
            loop {
                if body[k].is_punct(']') {
                    depth += 1;
                } else if body[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            k = k.checked_sub(1)?;
        } else if t.kind == TokenKind::Ident {
            if t.is_ident("self") {
                return None;
            }
            return Some(t.text.clone());
        } else {
            return None;
        }
    }
}

/// Follows a call chain from `after` (just past an acquisition's `)`)
/// over guard-preserving adapters. Returns `(resume index, chained)`
/// where `chained` means the chain continued into a *non*-preserving
/// method — the expression's value is no longer the guard itself.
fn chain_end(body: &[&Token], mut after: usize) -> (usize, bool) {
    loop {
        let dot = body.get(after).is_some_and(|t| t.is_punct('.'));
        if !dot {
            return (after, false);
        }
        let next = body.get(after + 1);
        let preserving = next.is_some_and(|t| GUARD_PRESERVING.contains(&t.text.as_str()));
        if !preserving {
            return (after, true);
        }
        // skip `.adapter(…)`
        if body.get(after + 2).is_some_and(|t| t.is_punct('(')) {
            after = match_paren(body, after + 2) + 1;
        } else {
            return (after, false);
        }
    }
}

// ---------------------------------------------------------------------
// Rule checks
// ---------------------------------------------------------------------

/// Whether `rel` falls under one of the configured path scopes (same
/// semantics as the panic-freedom rule: exact file or `dir/` prefix).
pub fn in_scope(rel: &str, paths: &[String]) -> bool {
    crate::rules::panic_freedom::in_scope(rel, paths)
}

/// `atomic-ordering`: every non-`SeqCst` ordering is justified, every
/// note has a reason, every note covers something.
pub fn check_atomic_ordering(file: &SourceFile, model: &FileModel, out: &mut Vec<Violation>) {
    for op in &model.atomics {
        if op.relaxed() && !op.justified {
            let orders: Vec<&str> = op.orderings.iter().map(|(v, _)| v.as_str()).collect();
            out.push(Violation::new(
                ATOMIC_ORDERING,
                &file.rel_path,
                op.line,
                format!(
                    "`{}({})` uses a non-SeqCst ordering without a `// race:order(<why>)` justification",
                    op.method,
                    orders.join(", "),
                ),
            ));
        }
    }
    let covered: BTreeSet<u32> = model
        .atomics
        .iter()
        .filter(|op| op.relaxed())
        .flat_map(|op| op.lines())
        .collect();
    for note in file.orders.iter().filter(|n| !file.in_test(n.line)) {
        if note.reason.is_empty() {
            out.push(Violation::new(
                ATOMIC_ORDERING,
                &file.rel_path,
                note.line,
                "race:order() has no reason — ordering justifications must say why".to_string(),
            ));
        } else if !(note.line..=note.line + 2).any(|l| covered.contains(&l)) {
            out.push(Violation::new(
                ATOMIC_ORDERING,
                &file.rel_path,
                note.line,
                "race:order note covers no non-SeqCst atomic operation (stale annotation)"
                    .to_string(),
            ));
        }
    }
}

/// The global lock graph: adjacency plus one representative site per
/// edge, in deterministic order.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// All node names (every acquisition site contributes its lock).
    pub nodes: BTreeSet<String>,
    /// `(first, second)` → representative `(file, line)`.
    pub edges: BTreeMap<(String, String), (String, u32)>,
}

/// Folds per-file models (already filtered to the rule's scope) into
/// one graph.
pub fn lock_graph<'a>(models: impl Iterator<Item = (&'a str, &'a FileModel)>) -> LockGraph {
    let mut g = LockGraph::default();
    for (path, m) in models {
        for site in &m.locks {
            g.nodes.insert(site.name.clone());
        }
        for e in &m.edges {
            g.nodes.insert(e.first.clone());
            g.nodes.insert(e.second.clone());
            g.edges
                .entry((e.first.clone(), e.second.clone()))
                .or_insert_with(|| (path.to_string(), e.line));
        }
    }
    g
}

/// Edges that participate in a cycle (including self-edges).
pub fn cyclic_edges(g: &LockGraph) -> Vec<(String, String)> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in g.edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    g.edges
        .keys()
        .filter(|(a, b)| a == b || reaches(b, a))
        .cloned()
        .collect()
}

/// `lock-order`: any cycle in the acquisition graph is a finding,
/// anchored at each participating edge's representative site.
pub fn check_lock_order(g: &LockGraph, out: &mut Vec<Violation>) {
    for (a, b) in cyclic_edges(g) {
        if let Some((file, line)) = g.edges.get(&(a.clone(), b.clone())) {
            let msg = if a == b {
                format!("lock `{a}` re-acquired while already held (self-deadlock)")
            } else {
                format!(
                    "acquiring `{b}` while holding `{a}` closes a lock-order cycle (deadlock risk)"
                )
            };
            out.push(Violation::new(LOCK_ORDER, file, *line, msg));
        }
    }
}

/// Renders the acquisition graph as Graphviz DOT; cyclic edges are red.
pub fn lock_order_dot(g: &LockGraph) -> String {
    let cyclic: BTreeSet<(String, String)> = cyclic_edges(g).into_iter().collect();
    let mut s = String::new();
    s.push_str("// Lock-acquisition order graph, generated by `jp-audit race`.\n");
    s.push_str("// An edge A -> B means some function acquires B while holding A;\n");
    s.push_str("// a cycle would be a potential deadlock (rendered red).\n");
    s.push_str("digraph lock_order {\n");
    s.push_str("  rankdir=LR;\n");
    s.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    for n in &g.nodes {
        s.push_str(&format!("  \"{n}\";\n"));
    }
    for ((a, b), (file, line)) in &g.edges {
        let attrs = if cyclic.contains(&(a.clone(), b.clone())) {
            format!("label=\"{file}:{line}\", color=red")
        } else {
            format!("label=\"{file}:{line}\"")
        };
        s.push_str(&format!("  \"{a}\" -> \"{b}\" [{attrs}];\n"));
    }
    s.push_str("}\n");
    s
}

/// `guard-across-call`: every forbidden call under a live guard.
pub fn check_guard_across_call(file: &SourceFile, model: &FileModel, out: &mut Vec<Violation>) {
    for c in &model.guard_calls {
        out.push(Violation::new(
            GUARD_ACROSS_CALL,
            &file.rel_path,
            c.line,
            format!(
                "call to `{}` while lock guard `{}` is live — drop the guard first",
                c.callee, c.guard
            ),
        ));
    }
}

/// `spawn-containment`: every unscoped spawn.
pub fn check_spawn_containment(file: &SourceFile, model: &FileModel, out: &mut Vec<Violation>) {
    for s in &model.spawns {
        if !s.scoped {
            out.push(Violation::new(
                SPAWN_CONTAINMENT,
                &file.rel_path,
                s.line,
                "thread spawned outside `thread::scope`/jp-par runtime — detached threads \
                 need an explicit lifecycle justification"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> (SourceFile, FileModel) {
        let f = SourceFile::new("crates/demo/src/lib.rs".into(), src);
        let forbidden: Vec<String> = DEFAULT_FORBIDDEN_CALLS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = extract(&f, &forbidden);
        (f, m)
    }

    #[test]
    fn atomic_ops_collect_their_orderings() {
        let (_, m) = model(
            "fn f(a: &AtomicUsize, b: &AtomicBool) {\n\
             \x20   a.store(b.load(Ordering::Acquire) as usize, Ordering::Release);\n\
             \x20   a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).ok();\n\
             }\n",
        );
        assert_eq!(m.atomics.len(), 3, "{:?}", m.atomics);
        let store = m.atomics.iter().find(|o| o.method == "store").unwrap();
        assert_eq!(store.orderings, vec![("Release".to_string(), 2)]);
        let load = m.atomics.iter().find(|o| o.method == "load").unwrap();
        assert_eq!(load.orderings, vec![("Acquire".to_string(), 2)]);
        let cas = m
            .atomics
            .iter()
            .find(|o| o.method == "compare_exchange")
            .unwrap();
        assert_eq!(cas.orderings.len(), 2);
        assert!(cas.relaxed(), "SeqCst+Relaxed pair still needs a note");
    }

    #[test]
    fn fully_qualified_and_cmp_orderings_disambiguate() {
        let (_, m) = model(
            "fn f(a: &AtomicU64, v: &[u32]) {\n\
             \x20   a.fetch_add(1, std::sync::atomic::Ordering::SeqCst);\n\
             \x20   let _ = v.binary_search_by(|x| match x.cmp(&3) { std::cmp::Ordering::Less => todo!(), _ => todo!() });\n\
             }\n",
        );
        assert_eq!(m.atomics.len(), 1, "{:?}", m.atomics);
        assert_eq!(m.atomics[0].method, "fetch_add");
        assert!(!m.atomics[0].relaxed());
    }

    #[test]
    fn turbofish_ordering_paths_are_not_atomic_ops() {
        // `Ordering::<…>` never names an atomic variant; a generic
        // mention of the type must not produce a model entry.
        let (_, m) = model(
            "fn f() {\n\
             \x20   let v = Vec::<Ordering>::new();\n\
             \x20   let _ = std::mem::size_of::<Ordering>();\n\
             \x20   drop(v);\n\
             }\n",
        );
        assert!(m.atomics.is_empty(), "{:?}", m.atomics);
    }

    #[test]
    fn macro_generated_atomics_are_seen() {
        let (_, m) = model(
            "macro_rules! bump {\n\
             \x20   ($c:expr) => {\n\
             \x20       $c.fetch_add(1, Ordering::Relaxed)\n\
             \x20   };\n\
             }\n",
        );
        assert_eq!(m.atomics.len(), 1);
        assert_eq!(m.atomics[0].method, "fetch_add");
        assert!(m.atomics[0].relaxed());
    }

    #[test]
    fn bare_ordering_use_is_modelled() {
        let (_, m) = model("fn f() { let o = Ordering::Relaxed; g(o); }\n");
        assert_eq!(m.atomics.len(), 1);
        assert_eq!(m.atomics[0].method, "use");
    }

    #[test]
    fn justified_ops_pass_and_unjustified_ops_fail() {
        let (f, m) = model(
            "fn f(a: &AtomicU64) {\n\
             \x20   a.fetch_add(1, Ordering::Relaxed); // race:order(statistic, read after join)\n\
             \x20   let x = 1;\n\
             \x20   let y = x;\n\
             \x20   a.load(Ordering::Relaxed);\n\
             }\n",
        );
        let mut out = Vec::new();
        check_atomic_ordering(&f, &m, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("load(Relaxed)"));
    }

    #[test]
    fn reasonless_and_stale_notes_are_findings() {
        let (f, m) = model(
            "fn f(a: &AtomicU64) {\n\
             \x20   a.load(Ordering::Relaxed); // race:order()\n\
             \x20   // race:order(nothing relaxed anywhere near here)\n\
             \x20   let x = 1;\n\
             \x20   drop(x);\n\
             }\n",
        );
        let mut out = Vec::new();
        check_atomic_ordering(&f, &m, &mut out);
        let msgs: Vec<&str> = out.iter().map(|v| v.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{msgs:?}"); // unjustified load + empty note + stale note
        assert!(msgs.iter().any(|m| m.contains("no reason")));
        assert!(msgs.iter().any(|m| m.contains("stale annotation")));
    }

    #[test]
    fn nested_acquisition_builds_an_edge_and_cycles_are_found() {
        let (_, m) = model(
            "fn install() {\n\
             \x20   let scope = lock(&SCOPE);\n\
             \x20   let mut members = lock(&MEMBERS);\n\
             \x20   *members = None;\n\
             }\n\
             fn reverse() {\n\
             \x20   let members = lock(&MEMBERS);\n\
             \x20   let scope = lock(&SCOPE);\n\
             \x20   drop((members, scope));\n\
             }\n",
        );
        assert_eq!(m.edges.len(), 2, "{:?}", m.edges);
        let g = lock_graph(std::iter::once(("crates/demo/src/lib.rs", &m)));
        let mut out = Vec::new();
        check_lock_order(&g, &mut out);
        assert_eq!(out.len(), 2, "both edges participate in the cycle");
        let dot = lock_order_dot(&g);
        assert!(dot.contains("color=red"), "{dot}");
    }

    #[test]
    fn block_scoped_guard_does_not_edge_into_later_locks() {
        let (_, m) = model(
            "fn f() {\n\
             \x20   {\n\
             \x20       let a = lock(&FIRST);\n\
             \x20       a.touch();\n\
             \x20   }\n\
             \x20   let b = lock(&SECOND);\n\
             \x20   drop(b);\n\
             }\n",
        );
        assert!(m.edges.is_empty(), "{:?}", m.edges);
        assert_eq!(m.locks.len(), 2);
    }

    #[test]
    fn dropped_guard_stops_tracking() {
        let (f, m) = model(
            "fn f(s: &Shard) {\n\
             \x20   let map = lock(&s.inner);\n\
             \x20   drop(map);\n\
             \x20   counter_add(\"x\", 1);\n\
             }\n",
        );
        let mut out = Vec::new();
        check_guard_across_call(&f, &m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn temporary_guard_lives_through_an_if_let_block_only() {
        // edition 2021: the scrutinee temporary lives through the block,
        // then dies — the second acquisition must not form an edge.
        let (_, m) = model(
            "fn next(d: &Deques) {\n\
             \x20   if let Some(t) = lock(&d.own).pop_front() {\n\
             \x20       return Some(t);\n\
             \x20   }\n\
             \x20   if let Some(t) = lock(&d.injector).pop_front() {\n\
             \x20       return Some(t);\n\
             \x20   }\n\
             }\n",
        );
        assert_eq!(m.locks.len(), 2);
        assert!(m.edges.is_empty(), "{:?}", m.edges);
    }

    #[test]
    fn forbidden_call_under_guard_is_reported() {
        let (f, m) = model(
            "fn offer(&self, jumps: usize) {\n\
             \x20   let mut guard = lock(&self.best_tour);\n\
             \x20   gauge_set(\"bb.incumbent_jumps\", jumps as u64);\n\
             \x20   *guard = jumps;\n\
             }\n",
        );
        let mut out = Vec::new();
        check_guard_across_call(&f, &m, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("gauge_set"));
        assert!(out[0].message.contains("best_tour"));
    }

    #[test]
    fn rwlock_method_acquisitions_are_detected() {
        let (_, m) = model(
            "fn snap(&self) {\n\
             \x20   let map = self.shards[i].read().unwrap_or_else(|e| e.into_inner());\n\
             \x20   let mut w = shard.write().unwrap_or_else(|e| e.into_inner());\n\
             \x20   w.clear();\n\
             }\n",
        );
        let names: Vec<&str> = m.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["demo.shards", "demo.shard"], "{:?}", m.locks);
        assert_eq!(m.locks[0].op, "read");
        assert_eq!(m.locks[1].op, "write");
    }

    #[test]
    fn io_read_write_with_arguments_are_not_locks() {
        let (_, m) = model(
            "fn f(mut file: File, buf: &mut [u8]) {\n\
             \x20   file.read(buf).ok();\n\
             \x20   file.write(b\"x\").ok();\n\
             }\n",
        );
        assert!(m.locks.is_empty(), "{:?}", m.locks);
    }

    #[test]
    fn scoped_spawns_pass_and_detached_spawns_fail() {
        let (f, m) = model(
            "fn scoped(n: usize) {\n\
             \x20   std::thread::scope(|s| {\n\
             \x20       for _ in 0..n { s.spawn(|| work()); }\n\
             \x20   });\n\
             }\n\
             fn detached() {\n\
             \x20   std::thread::Builder::new().spawn(|| work()).ok();\n\
             }\n",
        );
        assert_eq!(m.spawns.len(), 2);
        let mut out = Vec::new();
        check_spawn_containment(&f, &m, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 7);
    }

    #[test]
    fn spawning_on_a_scope_parameter_is_contained() {
        // the scope block lives in the caller; a helper handed the
        // `std::thread::Scope` handle cannot detach anything
        let (f, m) = model(
            "fn acceptor<'scope, 'env>(s: &'scope std::thread::Scope<'scope, 'env>) {\n\
             \x20   s.spawn(|| work());\n\
             }\n",
        );
        assert_eq!(m.spawns.len(), 1);
        assert!(m.spawns[0].scoped, "{:?}", m.spawns);
        let mut out = Vec::new();
        check_spawn_containment(&f, &m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn channel_endpoints_are_inventoried() {
        let (_, m) = model(
            "fn f() -> (Sender<u32>, Receiver<u32>) {\n\
             \x20   std::sync::mpsc::channel()\n\
             }\n",
        );
        assert_eq!(m.channels.len(), 3, "{:?}", m.channels);
    }

    #[test]
    fn test_code_is_exempt() {
        let (_, m) = model(
            "#[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() {\n\
             \x20       FLAG.store(true, Ordering::SeqCst);\n\
             \x20       std::thread::spawn(|| {}).join().ok();\n\
             \x20   }\n\
             }\n",
        );
        assert!(m.atomics.is_empty() && m.spawns.is_empty());
    }
}
