#![forbid(unsafe_code)]
//! `jp-audit` command line: `check`, `matrix`, `rules`.

use jp_audit::{config::Config, engine, Level};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
jp-audit — workspace-native static analysis

USAGE:
  jp-audit check  [--root DIR] [--config FILE]   run all rules; exit 1 on deny findings
  jp-audit matrix [--root DIR] [--config FILE]   print the claim-traceability matrix
  jp-audit race   [--root DIR] [--config FILE] [--model] [--dot FILE]
                                                 shared-state model + concurrency findings
  jp-audit rules  [--root DIR] [--config FILE]   list rules and configured levels

`check` also rewrites the matrix file configured under
[claim-traceability] matrix (default figures/claims_matrix.md) and the
lock graph configured under [lock-order] dot (default
figures/lock_order.dot). `race` prints the per-file shared-state model
summary (--model for the full inventory), writes the same DOT file
(--dot overrides the destination), and exits 1 on deny-level findings
from the four concurrency rules.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("jp-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut cmd = None;
    let mut root = None;
    let mut config_path = None;
    let mut full_model = false;
    let mut dot_override = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = Some(PathBuf::from(need_value(args, i, "--root")?));
                i += 2;
            }
            "--config" => {
                config_path = Some(PathBuf::from(need_value(args, i, "--config")?));
                i += 2;
            }
            "--model" => {
                full_model = true;
                i += 1;
            }
            "--dot" => {
                dot_override = Some(need_value(args, i, "--dot")?.to_string());
                i += 2;
            }
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            c if cmd.is_none() && !c.starts_with('-') => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}\n\n{USAGE}").into()),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let config_path = config_path.unwrap_or_else(|| root.join("audit.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = Config::parse(&config_text)?;

    match cmd.as_deref() {
        Some("check") | None => {
            let outcome = engine::run(&root, &config)?;
            if let Some(matrix) = &outcome.matrix {
                let target = config
                    .rule("claim-traceability")
                    .str("matrix")
                    .unwrap_or("figures/claims_matrix.md")
                    .to_string();
                let path = root.join(&target);
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir)?;
                }
                std::fs::write(&path, matrix)?;
                println!("wrote {target}");
            }
            if let Some(dot) = outcome.race.as_ref().and_then(|r| r.dot.as_deref()) {
                write_dot(&root, &config, dot, dot_override.as_deref())?;
            }
            let (mut denies, mut warns) = (0usize, 0usize);
            for (level, v) in &outcome.violations {
                match level {
                    Level::Deny => denies += 1,
                    Level::Warn => warns += 1,
                    Level::Allow => continue,
                }
                println!("{level}: {v}");
            }
            println!(
                "jp-audit: {denies} denied, {warns} warned ({} rule{} enforced)",
                jp_audit::rules::ALL.len(),
                if jp_audit::rules::ALL.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
            Ok(if outcome.failed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("matrix") => {
            let outcome = engine::run(&root, &config)?;
            match outcome.matrix {
                Some(m) => {
                    print!("{m}");
                    Ok(ExitCode::SUCCESS)
                }
                None => Err("claim-traceability is set to allow; no matrix produced".into()),
            }
        }
        Some("race") => {
            let outcome = engine::run(&root, &config)?;
            let Some(summary) = &outcome.race else {
                return Err("all four race rules are set to allow; no model produced".into());
            };
            let race_rules = [
                jp_audit::rules::race::ATOMIC_ORDERING,
                jp_audit::rules::race::LOCK_ORDER,
                jp_audit::rules::race::GUARD_ACROSS_CALL,
                jp_audit::rules::race::SPAWN_CONTAINMENT,
            ];
            let (mut atomics, mut locks, mut edges, mut spawns, mut channels) = (0, 0, 0, 0, 0);
            println!(
                "shared-state model ({} files in scope):",
                summary.models.len()
            );
            for (path, m) in &summary.models {
                println!(
                    "  {path}: {} atomic op{}, {} lock site{}, {} edge{}, {} spawn{}, {} channel{}",
                    m.atomics.len(),
                    plural(m.atomics.len()),
                    m.locks.len(),
                    plural(m.locks.len()),
                    m.edges.len(),
                    plural(m.edges.len()),
                    m.spawns.len(),
                    plural(m.spawns.len()),
                    m.channels.len(),
                    plural(m.channels.len()),
                );
                if full_model {
                    for op in &m.atomics {
                        let orders: Vec<&str> =
                            op.orderings.iter().map(|(v, _)| v.as_str()).collect();
                        println!(
                            "    atomic {}:{} {}({}){}",
                            path,
                            op.line,
                            op.method,
                            orders.join(", "),
                            if op.justified { " [justified]" } else { "" },
                        );
                    }
                    for l in &m.locks {
                        println!("    lock   {}:{} {}.{}()", path, l.line, l.name, l.op);
                    }
                    for e in &m.edges {
                        println!("    edge   {}:{} {} -> {}", path, e.line, e.first, e.second);
                    }
                    for s in &m.spawns {
                        let kind = if s.scoped { "scoped" } else { "detached" };
                        println!("    spawn  {}:{} {kind}", path, s.line);
                    }
                    for c in &m.channels {
                        println!("    chan   {}:{} {}", path, c.line, c.what);
                    }
                }
                atomics += m.atomics.len();
                locks += m.locks.len();
                edges += m.edges.len();
                spawns += m.spawns.len();
                channels += m.channels.len();
            }
            println!(
                "totals: {atomics} atomic ops, {locks} lock sites, {edges} lock edges, \
                 {spawns} spawns, {channels} channel endpoints",
            );
            if let Some(dot) = summary.dot.as_deref() {
                write_dot(&root, &config, dot, dot_override.as_deref())?;
            }
            let mut denied = false;
            for (level, v) in &outcome.violations {
                if !race_rules.contains(&v.rule.as_str()) || *level == Level::Allow {
                    continue;
                }
                denied |= *level == Level::Deny;
                println!("{level}: {v}");
            }
            Ok(if denied {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("rules") => {
            for rule in jp_audit::rules::ALL {
                println!("{rule:<20} {}", config.rule(rule).level());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

/// Writes the lock-order DOT to `--dot FILE`, the `[lock-order] dot`
/// config key, or `figures/lock_order.dot`, in that order.
fn write_dot(
    root: &std::path::Path,
    config: &Config,
    dot: &str,
    over: Option<&str>,
) -> std::io::Result<()> {
    let lo = config.rule("lock-order");
    let target = over
        .or_else(|| lo.str("dot"))
        .unwrap_or("figures/lock_order.dot")
        .to_string();
    let path = root.join(&target);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&path, dot)?;
    println!("wrote {target}");
    Ok(())
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn need_value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// The workspace root: walk up from the manifest dir (when run via
/// `cargo run -p jp-audit`) or the current directory until `audit.toml`
/// appears.
fn default_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join("audit.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return start;
        }
    }
}
