#![forbid(unsafe_code)]
//! `jp-audit` command line: `check`, `matrix`, `rules`.

use jp_audit::{config::Config, engine, Level};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
jp-audit — workspace-native static analysis

USAGE:
  jp-audit check  [--root DIR] [--config FILE]   run all rules; exit 1 on deny findings
  jp-audit matrix [--root DIR] [--config FILE]   print the claim-traceability matrix
  jp-audit rules  [--root DIR] [--config FILE]   list rules and configured levels

`check` also rewrites the matrix file configured under
[claim-traceability] matrix (default figures/claims_matrix.md).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("jp-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut cmd = None;
    let mut root = None;
    let mut config_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = Some(PathBuf::from(need_value(args, i, "--root")?));
                i += 2;
            }
            "--config" => {
                config_path = Some(PathBuf::from(need_value(args, i, "--config")?));
                i += 2;
            }
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            c if cmd.is_none() && !c.starts_with('-') => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}\n\n{USAGE}").into()),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let config_path = config_path.unwrap_or_else(|| root.join("audit.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = Config::parse(&config_text)?;

    match cmd.as_deref() {
        Some("check") | None => {
            let outcome = engine::run(&root, &config)?;
            if let Some(matrix) = &outcome.matrix {
                let target = config
                    .rule("claim-traceability")
                    .str("matrix")
                    .unwrap_or("figures/claims_matrix.md")
                    .to_string();
                let path = root.join(&target);
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir)?;
                }
                std::fs::write(&path, matrix)?;
                println!("wrote {target}");
            }
            let (mut denies, mut warns) = (0usize, 0usize);
            for (level, v) in &outcome.violations {
                match level {
                    Level::Deny => denies += 1,
                    Level::Warn => warns += 1,
                    Level::Allow => continue,
                }
                println!("{level}: {v}");
            }
            println!(
                "jp-audit: {denies} denied, {warns} warned ({} rule{} enforced)",
                jp_audit::rules::ALL.len(),
                if jp_audit::rules::ALL.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
            Ok(if outcome.failed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("matrix") => {
            let outcome = engine::run(&root, &config)?;
            match outcome.matrix {
                Some(m) => {
                    print!("{m}");
                    Ok(ExitCode::SUCCESS)
                }
                None => Err("claim-traceability is set to allow; no matrix produced".into()),
            }
        }
        Some("rules") => {
            for rule in jp_audit::rules::ALL {
                println!("{rule:<20} {}", config.rule(rule).level());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

fn need_value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// The workspace root: walk up from the manifest dir (when run via
/// `cargo run -p jp-audit`) or the current directory until `audit.toml`
/// appears.
fn default_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join("audit.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return start;
        }
    }
}
