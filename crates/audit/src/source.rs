//! Workspace walking and the per-file source model.
//!
//! Each `.rs` file is lexed once into a [`SourceFile`] carrying three
//! derived views the rules share:
//!
//! * **test regions** — line spans covered by `#[test]` / `#[cfg(test)]`
//!   items, found by token scanning with brace matching. Panic-freedom
//!   and obs-coverage skip them (tests assert by panicking; that is
//!   their job);
//! * **allow annotations** — `// audit:allow(<rule>) reason` escape
//!   hatches. An annotation suppresses findings of `<rule>` on its own
//!   line and the next code line; a missing reason is itself reported
//!   (rule `allow-annotation`);
//! * **claim tags** — `CLAIM(L2.1)` / `CLAIM(P2.1, P2.2)` markers inside
//!   comments, consumed by the claim-traceability rule.

use crate::lexer::{lex, Token};
use std::path::{Path, PathBuf};

/// A parsed `audit:allow` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// 1-based line the annotation sits on.
    pub line: u32,
    /// The stated justification (may be empty — which is a finding).
    pub reason: String,
}

/// A `CLAIM(..)` tag found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimTag {
    /// Claim identifier, e.g. `L2.1`.
    pub id: String,
    /// 1-based line of the tag.
    pub line: u32,
}

/// A `// race:order(<why>)` justification for a non-`SeqCst` atomic
/// memory ordering, consumed by the `atomic-ordering` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderNote {
    /// 1-based line the note sits on.
    pub line: u32,
    /// The stated justification (may be empty — which is a finding).
    pub reason: String,
}

/// One lexed workspace source file plus derived views.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, `/`-separated.
    pub rel_path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `test_lines[i]` ⇔ 1-based line `i+1` is inside a test item.
    pub test_lines: Vec<bool>,
    /// All allow annotations in the file.
    pub allows: Vec<Allow>,
    /// All claim tags in the file.
    pub claims: Vec<ClaimTag>,
    /// All `race:order(..)` justifications in the file.
    pub orders: Vec<OrderNote>,
}

impl SourceFile {
    /// Lexes `text` and computes the derived views.
    pub fn new(rel_path: String, text: &str) -> SourceFile {
        let tokens = lex(text);
        let line_count = text.lines().count().max(1);
        let test_lines = mark_test_regions(&tokens, line_count);
        let mut allows = Vec::new();
        let mut claims = Vec::new();
        let mut orders = Vec::new();
        for t in &tokens {
            // Only plain `//` comments carry annotations: doc comments
            // (`///`, `//!`, `/** */`) merely *describe* the syntax, and
            // must not trigger the meta-lints.
            if t.kind == crate::lexer::TokenKind::LineComment
                && !t.text.starts_with("///")
                && !t.text.starts_with("//!")
            {
                scan_comment(t, &mut allows, &mut claims, &mut orders);
            }
        }
        SourceFile {
            rel_path,
            tokens,
            test_lines,
            allows,
            claims,
            orders,
        }
    }

    /// Whether 1-based `line` lies in a `#[test]` / `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines
            .get((line as usize).saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether a finding of `rule` at `line` is suppressed by an
    /// `audit:allow` with a non-empty reason on the same or previous
    /// annotation line.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && !a.reason.is_empty() && (a.line == line || covers_next_line(a, line))
        })
    }

    /// Whether a non-`SeqCst` atomic ordering at `line` carries a
    /// `race:order(<why>)` justification with a non-empty reason, under
    /// the same same-line / next-code-line coverage as `audit:allow`.
    pub fn order_justified(&self, line: u32) -> bool {
        self.orders.iter().any(|o| {
            !o.reason.is_empty() && (o.line == line || line == o.line + 1 || line == o.line + 2)
        })
    }
}

/// An annotation on its own line covers the next code line; comments
/// stacked between annotation and code are rare enough that a fixed
/// +1/+2 window keeps the semantics predictable.
fn covers_next_line(a: &Allow, line: u32) -> bool {
    line == a.line + 1 || line == a.line + 2
}

/// Scans one comment token for `audit:allow(rule) reason`,
/// `CLAIM(id, id…)`, and `race:order(why)` markers. A multi-line block
/// comment can contribute several of each; line numbers are adjusted per
/// comment line.
fn scan_comment(
    t: &Token,
    allows: &mut Vec<Allow>,
    claims: &mut Vec<ClaimTag>,
    orders: &mut Vec<OrderNote>,
) {
    for (off, line_text) in t.text.lines().enumerate() {
        let line = t.line + off as u32;
        if let Some(pos) = line_text.find("race:order(") {
            let rest = &line_text[pos + "race:order(".len()..];
            // The reason may itself contain parentheses — take up to the
            // balancing close (or end of line for an unclosed note).
            let mut depth = 1i32;
            let mut end = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            orders.push(OrderNote {
                line,
                reason: rest[..end].trim().to_string(),
            });
        }
        if let Some(pos) = line_text.find("audit:allow(") {
            let rest = &line_text[pos + "audit:allow(".len()..];
            if let Some(close) = rest.find(')') {
                let rule = rest[..close].trim().to_string();
                let reason = rest[close + 1..]
                    .trim()
                    .trim_start_matches([':', '-', '—'])
                    .trim()
                    .to_string();
                allows.push(Allow { rule, line, reason });
            }
        }
        let mut search = line_text;
        while let Some(pos) = search.find("CLAIM(") {
            let rest = &search[pos + "CLAIM(".len()..];
            let Some(close) = rest.find(')') else { break };
            for id in rest[..close].split(',') {
                let id = id.trim();
                if !id.is_empty() {
                    claims.push(ClaimTag {
                        id: id.to_string(),
                        line,
                    });
                }
            }
            search = &rest[close + 1..];
        }
    }
}

/// Marks lines covered by test items. Token-level heuristic: whenever an
/// attribute `#[…]` mentions the identifier `test` (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`), the next item's braced body
/// — from its opening `{` through the matching `}` — is a test region.
fn mark_test_regions(tokens: &[Token], line_count: usize) -> Vec<bool> {
    let mut marked = vec![false; line_count];
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut i = 0usize;
    while i < code.len() {
        let (_, t) = code[i];
        if t.is_punct('#') && i + 1 < code.len() && code[i + 1].1.is_punct('[') {
            // scan the attribute's bracket group for ident `test`
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < code.len() {
                let tok = code[j].1;
                if tok.is_punct('[') {
                    depth += 1;
                } else if tok.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tok.is_ident("test") {
                    is_test_attr = true;
                }
                j += 1;
            }
            if is_test_attr {
                // find the item's opening brace (skipping nested
                // attributes), then mark through the matching close.
                let mut k = j + 1;
                let mut brace = 0i32;
                let mut start_line = None;
                while k < code.len() {
                    let tok = code[k].1;
                    if tok.is_punct('{') {
                        brace += 1;
                        if start_line.is_none() {
                            start_line = Some(tok.line);
                        }
                    } else if tok.is_punct('}') {
                        brace -= 1;
                        if brace == 0 && start_line.is_some() {
                            break;
                        }
                    } else if tok.is_punct(';') && start_line.is_none() {
                        break; // braceless item (e.g. `#[cfg(test)] use …;`)
                    }
                    k += 1;
                }
                if let Some(start) = start_line {
                    let end = code.get(k).map(|(_, t)| t.line).unwrap_or(start);
                    // include the attribute's own line(s)
                    let attr_line = t.line;
                    for line in attr_line..=end {
                        if let Some(slot) = marked.get_mut((line as usize).saturating_sub(1)) {
                            *slot = true;
                        }
                    }
                    i = k + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    marked
}

/// Recursively collects `.rs` files under `root`, skipping `excluded`
/// path prefixes (relative, `/`-separated) and hidden/`target`
/// directories. Paths come back sorted for deterministic reports.
pub fn collect_rs_files(root: &Path, roots: &[String], excluded: &[String]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for r in roots {
        let dir = root.join(r);
        if dir.is_file() {
            out.push(dir);
        } else {
            walk(root, &dir, excluded, &mut out);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn walk(root: &Path, dir: &Path, excluded: &[String], out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = rel_str(root, &path);
        if excluded.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, excluded, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root` as a `/`-separated string.
pub fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "pub fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { y.unwrap(); }\n\
                   }\n\
                   pub fn after() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(5));
        assert!(f.in_test(6));
        assert!(!f.in_test(7));
    }

    #[test]
    fn allow_and_claim_annotations_are_parsed() {
        let src = "// audit:allow(panic-freedom) index bounded by construction\n\
                   let x = v[0];\n\
                   // CLAIM(L2.1, C2.1): bound window\n\
                   // audit:allow(obs-coverage)\n\
                   fn f() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.allowed("panic-freedom", 2));
        assert!(!f.allowed("obs-coverage", 5), "reasonless allow is inert");
        assert_eq!(f.claims.len(), 2);
        assert_eq!(f.claims[0].id, "L2.1");
        assert_eq!(f.claims[1].id, "C2.1");
        assert_eq!(f.claims[1].line, 3);
    }

    #[test]
    fn race_order_notes_parse_with_nested_parens() {
        let src = "// race:order(counter is a statistic (read after join))\n\
                   c.fetch_add(1, Ordering::Relaxed);\n\
                   fn g() {}\n\
                   fn h() {}\n\
                   x.load(Ordering::Relaxed); // race:order()\n\
                   /// race:order(doc comments do not carry annotations)\n\
                   fn f() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.orders.len(), 2);
        assert_eq!(f.orders[0].line, 1);
        assert_eq!(
            f.orders[0].reason,
            "counter is a statistic (read after join)"
        );
        assert!(f.order_justified(2), "note covers the next code line");
        assert!(f.orders[1].reason.is_empty(), "reasonless note is recorded");
        assert!(!f.order_justified(5), "reasonless note justifies nothing");
    }
}
