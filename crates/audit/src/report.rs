//! Findings and their rendering.

use crate::config::Level;
use std::fmt;

/// One rule finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired (e.g. `panic-freedom`).
    pub rule: String,
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line (1 for whole-file findings).
    pub line: u32,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Violation {
    /// Builds a finding.
    pub fn new(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Violation {
        Violation {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings for deterministic output: by file, line, rule.
pub fn sort(violations: &mut [(Level, Violation)]) {
    violations.sort_by(|a, b| {
        (a.1.file.as_str(), a.1.line, a.1.rule.as_str()).cmp(&(
            b.1.file.as_str(),
            b.1.line,
            b.1.rule.as_str(),
        ))
    });
}
