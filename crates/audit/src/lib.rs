#![forbid(unsafe_code)]
//! `jp-audit` — workspace-native static analysis for the
//! join-predicates repo.
//!
//! The repo's value is that its solvers provably track the paper's
//! claims; this crate is the machinery that keeps code and correctness
//! argument connected as the codebase refactors. It is a zero-dependency
//! token-level analyzer (own lexer, no `syn` — the workspace builds
//! fully offline) enforcing nine repo invariants as lints:
//!
//! | rule | invariant |
//! |---|---|
//! | `panic-freedom` | solver modules contain no reachable panic site |
//! | `obs-coverage` | every public solver entrypoint opens a `jp-obs` span |
//! | `claim-traceability` | `CLAIM(..)` tags are real and headline claims are tested |
//! | `unsafe-freedom` | no `unsafe`, compiler-backed by `#![forbid(unsafe_code)]` |
//! | `doc-drift` | CLI flags and README tables agree, both directions |
//! | `atomic-ordering` | non-`SeqCst` orderings carry `// race:order(<why>)` notes |
//! | `lock-order` | the global lock-acquisition graph is acyclic |
//! | `guard-across-call` | no lock guard live across solver/sink calls |
//! | `spawn-containment` | every spawn sits inside `thread::scope` |
//!
//! The last four form the `jp-race` family (see [`rules::race`]): a
//! shared-state model of every atomic operation, lock site, spawn
//! boundary, and channel endpoint, extracted from the token stream and
//! checked as a whole. Rules are configured in `audit.toml` (per-rule
//! `deny`/`warn`/`allow`), with inline escape hatches of the form
//! `// audit:allow(<rule>) <reason>` — a reasonless annotation is itself
//! a finding (`allow-annotation`). Run as:
//!
//! ```text
//! cargo run -p jp-audit -- check     # lint + regenerate figures/claims_matrix.md
//! cargo run -p jp-audit -- matrix    # print the claims matrix
//! cargo run -p jp-audit -- race      # shared-state model + figures/lock_order.dot
//! cargo run -p jp-audit -- rules     # list rules and configured levels
//! ```

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use config::{Config, Level};
pub use engine::{run, Outcome, RaceSummary};
pub use report::Violation;
