//! `audit.toml` — per-rule configuration.
//!
//! A deliberately small TOML subset (sections, string / bool /
//! string-array values, `#` comments) parsed by hand: the analyzer is
//! zero-dependency, and this is all the configuration surface it needs.
//!
//! ```toml
//! [panic-freedom]
//! level = "deny"
//! paths = ["crates/core/src/exact.rs", "crates/core/src/approx/"]
//! ```
//!
//! Every rule accepts `level = "deny" | "warn" | "allow"`: `deny` fails
//! the run, `warn` prints but passes, `allow` disables the rule.

use std::collections::BTreeMap;
use std::fmt;

/// How a rule's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Findings fail the run (exit 1).
    #[default]
    Deny,
    /// Findings are printed but do not fail the run.
    Warn,
    /// The rule does not run.
    Allow,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Deny => "deny",
            Level::Warn => "warn",
            Level::Allow => "allow",
        })
    }
}

/// A configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `key = "text"`
    Str(String),
    /// `key = true` / `key = false`
    Bool(bool),
    /// `key = ["a", "b"]` (may span lines)
    List(Vec<String>),
}

/// One `[section]` of the file.
#[derive(Debug, Clone, Default)]
pub struct Section {
    entries: BTreeMap<String, Value>,
}

impl Section {
    /// String value of `key`, if present and a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.entries.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// List value of `key`; empty slice if absent.
    pub fn list(&self, key: &str) -> &[String] {
        match self.entries.get(key) {
            Some(Value::List(v)) => v,
            _ => &[],
        }
    }

    /// The rule level; defaults to `deny` when unset or malformed.
    pub fn level(&self) -> Level {
        match self.str("level") {
            Some("warn") => Level::Warn,
            Some("allow") => Level::Allow,
            _ => Level::Deny,
        }
    }
}

/// Parsed `audit.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    sections: BTreeMap<String, Section>,
}

/// A malformed `audit.toml` line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The section for `rule`, or an empty default (level `deny`, no
    /// overrides) when the file does not mention it.
    pub fn rule(&self, rule: &str) -> Section {
        self.sections.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the TOML subset. Unknown syntax is an error: a config
    /// typo silently disabling a lint would defeat the gate.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut sections: BTreeMap<String, Section> = BTreeMap::new();
        let mut current = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current = name.trim().to_string();
                sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: idx + 1,
                    message: format!("expected `key = value` or `[section]`, got {line:?}"),
                });
            };
            let key = key.trim().to_string();
            let mut rest = rest.trim().to_string();
            // A list may span lines until its closing bracket.
            if rest.starts_with('[') {
                while !balanced_list(&rest) {
                    match lines.next() {
                        Some((_, extra)) => {
                            rest.push(' ');
                            rest.push_str(extra.trim());
                        }
                        None => {
                            return Err(ConfigError {
                                line: idx + 1,
                                message: "unterminated list".to_string(),
                            })
                        }
                    }
                }
            }
            let value = parse_value(&rest).ok_or_else(|| ConfigError {
                line: idx + 1,
                message: format!("unsupported value {rest:?}"),
            })?;
            sections
                .entry(current.clone())
                .or_default()
                .entries
                .insert(key, value);
        }
        Ok(Config { sections })
    }
}

/// Whether a list literal has its closing `]` outside any string.
fn balanced_list(s: &str) -> bool {
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_value(s: &str) -> Option<Value> {
    let s = strip_trailing_comment(s);
    if s == "true" {
        return Some(Value::Bool(true));
    }
    if s == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(q) = s.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Some(Value::Str(q.to_string()));
    }
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for part in split_list(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let q = part.strip_prefix('"')?.strip_suffix('"')?;
        items.push(q.to_string());
    }
    Some(Value::List(items))
}

/// Drops a `# comment` that follows the value, respecting strings.
fn strip_trailing_comment(s: &str) -> &str {
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return s[..i].trim_end(),
            _ => {}
        }
    }
    s.trim_end()
}

/// Splits a list body on commas outside strings.
fn split_list(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_lists() {
        let c = Config::parse(
            r#"
# top comment
[panic-freedom]
level = "warn"   # trailing comment
paths = ["a.rs",
         "b/"]

[doc-drift]
readme = "README.md"
enabled = true
"#,
        )
        .unwrap();
        let pf = c.rule("panic-freedom");
        assert_eq!(pf.level(), Level::Warn);
        assert_eq!(pf.list("paths"), ["a.rs".to_string(), "b/".to_string()]);
        assert_eq!(c.rule("doc-drift").str("readme"), Some("README.md"));
        assert_eq!(c.rule("absent").level(), Level::Deny);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("not a kv line").is_err());
        assert!(Config::parse("k = [\"unterminated\"").is_err());
        assert!(Config::parse("k = 42").is_err(), "ints unsupported");
    }
}
