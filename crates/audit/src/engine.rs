//! The audit engine: walk, lex, run rules, apply annotations, report.

use crate::config::{Config, Level};
use crate::report::{self, Violation};
use crate::rules::{self, claims, doc_drift, obs_coverage, panic_freedom, race, unsafe_freedom};
use crate::source::{collect_rs_files, rel_str, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The jp-race shared-state model, kept on the [`Outcome`] so the
/// `race` subcommand can print it and `check` can write the DOT.
#[derive(Debug)]
pub struct RaceSummary {
    /// Per-file models for every file in any race rule's scope.
    pub models: Vec<(String, race::FileModel)>,
    /// Rendered lock-order graph, present when `lock-order` is
    /// enforced over a non-empty path scope.
    pub dot: Option<String>,
}

/// Result of one audit run.
#[derive(Debug)]
pub struct Outcome {
    /// Findings that survived annotation filtering, with their levels.
    pub violations: Vec<(Level, Violation)>,
    /// The rendered claims matrix (present unless the rule is `allow`ed).
    pub matrix: Option<String>,
    /// The shared-state model (present when any race rule is enforced).
    pub race: Option<RaceSummary>,
}

impl Outcome {
    /// Whether any `deny`-level finding remains.
    pub fn failed(&self) -> bool {
        self.violations.iter().any(|(l, _)| *l == Level::Deny)
    }
}

/// Runs every configured rule over the workspace at `root`.
pub fn run(root: &Path, config: &Config) -> std::io::Result<Outcome> {
    let audit = config.rule("audit");
    let source_roots = if audit.list("source_roots").is_empty() {
        vec!["src".to_string(), "crates".to_string()]
    } else {
        audit.list("source_roots").to_vec()
    };
    let excluded = audit.list("exclude").to_vec();
    let mut files = Vec::new();
    for path in collect_rs_files(root, &source_roots, &excluded) {
        let text = std::fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel_str(root, &path), &text));
    }

    let mut raw: Vec<Violation> = Vec::new();
    let mut matrix = None;

    // panic-freedom over its configured module scope
    let pf = config.rule(panic_freedom::NAME);
    if pf.level() != Level::Allow {
        for f in files
            .iter()
            .filter(|f| panic_freedom::in_scope(&f.rel_path, pf.list("paths")))
        {
            panic_freedom::check(f, &mut raw);
        }
    }

    // obs-coverage + component cross-check
    let oc = config.rule(obs_coverage::NAME);
    if oc.level() != Level::Allow {
        let mut seen = BTreeSet::new();
        for f in files
            .iter()
            .filter(|f| panic_freedom::in_scope(&f.rel_path, oc.list("paths")))
        {
            obs_coverage::check(f, &mut seen, &mut raw);
        }
        obs_coverage::check_components(oc.list("components"), &seen, "audit.toml", &mut raw);
    }

    // claim-traceability + matrix
    let ct = config.rule(claims::NAME);
    if ct.level() != Level::Allow {
        let mut paper_texts = Vec::new();
        for doc in ct.list("paper_docs") {
            let text = std::fs::read_to_string(root.join(doc))?;
            paper_texts.push((doc.clone(), text));
        }
        let idx = claims::build_index(&paper_texts, &files);
        claims::check(&idx, ct.list("headline"), "audit.toml", &mut raw);
        matrix = Some(claims::matrix(&idx, ct.list("headline")));
    }

    // unsafe-freedom everywhere + compiler-backed crate roots
    let uf = config.rule(unsafe_freedom::NAME);
    if uf.level() != Level::Allow {
        for f in &files {
            unsafe_freedom::check(f, &mut raw);
        }
        unsafe_freedom::check_crate_roots(uf.list("crate_roots"), &files, &mut raw);
    }

    // doc-drift between the flag-parsing sources and the README,
    // both directions: undocumented flags and stale README rows
    let dd = config.rule(doc_drift::NAME);
    if dd.level() != Level::Allow {
        let srcs = if dd.list("srcs").is_empty() {
            vec![dd.str("cli_src").unwrap_or("crates/cli/src/").to_string()]
        } else {
            dd.list("srcs").to_vec()
        };
        let mut flags = BTreeMap::new();
        for f in files
            .iter()
            .filter(|f| panic_freedom::in_scope(&f.rel_path, &srcs))
        {
            doc_drift::collect_flags(f, &mut flags);
        }
        let readme_path = dd.str("readme").unwrap_or("README.md");
        let readme = std::fs::read_to_string(root.join(readme_path))?;
        doc_drift::check(&flags, &readme, &mut raw);
        doc_drift::check_readme_rows(&flags, &readme, readme_path, &mut raw);
    }

    // jp-race: build the shared-state model once over the union of the
    // four rules' scopes, then drive each rule over its own scope.
    let ao = config.rule(race::ATOMIC_ORDERING);
    let lo = config.rule(race::LOCK_ORDER);
    let gc = config.rule(race::GUARD_ACROSS_CALL);
    let sc = config.rule(race::SPAWN_CONTAINMENT);
    let race_rules = [&ao, &lo, &gc, &sc];
    let mut race_summary = None;
    if race_rules.iter().any(|r| r.level() != Level::Allow) {
        let forbidden: Vec<String> = if gc.list("calls").is_empty() {
            race::DEFAULT_FORBIDDEN_CALLS
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            gc.list("calls").to_vec()
        };
        let mut models: Vec<(usize, race::FileModel)> = Vec::new();
        for (idx, f) in files.iter().enumerate() {
            let wanted = race_rules
                .iter()
                .any(|r| r.level() != Level::Allow && race::in_scope(&f.rel_path, r.list("paths")));
            if wanted {
                models.push((idx, race::extract(f, &forbidden)));
            }
        }
        if ao.level() != Level::Allow {
            for (idx, m) in &models {
                let f = &files[*idx];
                if race::in_scope(&f.rel_path, ao.list("paths")) {
                    race::check_atomic_ordering(f, m, &mut raw);
                }
            }
        }
        let mut dot = None;
        if lo.level() != Level::Allow {
            let graph = race::lock_graph(
                models
                    .iter()
                    .filter(|(idx, _)| race::in_scope(&files[*idx].rel_path, lo.list("paths")))
                    .map(|(idx, m)| (files[*idx].rel_path.as_str(), m)),
            );
            race::check_lock_order(&graph, &mut raw);
            if !lo.list("paths").is_empty() {
                dot = Some(race::lock_order_dot(&graph));
            }
        }
        if gc.level() != Level::Allow {
            for (idx, m) in &models {
                let f = &files[*idx];
                if race::in_scope(&f.rel_path, gc.list("paths")) {
                    race::check_guard_across_call(f, m, &mut raw);
                }
            }
        }
        if sc.level() != Level::Allow {
            for (idx, m) in &models {
                let f = &files[*idx];
                if race::in_scope(&f.rel_path, sc.list("paths")) {
                    race::check_spawn_containment(f, m, &mut raw);
                }
            }
        }
        race_summary = Some(RaceSummary {
            models: models
                .into_iter()
                .map(|(idx, m)| (files[idx].rel_path.clone(), m))
                .collect(),
            dot,
        });
    }

    // allow-annotation hygiene: every escape hatch names a real rule and
    // states a reason — the annotations themselves are auditable.
    let aa = config.rule(rules::ALLOW_ANNOTATION);
    if aa.level() != Level::Allow {
        for f in &files {
            for a in &f.allows {
                if !rules::ALL.contains(&a.rule.as_str()) {
                    raw.push(Violation::new(
                        rules::ALLOW_ANNOTATION,
                        &f.rel_path,
                        a.line,
                        format!("audit:allow names unknown rule \"{}\"", a.rule),
                    ));
                } else if a.reason.is_empty() {
                    raw.push(Violation::new(
                        rules::ALLOW_ANNOTATION,
                        &f.rel_path,
                        a.line,
                        format!(
                            "audit:allow({}) has no reason — escape hatches must say why",
                            a.rule
                        ),
                    ));
                }
            }
        }
    }

    // apply annotations, attach levels, sort
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut violations: Vec<(Level, Violation)> = raw
        .into_iter()
        .filter(|v| {
            // allow-annotation findings cannot be allow-annotated away
            v.rule == rules::ALLOW_ANNOTATION
                || !by_path
                    .get(v.file.as_str())
                    .is_some_and(|f| f.allowed(&v.rule, v.line))
        })
        .map(|v| (config.rule(&v.rule).level(), v))
        .collect();
    report::sort(&mut violations);
    Ok(Outcome {
        violations,
        matrix,
        race: race_summary,
    })
}
