//! The audit engine: walk, lex, run rules, apply annotations, report.

use crate::config::{Config, Level};
use crate::report::{self, Violation};
use crate::rules::{self, claims, doc_drift, obs_coverage, panic_freedom, unsafe_freedom};
use crate::source::{collect_rs_files, rel_str, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Result of one audit run.
#[derive(Debug)]
pub struct Outcome {
    /// Findings that survived annotation filtering, with their levels.
    pub violations: Vec<(Level, Violation)>,
    /// The rendered claims matrix (present unless the rule is `allow`ed).
    pub matrix: Option<String>,
}

impl Outcome {
    /// Whether any `deny`-level finding remains.
    pub fn failed(&self) -> bool {
        self.violations.iter().any(|(l, _)| *l == Level::Deny)
    }
}

/// Runs every configured rule over the workspace at `root`.
pub fn run(root: &Path, config: &Config) -> std::io::Result<Outcome> {
    let audit = config.rule("audit");
    let source_roots = if audit.list("source_roots").is_empty() {
        vec!["src".to_string(), "crates".to_string()]
    } else {
        audit.list("source_roots").to_vec()
    };
    let excluded = audit.list("exclude").to_vec();
    let mut files = Vec::new();
    for path in collect_rs_files(root, &source_roots, &excluded) {
        let text = std::fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel_str(root, &path), &text));
    }

    let mut raw: Vec<Violation> = Vec::new();
    let mut matrix = None;

    // panic-freedom over its configured module scope
    let pf = config.rule(panic_freedom::NAME);
    if pf.level() != Level::Allow {
        for f in files
            .iter()
            .filter(|f| panic_freedom::in_scope(&f.rel_path, pf.list("paths")))
        {
            panic_freedom::check(f, &mut raw);
        }
    }

    // obs-coverage + component cross-check
    let oc = config.rule(obs_coverage::NAME);
    if oc.level() != Level::Allow {
        let mut seen = BTreeSet::new();
        for f in files
            .iter()
            .filter(|f| panic_freedom::in_scope(&f.rel_path, oc.list("paths")))
        {
            obs_coverage::check(f, &mut seen, &mut raw);
        }
        obs_coverage::check_components(oc.list("components"), &seen, "audit.toml", &mut raw);
    }

    // claim-traceability + matrix
    let ct = config.rule(claims::NAME);
    if ct.level() != Level::Allow {
        let mut paper_texts = Vec::new();
        for doc in ct.list("paper_docs") {
            let text = std::fs::read_to_string(root.join(doc))?;
            paper_texts.push((doc.clone(), text));
        }
        let idx = claims::build_index(&paper_texts, &files);
        claims::check(&idx, ct.list("headline"), "audit.toml", &mut raw);
        matrix = Some(claims::matrix(&idx, ct.list("headline")));
    }

    // unsafe-freedom everywhere + compiler-backed crate roots
    let uf = config.rule(unsafe_freedom::NAME);
    if uf.level() != Level::Allow {
        for f in &files {
            unsafe_freedom::check(f, &mut raw);
        }
        unsafe_freedom::check_crate_roots(uf.list("crate_roots"), &files, &mut raw);
    }

    // doc-drift between the CLI crate and the README
    let dd = config.rule(doc_drift::NAME);
    if dd.level() != Level::Allow {
        let cli_prefix = dd.str("cli_src").unwrap_or("crates/cli/src/").to_string();
        let mut flags = BTreeMap::new();
        for f in files
            .iter()
            .filter(|f| f.rel_path.starts_with(cli_prefix.as_str()))
        {
            doc_drift::collect_flags(f, &mut flags);
        }
        let readme_path = dd.str("readme").unwrap_or("README.md");
        let readme = std::fs::read_to_string(root.join(readme_path))?;
        doc_drift::check(&flags, &readme, &mut raw);
    }

    // allow-annotation hygiene: every escape hatch names a real rule and
    // states a reason — the annotations themselves are auditable.
    let aa = config.rule(rules::ALLOW_ANNOTATION);
    if aa.level() != Level::Allow {
        for f in &files {
            for a in &f.allows {
                if !rules::ALL.contains(&a.rule.as_str()) {
                    raw.push(Violation::new(
                        rules::ALLOW_ANNOTATION,
                        &f.rel_path,
                        a.line,
                        format!("audit:allow names unknown rule \"{}\"", a.rule),
                    ));
                } else if a.reason.is_empty() {
                    raw.push(Violation::new(
                        rules::ALLOW_ANNOTATION,
                        &f.rel_path,
                        a.line,
                        format!(
                            "audit:allow({}) has no reason — escape hatches must say why",
                            a.rule
                        ),
                    ));
                }
            }
        }
    }

    // apply annotations, attach levels, sort
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut violations: Vec<(Level, Violation)> = raw
        .into_iter()
        .filter(|v| {
            // allow-annotation findings cannot be allow-annotated away
            v.rule == rules::ALLOW_ANNOTATION
                || !by_path
                    .get(v.file.as_str())
                    .is_some_and(|f| f.allowed(&v.rule, v.line))
        })
        .map(|v| (config.rule(&v.rule).level(), v))
        .collect();
    report::sort(&mut violations);
    Ok(Outcome { violations, matrix })
}
