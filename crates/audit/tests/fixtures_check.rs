//! End-to-end checks of the analyzer against the seeded fixture trees
//! under `tests/fixtures/`: exact findings via the library engine, exit
//! codes via the real binary. The fixture sources never compile — the
//! analyzer works at the token level, so the trees only need to *lex*.

use jp_audit::{config::Config, engine, Level};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_engine(name: &str, config_text: &str) -> engine::Outcome {
    let config = Config::parse(config_text).unwrap();
    engine::run(&fixture(name), &config).unwrap()
}

fn fixture_config(name: &str) -> String {
    std::fs::read_to_string(fixture(name).join("audit.toml")).unwrap()
}

#[test]
fn violations_fixture_reports_exact_findings() {
    let outcome = run_engine("violations", &fixture_config("violations"));
    assert!(outcome.failed());
    let got: Vec<(String, u32, String)> = outcome
        .violations
        .iter()
        .map(|(level, v)| {
            assert_eq!(*level, Level::Deny, "{v}");
            (v.file.clone(), v.line, v.rule.clone())
        })
        .collect();
    let want: Vec<(String, u32, String)> = [
        // the README table's `--retired` row names a flag nothing parses
        ("README.md", 11, "doc-drift"),
        // headline T1.1 is cited by no test
        ("audit.toml", 1, "claim-traceability"),
        // "ghost.component" is configured but never emitted
        ("audit.toml", 1, "obs-coverage"),
        // --budget is parsed but absent from the README
        ("src/cli/run.rs", 5, "doc-drift"),
        // crate root lacks #![forbid(unsafe_code)]
        ("src/lib.rs", 1, "unsafe-freedom"),
        // configured crate root that does not exist
        ("src/missing.rs", 1, "unsafe-freedom"),
        // pub fn `solve` opens no span
        ("src/solver/exact.rs", 4, "obs-coverage"),
        // the seeded .unwrap()
        ("src/solver/exact.rs", 5, "panic-freedom"),
        // v[1]
        ("src/solver/exact.rs", 6, "panic-freedom"),
        // audit:allow with no reason
        ("src/solver/exact.rs", 9, "allow-annotation"),
        // pub fn `annotated_without_reason` opens no span
        ("src/solver/exact.rs", 10, "obs-coverage"),
        // v[0] — the reason-less annotation does not suppress it
        ("src/solver/exact.rs", 11, "panic-freedom"),
        // audit:allow naming an unknown rule
        ("src/solver/exact.rs", 14, "allow-annotation"),
        // the unsafe block
        ("src/solver/exact.rs", 16, "unsafe-freedom"),
        // CLAIM(T9.9) cites an ID the paper does not contain
        ("src/solver/exact.rs", 19, "claim-traceability"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r.to_string()))
    .collect();
    assert_eq!(got, want);
}

#[test]
fn clean_fixture_has_no_findings_and_a_cited_matrix() {
    let outcome = run_engine("clean", &fixture_config("clean"));
    assert!(!outcome.failed());
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    let matrix = outcome.matrix.expect("matrix must render");
    assert!(matrix.contains("| T1.1 | the fixture solver terminates | 1 |"));
    assert!(matrix.contains("✓"));
}

#[test]
fn warn_level_findings_do_not_fail_the_run() {
    let warned = fixture_config("violations").replace("\"deny\"", "\"warn\"");
    let outcome = run_engine("violations", &warned);
    assert!(!outcome.failed(), "warn findings must not gate");
    assert!(!outcome.violations.is_empty());
    assert!(outcome
        .violations
        .iter()
        .all(|(level, _)| *level == Level::Warn));
}

#[test]
fn allow_level_disables_a_rule_entirely() {
    let silenced = fixture_config("violations").replace(
        "[panic-freedom]\nlevel = \"deny\"",
        "[panic-freedom]\nlevel = \"allow\"",
    );
    let outcome = run_engine("violations", &silenced);
    assert!(outcome
        .violations
        .iter()
        .all(|(_, v)| v.rule != "panic-freedom"));
}

#[test]
fn binary_fails_on_the_seeded_unwrap_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_jp-audit"))
        .args(["check", "--root"])
        .arg(fixture("violations"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "must exit non-zero:\n{stdout}");
    assert!(
        stdout.contains("src/solver/exact.rs:5: [panic-freedom] call to `.unwrap()`"),
        "{stdout}"
    );
    assert!(stdout.contains("15 denied, 0 warned"), "{stdout}");
}

#[test]
fn binary_passes_on_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_jp-audit"))
        .args(["check", "--root"])
        .arg(fixture("clean"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "must exit zero:\n{stdout}");
    assert!(stdout.contains("0 denied, 0 warned"), "{stdout}");
}

#[test]
fn race_violations_fixture_reports_exact_findings() {
    let outcome = run_engine("race_violations", &fixture_config("race_violations"));
    assert!(outcome.failed());
    let got: Vec<(String, u32, String)> = outcome
        .violations
        .iter()
        .map(|(level, v)| {
            assert_eq!(*level, Level::Deny, "{v}");
            (v.file.clone(), v.line, v.rule.clone())
        })
        .collect();
    let want: Vec<(String, u32, String)> = [
        // ALPHA -> BETA, half of the seeded cycle
        ("src/conc/locks.rs", 6, "lock-order"),
        // BETA -> ALPHA, the other half
        ("src/conc/locks.rs", 12, "lock-order"),
        // flush_sink() while guard `inner` is live
        ("src/conc/locks.rs", 18, "guard-across-call"),
        // detached thread::spawn
        ("src/conc/spawn.rs", 4, "spawn-containment"),
        // fetch_add(Relaxed) with no race:order note
        ("src/conc/state.rs", 5, "atomic-ordering"),
        // race:order() with no reason
        ("src/conc/state.rs", 9, "atomic-ordering"),
        // load(Acquire) — the reason-less note does not justify it
        ("src/conc/state.rs", 10, "atomic-ordering"),
        // a note covering no relaxed op (stale)
        ("src/conc/state.rs", 14, "atomic-ordering"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r.to_string()))
    .collect();
    assert_eq!(got, want);
    let race = outcome.race.expect("race summary present");
    let dot = race.dot.expect("lock-order scope is non-empty");
    assert!(dot.contains("color=red"), "cycle must render red:\n{dot}");
}

#[test]
fn race_clean_fixture_is_quiet_with_an_acyclic_graph() {
    let outcome = run_engine("race_clean", &fixture_config("race_clean"));
    assert!(!outcome.failed());
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    let race = outcome.race.expect("race summary present");
    let dot = race.dot.expect("lock-order scope is non-empty");
    assert!(dot.contains("\"ALPHA\" -> \"BETA\""), "{dot}");
    assert!(!dot.contains("color=red"), "{dot}");
    // the annotated detached spawn stays in the model even though the
    // audit:allow suppresses its finding
    let spawns: usize = race.models.iter().map(|(_, m)| m.spawns.len()).sum();
    assert_eq!(spawns, 2);
}

#[test]
fn race_rules_at_warn_level_do_not_gate() {
    let warned = fixture_config("race_violations").replace("\"deny\"", "\"warn\"");
    let outcome = run_engine("race_violations", &warned);
    assert!(!outcome.failed(), "warn findings must not gate");
    assert_eq!(outcome.violations.len(), 8);
}

#[test]
fn binary_race_fails_on_the_seeded_violations_and_writes_the_dot() {
    let dot_path = std::env::temp_dir().join(format!(
        "jp_audit_race_violations_{}.dot",
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_jp-audit"))
        .args(["race", "--root"])
        .arg(fixture("race_violations"))
        .arg("--dot")
        .arg(&dot_path)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let dot = std::fs::read_to_string(&dot_path).expect("DOT must be written");
    let _ = std::fs::remove_file(&dot_path);
    assert_eq!(out.status.code(), Some(1), "deny findings:\n{stdout}");
    assert!(
        stdout.contains("shared-state model (3 files in scope):"),
        "{stdout}"
    );
    assert!(stdout.contains("closes a lock-order cycle"), "{stdout}");
    assert!(
        stdout.contains("src/conc/spawn.rs:4: [spawn-containment]"),
        "{stdout}"
    );
    assert!(dot.contains("color=red"), "{dot}");
}

#[test]
fn binary_race_passes_on_the_clean_tree() {
    let dot_path =
        std::env::temp_dir().join(format!("jp_audit_race_clean_{}.dot", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_jp-audit"))
        .args(["race", "--root"])
        .arg(fixture("race_clean"))
        .arg("--dot")
        .arg(&dot_path)
        .args(["--model"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let dot = std::fs::read_to_string(&dot_path).expect("DOT must be written");
    let _ = std::fs::remove_file(&dot_path);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must pass:\n{stdout}"
    );
    assert!(
        stdout.contains("[justified]"),
        "--model marks the note:\n{stdout}"
    );
    assert!(stdout.contains("ALPHA -> BETA"), "{stdout}");
    assert!(!dot.contains("color=red"), "{dot}");
}
