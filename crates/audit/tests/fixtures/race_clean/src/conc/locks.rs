//! Both functions acquire ALPHA before BETA — acyclic by construction —
//! and the sink call runs only after both guards are dropped.

pub fn forward() {
    let a = lock(&ALPHA);
    let b = lock(&BETA);
    drop(b);
    drop(a);
}

pub fn also_forward() {
    let a = lock(&ALPHA);
    let b = lock(&BETA);
    drop(b);
    drop(a);
    flush_sink();
}
