//! Clean atomics: the one relaxed op carries a justification.

pub fn counted(c: &AtomicU64) {
    // race:order(statistic only, read after the join)
    c.fetch_add(1, Ordering::Relaxed);
    c.store(0, Ordering::SeqCst);
}
