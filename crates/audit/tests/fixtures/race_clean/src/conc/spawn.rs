//! A scoped spawn, plus a detached one with an explicit lifecycle story.

pub fn scoped(n: usize) {
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| work());
        }
    });
}

pub fn owner() {
    // audit:allow(spawn-containment) the owner keeps the JoinHandle and joins it on stop
    std::thread::spawn(|| work());
}
