//! A fully-conforming solver module: instrumented, panic-free,
//! annotated where exempt, and citing its headline claim from a test.

pub fn solve(v: &[u32]) -> u32 {
    let _s = jp_obs::span("solver", "solve");
    v.iter().copied().sum()
}

// audit:allow(obs-coverage) accessor — no solver work, nothing to trace
pub fn size(v: &[u32]) -> usize {
    v.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn solve_terminates() {
        // CLAIM(T1.1)
        assert_eq!(super::solve(&[1, 2]), 3);
    }
}
