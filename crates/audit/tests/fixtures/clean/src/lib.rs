#![forbid(unsafe_code)]
pub mod cli;
pub mod solver;
