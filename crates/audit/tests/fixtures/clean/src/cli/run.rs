//! Fixture CLI — every parsed flag appears in the fixture README.

pub fn configure(a: &ParsedArgs) -> Option<String> {
    a.opt("seed")
}
