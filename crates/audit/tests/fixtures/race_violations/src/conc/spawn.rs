//! Seeded detached spawn: no `thread::scope` in the enclosing function.

pub fn detached() {
    std::thread::spawn(|| loiter());
}
