//! Seeded atomic-ordering violations: one unjustified relaxed op, one
//! reason-less note, and one stale note.

pub fn unjustified(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn reasonless(c: &AtomicU64) {
    // race:order()
    c.load(Ordering::Acquire);
}

pub fn stale() {
    // race:order(covers no relaxed op at all)
    let x = 1;
    let _ = x;
}
