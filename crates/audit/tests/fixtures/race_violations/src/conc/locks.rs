//! Seeded lock-order cycle (ALPHA <-> BETA) and a forbidden call made
//! while a guard is live.

pub fn forward() {
    let a = lock(&ALPHA);
    let b = lock(&BETA);
    let _ = (&a, &b);
}

pub fn backward() {
    let b = lock(&BETA);
    let a = lock(&ALPHA);
    let _ = (&a, &b);
}

pub fn held_across(s: &State) {
    let g = lock(&s.inner);
    flush_sink();
    drop(g);
}
