pub mod cli;
pub mod solver;
