//! Fixture CLI — parses one documented and one undocumented flag.

pub fn configure(a: &ParsedArgs) -> u32 {
    let _seed = a.opt("seed");
    a.opt_parse("budget", 7)
}
