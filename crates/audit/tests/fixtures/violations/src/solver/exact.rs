//! Seeded violations — fixtures_check.rs asserts these exact
//! rule/file/line findings; keep the line numbers stable.

pub fn solve(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    first + v[1]
}

// audit:allow(panic-freedom)
pub fn annotated_without_reason(v: &[u32]) -> u32 {
    v[0]
}

// audit:allow(no-such-rule) the rule name is wrong
fn helper() -> u32 {
    unsafe { 0 }
}

// CLAIM(T9.9) phantom: not in the fixture paper
fn cite() -> u32 {
    helper()
}
