//! Property tests for the pulse primitives (ISSUE 6 satellite).
//!
//! * Histogram merge is associative and commutative, and the merged
//!   result of per-thread shards — at 1, 2, and 8 threads — is
//!   bucket-identical to a single sequential observer, including the
//!   nearest-rank quantiles jp-trace reports.
//! * Allocation accounting balances to zero after scope exit and never
//!   panics under arbitrarily nested scope guards. This test binary
//!   installs the tracking allocator for real, so the accounting under
//!   test is the production `GlobalAlloc` path, not a simulation.

use std::sync::Mutex;

use jp_pulse::mem::{self, MemScope};
use jp_pulse::PulseHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: jp_pulse::TrackingAlloc = jp_pulse::TrackingAlloc;

/// Values spanning many log2 buckets, with bias toward bucket edges.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    vec(
        (0u8..4, any::<u64>()).prop_map(|(shape, raw)| match shape {
            0 => 0,
            1 => raw % 15 + 1,
            2 => raw % 1024,
            _ => raw,
        }),
        0..200,
    )
}

fn hist_of(values: &[u64]) -> PulseHistogram {
    let h = PulseHistogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

fn same(a: &PulseHistogram, b: &PulseHistogram) -> bool {
    a.bucket_counts() == b.bucket_counts() && a.count() == b.count() && a.sum() == b.sum()
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in arb_values(), ys in arb_values()) {
        let ab = hist_of(&xs);
        ab.merge_from(&hist_of(&ys));
        let ba = hist_of(&ys);
        ba.merge_from(&hist_of(&xs));
        prop_assert!(same(&ab, &ba));
    }

    #[test]
    fn merge_is_associative(
        xs in arb_values(),
        ys in arb_values(),
        zs in arb_values(),
    ) {
        // (x ⊕ y) ⊕ z
        let left = hist_of(&xs);
        left.merge_from(&hist_of(&ys));
        left.merge_from(&hist_of(&zs));
        // x ⊕ (y ⊕ z)
        let yz = hist_of(&ys);
        yz.merge_from(&hist_of(&zs));
        let right = hist_of(&xs);
        right.merge_from(&yz);
        prop_assert!(same(&left, &right));
    }

    #[test]
    fn parallel_merge_agrees_with_sequential_reference(values in arb_values()) {
        let reference = hist_of(&values);
        for threads in [1usize, 2, 8] {
            let shards: Vec<PulseHistogram> =
                (0..threads).map(|_| PulseHistogram::new()).collect();
            std::thread::scope(|s| {
                for (i, shard) in shards.iter().enumerate() {
                    let chunk: Vec<u64> = values
                        .iter()
                        .copied()
                        .skip(i)
                        .step_by(threads)
                        .collect();
                    s.spawn(move || {
                        for v in chunk {
                            shard.observe(v);
                        }
                    });
                }
            });
            let merged = PulseHistogram::new();
            for shard in &shards {
                merged.merge_from(shard);
            }
            prop_assert!(same(&merged, &reference), "threads={threads}");
            for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(
                    merged.quantile_upper_bound(q),
                    reference.quantile_upper_bound(q),
                    "q={} threads={}", q, threads
                );
            }
        }
    }
}

/// Allocator-accounting tests share scopes with nothing else in this
/// binary, but proptest may run cases on several test threads — a lock
/// keeps measured windows disjoint.
static ALLOC_TEST_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_balances_to_zero_after_scope_exit(sizes in vec(1usize..4096, 1..16)) {
        let _serial = ALLOC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = mem::scope_stats(MemScope::Relalg);
        {
            let _scope = mem::mem_scope(MemScope::Relalg);
            for &size in &sizes {
                let buf: Vec<u8> = Vec::with_capacity(size);
                drop(buf);
            }
        }
        let after = mem::scope_stats(MemScope::Relalg);
        prop_assert_eq!(
            after.bytes_current, before.bytes_current,
            "live bytes return to the pre-scope level once everything \
             allocated inside the scope is freed inside it"
        );
        if mem::tracking_active() {
            let total: usize = sizes.iter().sum();
            prop_assert!(after.allocs >= before.allocs + sizes.len() as u64);
            prop_assert!(after.bytes_allocated >= before.bytes_allocated + total as u64);
            prop_assert_eq!(after.bytes_allocated - before.bytes_allocated,
                            after.bytes_freed - before.bytes_freed);
        }
    }

    #[test]
    fn nested_scopes_never_panic_and_restore(path in vec(0u8..5, 0..12)) {
        let _serial = ALLOC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scopes = [
            MemScope::Other,
            MemScope::Solver,
            MemScope::Memo,
            MemScope::Relalg,
            MemScope::Par,
        ];
        let before = mem::scope_stats(MemScope::Solver);
        fn descend(path: &[u8], scopes: &[MemScope; 5]) {
            match path.split_first() {
                None => {}
                Some((&head, rest)) => {
                    let scope = scopes[head as usize % scopes.len()];
                    let _guard = mem::mem_scope(scope);
                    let buf: Vec<u8> = Vec::with_capacity(64 + head as usize);
                    descend(rest, scopes);
                    drop(buf);
                }
            }
        }
        descend(&path, &scopes);
        // After every guard dropped, the stack is fully unwound and a
        // fresh scope attributes exactly as if nesting never happened.
        {
            let _scope = mem::mem_scope(MemScope::Solver);
            let buf: Vec<u8> = Vec::with_capacity(128);
            drop(buf);
        }
        let after = mem::scope_stats(MemScope::Solver);
        prop_assert_eq!(after.bytes_current, before.bytes_current);
        if mem::tracking_active() {
            prop_assert!(after.allocs > before.allocs);
        }
    }
}

#[test]
fn tracking_allocator_is_live_in_this_binary() {
    // Only meaningful with the default feature set; documents that the
    // property tests above exercised the real GlobalAlloc path.
    if cfg!(feature = "alloc-track") {
        let boxed = Box::new([0u8; 256]);
        drop(boxed);
        assert!(mem::tracking_active());
        let totals = mem::totals();
        assert!(totals.allocs > 0);
        assert!(totals.bytes_allocated >= 256);
    }
}
