//! The live metric registry: named atomic counters, gauges, and
//! streaming log₂ histograms, sharded by name hash so concurrent
//! publishers rarely contend on a lock (and never on the update itself —
//! updates are plain atomic ops once the `Arc<Metric>` handle exists).
//!
//! Publication is gated twice: [`enabled`] is one relaxed atomic load
//! (the always-on disabled path), and an active [`PulseScope`] filters
//! by thread membership exactly like [`jp_obs::ScopedSink`] does for the
//! event stream — the installing thread and every [`adopt`]ed worker
//! publish, everything else is dropped as cross-talk.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// Same bucket layout as [`jp_obs::Histogram`]: bucket `i` holds values
/// whose bit length is `i`, i.e. the range `[2^(i-1), 2^i - 1]` (bucket
/// 0 holds exactly the value 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Registry shard count; metric names hash to a shard.
const SHARDS: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SCOPE: Mutex<()> = Mutex::new(());
static MEMBERS: Mutex<Option<BTreeSet<u64>>> = Mutex::new(None);
static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a pulse collection scope is active. One relaxed load — this
/// is the whole cost of every `jp_pulse::…` call in a process that never
/// turns the sampler on.
#[inline(always)]
pub fn enabled() -> bool {
    // race:order(cheap gate probe; membership and registry state are checked under their locks on the publish path)
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the *current thread* may publish: a scope is active and this
/// thread installed it or [`adopt`]ed into it.
fn member() -> bool {
    let members = lock(&MEMBERS);
    match members.as_ref() {
        Some(set) => set.contains(&jp_obs::thread_id()),
        None => false,
    }
}

/// A lock-free streaming histogram over power-of-two buckets, the live
/// counterpart of [`jp_obs::Histogram`]. Merging is per-bucket atomic
/// addition, so partial histograms from many threads combine into the
/// same totals in any order or grouping (see the property tests).
#[derive(Debug)]
pub struct PulseHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for PulseHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PulseHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        PulseHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(b) = self.buckets.get(Self::bucket_index(v)) {
            // race:order(per-bucket atomic addition commutes; totals are exact, cross-field reads may tear harmlessly)
            b.fetch_add(1, Ordering::Relaxed);
        }
        // race:order(same commutative accounting as above)
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // race:order(sampled statistic; exact once publishers stop)
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        // race:order(sampled statistic; exact once publishers stop)
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| {
            self.buckets
                .get(i)
                // race:order(sampled statistic; exact once publishers stop)
                .map(|b| b.load(Ordering::Relaxed))
                .unwrap_or(0)
        })
    }

    /// Adds every observation of `other` into `self`. Bucket-wise
    /// addition commutes and associates, so merging per-thread shards in
    /// any order yields the histogram a single sequential observer would
    /// have built.
    pub fn merge_from(&self, other: &PulseHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.bucket_counts()) {
            if theirs > 0 {
                // race:order(bucket-wise merge commutes and associates — see the histogram property tests)
                mine.fetch_add(theirs, Ordering::Relaxed);
            }
        }
        // race:order(same commutative merge as above)
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// The nearest-rank quantile over the *bucketized* data: every
    /// observation is represented by its bucket's upper bound, and the
    /// rank-`⌈q·n⌉` smallest representative is returned — exactly
    /// [`jp_obs::nearest_rank`] applied to that representative multiset,
    /// which is what jp-trace reports for spans. `0` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.bucket_counts().iter().enumerate() {
            seen = seen.saturating_add(*c);
            if seen >= target.max(1) {
                return ((1u128 << i) - 1) as u64;
            }
        }
        u64::MAX
    }
}

/// One named metric. The histogram (65 atomic buckets) is boxed so
/// counter/gauge entries stay two words behind their `Arc`.
enum Metric {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    Histogram(Box<PulseHistogram>),
}

/// What a metric is, for get-or-insert.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

struct Registry {
    shards: Vec<RwLock<HashMap<String, Arc<Metric>>>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> Option<&RwLock<HashMap<String, Arc<Metric>>>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        self.shards.get((h.finish() % SHARDS as u64) as usize)
    }

    /// Existing metric under `name`, or a fresh one of `kind`. A name
    /// reused with a different kind keeps its original metric (the
    /// mismatched update becomes a no-op) — never a panic.
    fn get_or_insert(&self, name: &str, kind: Kind) -> Option<Arc<Metric>> {
        let shard = self.shard(name)?;
        {
            let map = shard.read().unwrap_or_else(|e| e.into_inner());
            if let Some(m) = map.get(name) {
                return Some(m.clone());
            }
        }
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        let entry = map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(match kind {
                Kind::Counter => Metric::Counter(AtomicU64::new(0)),
                Kind::Gauge => Metric::Gauge(AtomicU64::new(0)),
                Kind::Histogram => Metric::Histogram(Box::default()),
            })
        });
        Some(entry.clone())
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Adds `delta` to the counter `name` (creating it at 0). No-op unless
/// the calling thread is inside the active [`PulseScope`].
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() || !member() {
        return;
    }
    if let Some(m) = registry().get_or_insert(name, Kind::Counter) {
        if let Metric::Counter(c) = &*m {
            // race:order(commutative counter bump; read by the sampler as a statistic)
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Sets the gauge `name` to `value` (creating it). No-op unless the
/// calling thread is inside the active [`PulseScope`].
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() || !member() {
        return;
    }
    if let Some(m) = registry().get_or_insert(name, Kind::Gauge) {
        if let Metric::Gauge(g) = &*m {
            // race:order(last-writer-wins gauge; the sampler reads whichever value is current)
            g.store(value, Ordering::Relaxed);
        }
    }
}

/// Records `value` into the histogram `name` (creating it). No-op unless
/// the calling thread is inside the active [`PulseScope`].
pub fn observe(name: &str, value: u64) {
    if !enabled() || !member() {
        return;
    }
    if let Some(m) = registry().get_or_insert(name, Kind::Histogram) {
        if let Metric::Histogram(h) = &*m {
            h.observe(value);
        }
    }
}

/// A deterministic (sorted) flattening of the whole registry. Counters
/// and gauges appear under their own name; a histogram `h` expands to
/// `h.count`, `h.sum`, and the nearest-rank-over-buckets `h.p50`,
/// `h.p95`, `h.p99` upper bounds.
pub fn snapshot() -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for shard in &registry().shards {
        let map = shard.read().unwrap_or_else(|e| e.into_inner());
        for (name, metric) in map.iter() {
            match &**metric {
                Metric::Counter(c) => {
                    // race:order(sampled snapshot; exact once publishers leave the scope)
                    out.insert(name.clone(), c.load(Ordering::Relaxed));
                }
                Metric::Gauge(g) => {
                    // race:order(sampled snapshot; exact once publishers leave the scope)
                    out.insert(name.clone(), g.load(Ordering::Relaxed));
                }
                Metric::Histogram(h) => {
                    out.insert(format!("{name}.count"), h.count());
                    out.insert(format!("{name}.sum"), h.sum());
                    out.insert(format!("{name}.p50"), h.quantile_upper_bound(0.50));
                    out.insert(format!("{name}.p95"), h.quantile_upper_bound(0.95));
                    out.insert(format!("{name}.p99"), h.quantile_upper_bound(0.99));
                }
            }
        }
    }
    out
}

/// An active pulse collection scope: resets the registry, enables
/// publication, and filters it to the installing thread plus adopted
/// workers. Holders serialize through a global lock — exactly the
/// [`jp_obs::ScopedSink`] discipline — so concurrent tests never blend
/// their metrics.
pub struct PulseScope {
    _scope: MutexGuard<'static, ()>,
}

impl PulseScope {
    /// Installs a fresh scope, blocking until any other scope drops.
    pub fn install() -> PulseScope {
        let scope = lock(&SCOPE);
        registry().reset();
        {
            let mut members = lock(&MEMBERS);
            *members = Some(BTreeSet::from([jp_obs::thread_id()]));
        }
        // race:order(gate flag only — member() re-checks identity under the MEMBERS lock, which carries the ordering)
        ENABLED.store(true, Ordering::Relaxed);
        PulseScope { _scope: scope }
    }
}

impl Drop for PulseScope {
    fn drop(&mut self) {
        // race:order(gate flag only — member() re-checks identity under the MEMBERS lock, which carries the ordering)
        ENABLED.store(false, Ordering::Relaxed);
        let mut members = lock(&MEMBERS);
        *members = None;
    }
}

/// Registers the current thread as a member of the active scope (if
/// any) for the guard's lifetime; worker threads call this before
/// publishing. Mirrors [`jp_obs::adopt`].
#[must_use = "membership lasts only while the guard is alive"]
pub fn adopt() -> PulseAdoptGuard {
    let tid = jp_obs::thread_id();
    let mut members = lock(&MEMBERS);
    let added = match members.as_mut() {
        Some(set) => set.insert(tid),
        None => false,
    };
    PulseAdoptGuard { tid, added }
}

/// Scope membership for one worker thread; see [`adopt`].
pub struct PulseAdoptGuard {
    tid: u64,
    added: bool,
}

impl Drop for PulseAdoptGuard {
    fn drop(&mut self) {
        if self.added {
            let mut members = lock(&MEMBERS);
            if let Some(set) = members.as_mut() {
                set.remove(&self.tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_publishes_nothing() {
        // No scope of ours is active: the add is dropped (either pulse is
        // disabled entirely, or another test's scope filters us out).
        counter_add("test.reg.off", 5);
        // no scope: even a later scope must not see the value
        let _scope = PulseScope::install();
        assert_eq!(snapshot().get("test.reg.off"), None);
    }

    #[test]
    fn counters_gauges_and_histograms_snapshot_sorted() {
        let _scope = PulseScope::install();
        counter_add("test.reg.c", 2);
        counter_add("test.reg.c", 3);
        gauge_set("test.reg.g", 9);
        gauge_set("test.reg.g", 4);
        for v in [1u64, 2, 3, 1000] {
            observe("test.reg.h", v);
        }
        let snap = snapshot();
        assert_eq!(snap.get("test.reg.c"), Some(&5));
        assert_eq!(snap.get("test.reg.g"), Some(&4));
        assert_eq!(snap.get("test.reg.h.count"), Some(&4));
        assert_eq!(snap.get("test.reg.h.sum"), Some(&1006));
        // rank-2 value 2 lives in the log2 bucket [2,3] → upper bound 3
        assert_eq!(snap.get("test.reg.h.p50"), Some(&3));
        assert_eq!(snap.get("test.reg.h.p99"), Some(&1023));
        let keys: Vec<&String> = snap.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "snapshot is deterministically ordered");
    }

    #[test]
    fn scope_filters_foreign_threads_until_adopted() {
        let _scope = PulseScope::install();
        counter_add("test.reg.mine", 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                counter_add("test.reg.foreign", 1);
                let _adopt = adopt();
                counter_add("test.reg.adopted", 1);
            })
            .join()
            .ok();
        });
        let snap = snapshot();
        assert_eq!(snap.get("test.reg.mine"), Some(&1));
        assert_eq!(snap.get("test.reg.foreign"), None, "cross-talk dropped");
        assert_eq!(snap.get("test.reg.adopted"), Some(&1));
    }

    #[test]
    fn scope_install_resets_previous_metrics() {
        {
            let _scope = PulseScope::install();
            counter_add("test.reg.stale", 7);
        }
        let _scope = PulseScope::install();
        assert_eq!(snapshot().get("test.reg.stale"), None);
    }

    #[test]
    fn kind_mismatch_is_a_noop_not_a_panic() {
        let _scope = PulseScope::install();
        counter_add("test.reg.kind", 1);
        gauge_set("test.reg.kind", 99);
        observe("test.reg.kind", 3);
        assert_eq!(snapshot().get("test.reg.kind"), Some(&1));
    }

    #[test]
    fn histogram_quantiles_match_the_obs_reference() {
        let h = PulseHistogram::new();
        let values = [0u64, 1, 1, 2, 3, 7, 100, 100, 1000];
        for &v in &values {
            h.observe(v);
        }
        let reference = jp_obs::Histogram::new();
        for &v in &values {
            reference.observe(v);
        }
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(
                h.quantile_upper_bound(q),
                reference.quantile_upper_bound(q),
                "q = {q}"
            );
        }
    }
}
