//! The `jp pulse top` terminal renderer: a compact, sectioned view of
//! one pulse snapshot (workers, memory, histograms, everything else).
//!
//! Pure string rendering over a snapshot map — the CLI owns the refresh
//! loop and screen clearing, so this module stays trivially testable.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

const BAR_WIDTH: usize = 20;

/// Renders the full `jp pulse top` frame for a snapshot taken at
/// `at_micros` since the sampled run started.
pub fn render_top(ordinal: u64, at_micros: u64, samples: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    let secs = at_micros as f64 / 1_000_000.0;
    let _ = writeln!(out, "jp pulse · snapshot #{ordinal} at {secs:.3}s");
    let mut used: BTreeSet<&str> = BTreeSet::new();

    render_workers(&mut out, samples, &mut used);
    render_memory(&mut out, samples, &mut used);
    render_histograms(&mut out, samples, &mut used);

    let rest: Vec<(&str, u64)> = samples
        .iter()
        .filter(|(name, _)| !used.contains(name.as_str()))
        .map(|(name, value)| (name.as_str(), *value))
        .collect();
    if !rest.is_empty() {
        let _ = writeln!(out, "\ncounters & gauges");
        for (name, value) in rest {
            let _ = writeln!(out, "  {name:<44} {value:>12}");
        }
    }
    out
}

/// `par.worker.<id>.util_pct` gauges as percentage bars.
fn render_workers<'a>(
    out: &mut String,
    samples: &'a BTreeMap<String, u64>,
    used: &mut BTreeSet<&'a str>,
) {
    let mut workers: Vec<(&str, u64)> = Vec::new();
    for (name, value) in samples {
        if let Some(rest) = name.strip_prefix("par.worker.") {
            if let Some(id) = rest.strip_suffix(".util_pct") {
                workers.push((id, *value));
                used.insert(name.as_str());
            }
        }
    }
    if workers.is_empty() {
        return;
    }
    workers.sort_by_key(|(id, _)| id.parse::<u64>().unwrap_or(u64::MAX));
    let _ = writeln!(out, "\nworkers");
    for (id, pct) in workers {
        let pct = pct.min(100);
        let filled = (pct as usize * BAR_WIDTH) / 100;
        let bar: String = (0..BAR_WIDTH)
            .map(|i| if i < filled { '#' } else { '-' })
            .collect();
        let _ = writeln!(out, "  worker {id:<3} {pct:>3}% [{bar}]");
    }
}

/// `mem.<scope>.*` rows, bytes human-formatted.
fn render_memory<'a>(
    out: &mut String,
    samples: &'a BTreeMap<String, u64>,
    used: &mut BTreeSet<&'a str>,
) {
    let mem: Vec<(&str, u64)> = samples
        .iter()
        .filter(|(name, _)| name.starts_with("mem."))
        .map(|(name, value)| (name.as_str(), *value))
        .collect();
    if mem.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nmemory");
    for (name, value) in mem {
        used.insert(name);
        let rendered = if name.contains(".bytes_") {
            human_bytes(value)
        } else {
            value.to_string()
        };
        let _ = writeln!(out, "  {name:<44} {rendered:>12}");
    }
}

/// Histogram families: any base `X` where `X.count`, `X.p50`, `X.p95`
/// and `X.p99` are all present renders as one summary line.
fn render_histograms<'a>(
    out: &mut String,
    samples: &'a BTreeMap<String, u64>,
    used: &mut BTreeSet<&'a str>,
) {
    let mut bases: Vec<&str> = Vec::new();
    for name in samples.keys() {
        if let Some(base) = name.strip_suffix(".count") {
            let all = [".sum", ".p50", ".p95", ".p99"]
                .iter()
                .all(|suffix| samples.contains_key(&format!("{base}{suffix}")));
            if all {
                bases.push(base);
            }
        }
    }
    if bases.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nhistograms");
    for base in bases {
        let get = |suffix: &str| {
            samples
                .get(&format!("{base}{suffix}"))
                .copied()
                .unwrap_or(0)
        };
        let (count, sum) = (get(".count"), get(".sum"));
        let (p50, p95, p99) = (get(".p50"), get(".p95"), get(".p99"));
        for suffix in [".count", ".sum", ".p50", ".p95", ".p99"] {
            if let Some((key, _)) = samples.get_key_value(&format!("{base}{suffix}")) {
                used.insert(key.as_str());
            }
        }
        let _ = writeln!(
            out,
            "  {base:<28} n={count:<8} sum={sum:<10} p50≤{p50} p95≤{p95} p99≤{p99}"
        );
    }
}

/// `1234567` → `1.2M`; keeps small numbers exact.
fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "K", "M", "G"];
    let mut value = bytes as f64;
    let mut unit = 0usize;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    let suffix = UNITS.get(unit).copied().unwrap_or("G");
    if unit == 0 {
        format!("{bytes}{suffix}")
    } else {
        format!("{value:.1}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> BTreeMap<String, u64> {
        let mut s = BTreeMap::new();
        s.insert("par.worker.0.util_pct".to_string(), 100);
        s.insert("par.worker.1.util_pct".to_string(), 45);
        s.insert("par.queue_depth".to_string(), 3);
        s.insert("mem.solver.bytes_peak".to_string(), 2_500_000);
        s.insert("mem.solver.allocs".to_string(), 120);
        s.insert("solve.us.count".to_string(), 10);
        s.insert("solve.us.sum".to_string(), 1000);
        s.insert("solve.us.p50".to_string(), 63);
        s.insert("solve.us.p95".to_string(), 255);
        s.insert("solve.us.p99".to_string(), 255);
        s.insert("memo.hit".to_string(), 9);
        s
    }

    #[test]
    fn sections_render_and_partition_the_samples() {
        let text = render_top(3, 1_500_000, &snapshot());
        assert!(text.contains("snapshot #3 at 1.500s"), "{text}");
        assert!(
            text.contains("worker 0   100% [####################]"),
            "{text}"
        );
        assert!(
            text.contains("worker 1    45% [#########-----------]"),
            "{text}"
        );
        assert!(text.contains("2.4M"), "{text}");
        assert!(text.contains("p50≤63 p95≤255 p99≤255"), "{text}");
        // memo.hit and queue_depth fall through to the generic section,
        // and the histogram parts do not re-render there.
        assert!(text.contains("counters & gauges"), "{text}");
        assert!(text.contains("memo.hit"), "{text}");
        assert!(text.contains("par.queue_depth"), "{text}");
        let generic = text.split("counters & gauges").nth(1).unwrap_or("");
        assert!(!generic.contains("solve.us.p50"), "{text}");
    }

    #[test]
    fn human_bytes_is_stable() {
        assert_eq!(human_bytes(900), "900B");
        assert_eq!(human_bytes(2048), "2.0K");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0M");
    }
}
