//! Prometheus-style text exposition of a pulse snapshot.
//!
//! `jp pulse export` renders the latest snapshot in the classic
//! `text/plain; version=0.0.4` shape: a `# TYPE` comment per metric
//! followed by `name value`. Every sample is exposed as a gauge — the
//! scrape target is a point-in-time snapshot, so even monotonic pulse
//! counters are levels from the scraper's point of view (downstream
//! `rate()` handles resets exactly as for any restarted process).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a pulse sample name to a legal Prometheus metric name:
/// prefix `jp_`, every non-alphanumeric byte folded to `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("jp_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the full exposition document for one snapshot. Input keys
/// are already sorted (`BTreeMap`), so output is deterministic.
pub fn render_exposition(samples: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in samples {
        let metric = metric_name(name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("memo.hit"), "jp_memo_hit");
        assert_eq!(
            metric_name("par.worker.3.util_pct"),
            "jp_par_worker_3_util_pct"
        );
    }

    #[test]
    fn exposition_pairs_type_comment_with_sample() {
        let mut samples = BTreeMap::new();
        samples.insert("memo.hit".to_string(), 42u64);
        samples.insert("par.queue_depth".to_string(), 3u64);
        let text = render_exposition(&samples);
        let expected = "# TYPE jp_memo_hit gauge\njp_memo_hit 42\n\
                        # TYPE jp_par_queue_depth gauge\njp_par_queue_depth 3\n";
        assert_eq!(text, expected);
    }
}
