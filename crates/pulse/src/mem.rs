//! Scope-attributed allocation accounting.
//!
//! A binary that installs [`TrackingAlloc`] as its `#[global_allocator]`
//! gets, for free, per-[`MemScope`] byte and allocation-count totals
//! plus a high-water mark ("peak-RSS-equivalent": the peak of the sum of
//! live layout bytes, which tracks RSS minus allocator overhead). The
//! scope is a thread-local *stack*: [`mem_scope`] pushes a coarse label
//! (solver, memo, relalg, par), the returned guard pops back to the
//! previous label on drop, so nesting attributes each allocation to the
//! innermost active scope.
//!
//! Everything on the allocator path is panic-free and allocation-free:
//! a `Cell<u8>` read (with a fallback to [`MemScope::Other`] during TLS
//! teardown) and a handful of relaxed atomic updates. Frees are
//! attributed to the scope active *at free time* — a value allocated in
//! one scope and dropped in another moves bytes between scopes, which is
//! why `bytes_current` is signed per scope while the [`totals`] row is
//! exact by construction.
//!
//! The accounting statics compile unconditionally so call sites and
//! tests need no feature gates; without the `alloc-track` feature (or
//! without the allocator installed) every number simply stays zero and
//! [`tracking_active`] reports `false`.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Coarse attribution scopes for allocation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemScope {
    /// Anything not inside an explicit scope (startup, I/O, tests…).
    Other,
    /// The solver ladder: exact DP, branch-and-bound, heuristics.
    Solver,
    /// The canonical-component memo cache.
    Memo,
    /// Relational algebra: relations, join algorithms, workloads.
    Relalg,
    /// The work-stealing runtime itself (queues, scope bookkeeping).
    Par,
}

/// Number of [`MemScope`] variants.
pub const SCOPE_COUNT: usize = 5;

/// Every scope, in index order.
pub const SCOPES: [MemScope; SCOPE_COUNT] = [
    MemScope::Other,
    MemScope::Solver,
    MemScope::Memo,
    MemScope::Relalg,
    MemScope::Par,
];

impl MemScope {
    /// Stable lower-case label, used in pulse line names
    /// (`mem.<label>.<field>`).
    pub fn label(self) -> &'static str {
        match self {
            MemScope::Other => "other",
            MemScope::Solver => "solver",
            MemScope::Memo => "memo",
            MemScope::Relalg => "relalg",
            MemScope::Par => "par",
        }
    }

    fn index(self) -> usize {
        match self {
            MemScope::Other => 0,
            MemScope::Solver => 1,
            MemScope::Memo => 2,
            MemScope::Relalg => 3,
            MemScope::Par => 4,
        }
    }
}

/// Live accounting cells for one scope.
struct ScopeCells {
    allocs: AtomicU64,
    frees: AtomicU64,
    bytes_allocated: AtomicU64,
    bytes_freed: AtomicU64,
    current: AtomicI64,
    peak: AtomicI64,
}

impl ScopeCells {
    const fn new() -> ScopeCells {
        ScopeCells {
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
            bytes_freed: AtomicU64::new(0),
            current: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }

    #[cfg_attr(not(feature = "alloc-track"), allow(dead_code))]
    fn on_alloc(&self, size: u64) {
        // race:order(allocator-path accounting is approximate by design — per-cell totals are exact, cross-cell snapshots may tear)
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(size, Ordering::Relaxed);
        // race:order(high-water mark via fetch_max over this cell's own monotone running total)
        let now = self.current.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    #[cfg_attr(not(feature = "alloc-track"), allow(dead_code))]
    fn on_free(&self, size: u64) {
        // race:order(allocator-path accounting is approximate by design — per-cell totals are exact, cross-cell snapshots may tear)
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.bytes_freed.fetch_add(size, Ordering::Relaxed);
        // race:order(same approximate accounting as above)
        self.current.fetch_sub(size as i64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> MemScopeStats {
        MemScopeStats {
            // race:order(sampled snapshot of approximate accounting — fields may tear relative to each other, which the memory axis tolerates)
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            // race:order(same sampled snapshot as above)
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
            bytes_freed: self.bytes_freed.load(Ordering::Relaxed),
            // race:order(same sampled snapshot as above)
            bytes_current: self.current.load(Ordering::Relaxed),
            bytes_peak: self.peak.load(Ordering::Relaxed),
        }
    }
}

static SCOPE_CELLS: [ScopeCells; SCOPE_COUNT] = [
    ScopeCells::new(),
    ScopeCells::new(),
    ScopeCells::new(),
    ScopeCells::new(),
    ScopeCells::new(),
];
static TOTAL: ScopeCells = ScopeCells::new();

thread_local! {
    /// Index of this thread's innermost active [`MemScope`].
    static CURRENT: Cell<u8> = const { Cell::new(0) };
}

/// A point-in-time view of one scope's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemScopeStats {
    /// Allocations attributed to the scope.
    pub allocs: u64,
    /// Deallocations attributed to the scope.
    pub frees: u64,
    /// Total bytes ever allocated in the scope.
    pub bytes_allocated: u64,
    /// Total bytes ever freed in the scope.
    pub bytes_freed: u64,
    /// Live bytes: allocated − freed. Signed, because a value may be
    /// freed under a different scope than it was allocated under.
    pub bytes_current: i64,
    /// High-water mark of `bytes_current`.
    pub bytes_peak: i64,
}

/// A point-in-time view of every scope plus the exact process total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Per-scope stats, in [`SCOPES`] order.
    pub scopes: [MemScopeStats; SCOPE_COUNT],
    /// Process-wide stats (peak of the sum — which is *not* the sum of
    /// the per-scope peaks, since scopes peak at different moments).
    pub total: MemScopeStats,
}

/// Pushes `scope` as this thread's allocation-attribution scope until
/// the guard drops (restoring whatever was active before — the stack
/// discipline that makes nesting work).
#[must_use = "attribution lasts only while the guard is alive"]
pub fn mem_scope(scope: MemScope) -> MemScopeGuard {
    let prev = CURRENT
        .try_with(|c| {
            let prev = c.get();
            c.set(scope.index() as u8);
            prev
        })
        .unwrap_or(0);
    MemScopeGuard { prev }
}

/// Restores the previous scope on drop; see [`mem_scope`].
pub struct MemScopeGuard {
    prev: u8,
}

impl Drop for MemScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        let _ = CURRENT.try_with(|c| c.set(prev));
    }
}

#[cfg_attr(not(feature = "alloc-track"), allow(dead_code))]
fn current_cells() -> &'static ScopeCells {
    let idx = CURRENT.try_with(|c| c.get() as usize).unwrap_or(0);
    SCOPE_CELLS.get(idx).unwrap_or(&TOTAL)
}

/// Records one allocation of `size` bytes against the current scope.
/// Called by the [`TrackingAlloc`] hooks; safe, allocation-free,
/// panic-free.
#[cfg_attr(not(feature = "alloc-track"), allow(dead_code))]
pub(crate) fn record_alloc(size: usize) {
    current_cells().on_alloc(size as u64);
    TOTAL.on_alloc(size as u64);
}

/// Records one deallocation of `size` bytes against the current scope.
#[cfg_attr(not(feature = "alloc-track"), allow(dead_code))]
pub(crate) fn record_free(size: usize) {
    current_cells().on_free(size as u64);
    TOTAL.on_free(size as u64);
}

/// Whether allocation accounting is live (the tracking allocator is
/// installed and has seen at least one allocation).
pub fn tracking_active() -> bool {
    // race:order(zero/nonzero probe of a monotone counter)
    TOTAL.allocs.load(Ordering::Relaxed) > 0
}

/// The current accounting across all scopes.
pub fn mem_snapshot() -> MemSnapshot {
    MemSnapshot {
        scopes: std::array::from_fn(|i| {
            SCOPE_CELLS
                .get(i)
                .map(ScopeCells::snapshot)
                .unwrap_or_default()
        }),
        total: TOTAL.snapshot(),
    }
}

/// Stats for one scope.
pub fn scope_stats(scope: MemScope) -> MemScopeStats {
    SCOPE_CELLS
        .get(scope.index())
        .map(ScopeCells::snapshot)
        .unwrap_or_default()
}

/// Process-total stats (exact: every allocation lands here once).
pub fn totals() -> MemScopeStats {
    TOTAL.snapshot()
}

/// Resets every high-water mark to the respective current level, so the
/// next [`totals`] `bytes_peak` is the peak *since this call* — how the
/// bench harness scopes its per-case memory axis.
pub fn reset_peaks() {
    for cells in SCOPE_CELLS.iter().chain(std::iter::once(&TOTAL)) {
        // race:order(bench-harness reset between cases; concurrent allocations may re-raise the peak immediately, which is the intent)
        let now = cells.current.load(Ordering::Relaxed);
        cells.peak.store(now, Ordering::Relaxed);
    }
}

/// Pulse line names and values for the sampler: `mem.<scope>.<field>`
/// per scope that has ever seen traffic, plus the `mem.total.*` row.
/// Empty when tracking is inactive, so pulse files from untracked
/// binaries simply lack the memory section. Signed byte levels are
/// clamped at zero for the unsigned wire format.
pub fn sample_lines() -> Vec<(String, u64)> {
    if !tracking_active() {
        return Vec::new();
    }
    let snap = mem_snapshot();
    let mut out = Vec::new();
    let push = |label: &str, s: &MemScopeStats, out: &mut Vec<(String, u64)>| {
        out.push((format!("mem.{label}.allocs"), s.allocs));
        out.push((format!("mem.{label}.frees"), s.frees));
        out.push((format!("mem.{label}.bytes_allocated"), s.bytes_allocated));
        out.push((
            format!("mem.{label}.bytes_current"),
            s.bytes_current.max(0) as u64,
        ));
        out.push((
            format!("mem.{label}.bytes_peak"),
            s.bytes_peak.max(0) as u64,
        ));
    };
    for (scope, stats) in SCOPES.iter().zip(snap.scopes.iter()) {
        if stats.allocs > 0 || stats.frees > 0 {
            push(scope.label(), stats, &mut out);
        }
    }
    push("total", &snap.total, &mut out);
    out
}

/// The tracking allocator: delegates every operation to [`std::alloc::System`]
/// and attributes the layout sizes to the active [`MemScope`].
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: jp_pulse::mem::TrackingAlloc = jp_pulse::mem::TrackingAlloc;
/// ```
#[cfg(feature = "alloc-track")]
// audit:allow(unsafe-freedom) GlobalAlloc is an unsafe trait by definition; this module only delegates to System and bumps atomics
#[allow(unsafe_code)]
mod tracking {
    use std::alloc::{GlobalAlloc, Layout, System};

    /// See the [module docs](super) — `System` plus scope accounting.
    pub struct TrackingAlloc;

    // audit:allow(unsafe-freedom) required unsafe impl of the GlobalAlloc contract; every method forwards to System verbatim
    unsafe impl GlobalAlloc for TrackingAlloc {
        // audit:allow(unsafe-freedom) contract inherited from GlobalAlloc; body is System.alloc + safe atomic accounting
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                super::record_alloc(layout.size());
            }
            p
        }

        // audit:allow(unsafe-freedom) contract inherited from GlobalAlloc; body is System.dealloc + safe atomic accounting
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            super::record_free(layout.size());
        }

        // audit:allow(unsafe-freedom) contract inherited from GlobalAlloc; body is System.alloc_zeroed + safe atomic accounting
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                super::record_alloc(layout.size());
            }
            p
        }

        // audit:allow(unsafe-freedom) contract inherited from GlobalAlloc; body is System.realloc + safe atomic accounting
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                super::record_free(layout.size());
                super::record_alloc(new_size);
            }
            p
        }
    }
}

#[cfg(feature = "alloc-track")]
pub use tracking::TrackingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_restore_the_previous_scope() {
        let read = || CURRENT.with(|c| c.get());
        let base = read();
        {
            let _solver = mem_scope(MemScope::Solver);
            assert_eq!(read(), MemScope::Solver.index() as u8);
            {
                let _memo = mem_scope(MemScope::Memo);
                assert_eq!(read(), MemScope::Memo.index() as u8);
            }
            assert_eq!(read(), MemScope::Solver.index() as u8);
        }
        assert_eq!(read(), base);
    }

    #[test]
    fn record_paths_attribute_to_the_innermost_scope() {
        let before = scope_stats(MemScope::Relalg);
        {
            let _relalg = mem_scope(MemScope::Relalg);
            record_alloc(128);
            record_free(128);
        }
        let after = scope_stats(MemScope::Relalg);
        assert_eq!(after.allocs - before.allocs, 1);
        assert_eq!(after.frees - before.frees, 1);
        assert_eq!(after.bytes_allocated - before.bytes_allocated, 128);
        assert_eq!(
            after.bytes_current - before.bytes_current,
            0,
            "balances to zero after alloc+free"
        );
    }

    #[test]
    fn labels_cover_every_scope() {
        let labels: std::collections::BTreeSet<&str> = SCOPES.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), SCOPE_COUNT);
        for s in SCOPES {
            assert_eq!(SCOPES.get(s.index()).copied(), Some(s), "index round-trip");
        }
    }
}
