//! The pulse sampler: a background thread that periodically snapshots
//! the registry (and the allocation accounting) into a JSONL file.
//!
//! Each snapshot is a group of schema-v2 [`jp_obs::Event`] lines with
//! kind `Counter` and component `"pulse"`, so the damage-tolerant
//! jp-trace reader consumes pulse files with zero new parsing code. A
//! snapshot starts with a marker line named `"snapshot"` whose value is
//! the snapshot ordinal (1-based) and whose `start` field is the
//! microsecond offset since the sampler started; the registry samples
//! and `mem.*` lines of that snapshot follow with the same `start`.
//!
//! Lifecycle: [`Sampler::start`] installs the [`PulseScope`] (so it owns
//! pulse collection for the run — workers join via [`crate::adopt`]),
//! spawns the thread, and returns. [`Sampler::stop`] signals the thread,
//! which writes **one final snapshot after the signal** before exiting —
//! the guarantee behind "at least one snapshot, and the last one carries
//! the final counter values" even for runs shorter than the interval.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jp_obs::{Event, EventKind};

use crate::mem;
use crate::registry::{self, PulseScope};

/// Component string on every pulse line.
pub const PULSE_COMPONENT: &str = "pulse";
/// Name of the per-snapshot marker line.
pub const SNAPSHOT_MARKER: &str = "snapshot";
/// Name of the per-snapshot write-failure counter line: snapshot or
/// flush errors (full disk, revoked fd) silently swallowed before are
/// now counted here, so `jp pulse top` and the CI pulse-check see a
/// nonzero `pulse.write_errors` instead of a quietly shorter file.
pub const WRITE_ERRORS: &str = "pulse.write_errors";

struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    fn new() -> StopSignal {
        StopSignal {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn stop(&self) {
        let mut guard = self
            .stopped
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard = true;
        self.cv.notify_all();
    }

    /// Waits up to `interval`; returns `true` once stop was signalled.
    fn wait(&self, interval: Duration) -> bool {
        let guard = self
            .stopped
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if *guard {
            return true;
        }
        let (guard, _timeout) = self
            .cv
            .wait_timeout(guard, interval)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard
    }
}

/// Final report from a stopped [`Sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerReport {
    /// Snapshots written to the pulse file.
    pub snapshots: u64,
    /// Lines written (snapshot markers + samples).
    pub lines: u64,
    /// Snapshot writes or flushes that failed (full disk, closed fd).
    /// Nonzero means the pulse file is missing data — callers gate on
    /// it rather than silently trusting a truncated file.
    pub write_errors: u64,
}

/// Owns the pulse scope and the background snapshot thread.
pub struct Sampler {
    stop: Arc<StopSignal>,
    handle: Option<JoinHandle<(u64, u64)>>,
    /// Shared with the sampler thread: bumped on every failed snapshot
    /// write or flush, read by [`Sampler::stop`] for the report.
    write_errors: Arc<AtomicU64>,
    path: PathBuf,
    _scope: PulseScope,
}

impl Sampler {
    /// Installs the [`PulseScope`], truncates/creates `path`, and starts
    /// snapshotting every `interval`. Sub-millisecond intervals are
    /// honored; zero is clamped to 1ms to keep the loop yielding.
    pub fn start(path: &Path, interval: Duration) -> io::Result<Sampler> {
        let scope = PulseScope::install();
        let file = File::create(path)?;
        let stop = Arc::new(StopSignal::new());
        let thread_stop = Arc::clone(&stop);
        let write_errors = Arc::new(AtomicU64::new(0));
        let thread_errors = Arc::clone(&write_errors);
        let interval = interval.max(Duration::from_millis(1));
        // The sampler thread adopts into the scope so its own snapshot
        // bookkeeping would be publishable; it only reads the registry.
        let handle = std::thread::Builder::new()
            .name("jp-pulse-sampler".to_string())
            // audit:allow(spawn-containment) intentionally outside thread::scope: the Sampler owns the JoinHandle and joins it in stop()/Drop, so the thread never outlives its owner
            .spawn(move || {
                let _adopt = registry::adopt();
                let mut writer = BufWriter::new(file);
                let t0 = Instant::now();
                let mut snapshots: u64 = 0;
                let mut lines: u64 = 0;
                loop {
                    let stopping = thread_stop.wait(interval);
                    snapshots += 1;
                    match write_snapshot(&mut writer, snapshots, t0, &thread_errors) {
                        Ok(n) => lines += n,
                        // race:order(monotonic failure tally; readers only need the eventual count)
                        Err(_) => drop(thread_errors.fetch_add(1, Ordering::Relaxed)),
                    }
                    if writer.flush().is_err() {
                        // race:order(same monotonic failure tally as above)
                        thread_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if stopping {
                        return (snapshots, lines);
                    }
                }
            })?;
        Ok(Sampler {
            stop,
            handle: Some(handle),
            write_errors,
            path: path.to_path_buf(),
            _scope: scope,
        })
    }

    /// The pulse file this sampler writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Signals the thread, waits for the final post-run snapshot, and
    /// returns the report. The pulse scope is released on return.
    pub fn stop(mut self) -> SamplerReport {
        self.stop.stop();
        let (snapshots, lines) = match self.handle.take() {
            Some(handle) => handle.join().unwrap_or((0, 0)),
            None => (0, 0),
        };
        SamplerReport {
            snapshots,
            lines,
            // race:order(read after join; the thread's final tally is visible)
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        // Belt-and-braces shutdown when `stop()` was skipped (panic
        // unwinding through the owner): still signal and join so the
        // final snapshot lands and the file is flushed.
        self.stop.stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Serializes one full snapshot; returns the number of lines written.
/// `errors` is the sampler's running write-failure tally — each snapshot
/// publishes it as a `pulse.write_errors` line, so earlier losses are
/// visible in any later snapshot that does land.
fn write_snapshot<W: Write>(
    out: &mut W,
    ordinal: u64,
    t0: Instant,
    errors: &AtomicU64,
) -> io::Result<u64> {
    let at_micros = t0.elapsed().as_micros() as u64;
    let mut lines = 0u64;
    // race:order(fetch_add keeps seq unique and per-file monotone; samplers serialize via the pulse scope)
    let mut seq = SEQ.fetch_add(1, Ordering::Relaxed);
    write_line(out, seq, SNAPSHOT_MARKER, ordinal, at_micros)?;
    lines += 1;
    // race:order(same unique-seq allocation as above)
    seq = SEQ.fetch_add(1, Ordering::Relaxed);
    // race:order(monotonic failure tally; the line value may lag a concurrent bump by one tick)
    let write_errors = errors.load(Ordering::Relaxed);
    write_line(out, seq, WRITE_ERRORS, write_errors, at_micros)?;
    lines += 1;
    for (name, value) in registry::snapshot() {
        // race:order(same unique-seq allocation as above)
        seq = SEQ.fetch_add(1, Ordering::Relaxed);
        write_line(out, seq, &name, value, at_micros)?;
        lines += 1;
    }
    for (name, value) in mem::sample_lines() {
        // race:order(same unique-seq allocation as above)
        seq = SEQ.fetch_add(1, Ordering::Relaxed);
        write_line(out, seq, &name, value, at_micros)?;
        lines += 1;
    }
    Ok(lines)
}

/// Monotonic sequence shared by every sampler in the process, mirroring
/// the jp-obs convention that `seq` increases within a file.
static SEQ: AtomicU64 = AtomicU64::new(1);

fn write_line<W: Write>(
    out: &mut W,
    seq: u64,
    name: &str,
    value: u64,
    at_micros: u64,
) -> io::Result<()> {
    let mut event = Event::counter(PULSE_COMPONENT, name, value);
    event.seq = seq;
    event.thread = jp_obs::thread_id();
    event.kind = EventKind::Counter;
    event.start = at_micros;
    let line = serde_json::to_string(&event).map_err(io::Error::other)?;
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jp_pulse_sampler_{name}_{}", std::process::id()))
    }

    #[test]
    fn short_run_still_writes_a_final_snapshot() {
        let path = temp_path("short");
        let sampler = Sampler::start(&path, Duration::from_secs(3600)).expect("start");
        crate::counter_add("test.hits", 7);
        crate::gauge_set("test.depth", 3);
        let report = sampler.stop();
        assert!(report.snapshots >= 1, "final snapshot always lands");
        let text = std::fs::read_to_string(&path).expect("pulse file");
        let _ = std::fs::remove_file(&path);
        let mut marker_seen = false;
        let mut hits = None;
        for line in text.lines() {
            let event: Event = serde_json::from_str(line).expect("schema-v2 line");
            assert_eq!(event.component, PULSE_COMPONENT);
            assert!(matches!(event.kind, EventKind::Counter));
            if event.name == SNAPSHOT_MARKER {
                marker_seen = true;
            }
            if event.name == "test.hits" {
                hits = Some(event.value);
            }
        }
        assert!(marker_seen, "snapshot marker line present");
        assert_eq!(hits, Some(7), "final snapshot carries the counter value");
    }

    #[test]
    fn interval_snapshots_accumulate() {
        let path = temp_path("interval");
        let sampler = Sampler::start(&path, Duration::from_millis(5)).expect("start");
        crate::counter_add("test.ticks", 1);
        std::thread::sleep(Duration::from_millis(40));
        let report = sampler.stop();
        let _ = std::fs::remove_file(&path);
        assert!(
            report.snapshots >= 2,
            "expected periodic snapshots, got {}",
            report.snapshots
        );
        assert!(report.lines > report.snapshots);
    }

    /// A writer that fails every write — the always-full disk.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        }
    }

    #[test]
    fn write_snapshot_propagates_writer_errors() {
        let errors = AtomicU64::new(0);
        let err = write_snapshot(&mut FailingWriter, 1, Instant::now(), &errors).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn snapshots_carry_the_write_error_tally() {
        let errors = AtomicU64::new(3);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 1, Instant::now(), &errors).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let tally = text
            .lines()
            .map(|l| serde_json::from_str::<Event>(l).expect("schema-v2 line"))
            .find(|e| e.name == WRITE_ERRORS)
            .expect("pulse.write_errors line in every snapshot");
        assert_eq!(tally.value, 3);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn full_disk_is_counted_not_swallowed() {
        // /dev/full accepts the open and fails every write with ENOSPC —
        // exactly the failure mode the old `let _ = writer.flush()`
        // swallowed. The report must surface it.
        let sampler = Sampler::start(Path::new("/dev/full"), Duration::from_millis(5))
            .expect("open /dev/full");
        crate::counter_add("test.full_disk", 1);
        std::thread::sleep(Duration::from_millis(20));
        let report = sampler.stop();
        assert!(
            report.write_errors >= 1,
            "ENOSPC must be counted, got {report:?}"
        );
    }

    #[test]
    fn healthy_run_reports_zero_write_errors() {
        let path = temp_path("healthy");
        let sampler = Sampler::start(&path, Duration::from_millis(5)).expect("start");
        crate::counter_add("test.ok", 1);
        std::thread::sleep(Duration::from_millis(15));
        let report = sampler.stop();
        let _ = std::fs::remove_file(&path);
        assert_eq!(report.write_errors, 0, "{report:?}");
    }

    #[test]
    fn seq_is_strictly_increasing_within_a_file() {
        let path = temp_path("seq");
        let sampler = Sampler::start(&path, Duration::from_millis(5)).expect("start");
        crate::counter_add("test.seq", 1);
        std::thread::sleep(Duration::from_millis(25));
        let _ = sampler.stop();
        let text = std::fs::read_to_string(&path).expect("pulse file");
        let _ = std::fs::remove_file(&path);
        let mut last = 0u64;
        for line in text.lines() {
            let event: Event = serde_json::from_str(line).expect("line");
            assert!(
                event.seq > last,
                "seq must increase: {} !> {}",
                event.seq,
                last
            );
            last = event.seq;
        }
    }
}
