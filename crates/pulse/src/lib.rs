// With alloc-track off the crate is 100% safe code and says so; with it
// on, the one GlobalAlloc impl in `mem` carries its own reasoned audit
// annotations and everything else stays denied.
#![cfg_attr(not(feature = "alloc-track"), forbid(unsafe_code))]
#![deny(unsafe_code)]
//! `jp-pulse` — the always-on live metrics runtime.
//!
//! jp-obs is a *push-event* stream: every counter bump and span close is
//! an event, written to a sink, analyzed post-hoc by jp-trace. That is
//! the right tool for exact work accounting, but useless for watching a
//! long-running process *while it runs* — you cannot tail a trace you
//! have not closed, and a serve loop cannot afford an event per request
//! just to answer "what is the p99 right now".
//!
//! jp-pulse is the complementary *sampled* path:
//!
//! * [`registry`] — a sharded registry of named atomic counters, gauges
//!   and log₂-bucketed streaming [`PulseHistogram`]s. Updates are atomic
//!   adds/stores behind one relaxed-load [`enabled`] check, so the
//!   disabled path costs a single predictable branch.
//! * [`mem`] — allocation accounting: a tracking `GlobalAlloc` wrapper
//!   (feature `alloc-track`) attributes bytes, allocation counts and
//!   high-water marks to coarse [`MemScope`]s (solver, memo, relalg,
//!   par) through a thread-local scope stack of guards.
//! * [`sampler`] — a background thread that snapshots the registry (and
//!   the memory stats) at a fixed interval into JSONL "pulse" lines that
//!   share the jp-obs schema-v2 conventions: pinned key order, kind
//!   `Counter`, component `"pulse"`, monotonic `start` offsets. The
//!   damage-tolerant jp-trace reader consumes pulse files unchanged.
//! * [`expo`] / [`top`] — Prometheus-style text exposition and the
//!   `jp pulse top` terminal renderer over a snapshot.
//!
//! Like [`jp_obs::ScopedSink`], collection is scoped: [`PulseScope`]
//! serializes concurrent users (tests) and filters publication to the
//! installing thread plus every worker that [`adopt`]ed in, so two
//! concurrent runs in one process never mix their numbers.

pub mod expo;
pub mod mem;
pub mod registry;
pub mod sampler;
pub mod top;

#[cfg(feature = "alloc-track")]
pub use mem::TrackingAlloc;
pub use mem::{mem_scope, mem_snapshot, MemScope, MemScopeGuard, MemScopeStats, MemSnapshot};
pub use registry::{
    adopt, counter_add, enabled, gauge_set, observe, snapshot, PulseAdoptGuard, PulseHistogram,
    PulseScope,
};
pub use sampler::{Sampler, SamplerReport};
