#![forbid(unsafe_code)]
//! `jp-par` — a zero-dependency, std-only work-stealing runtime for the
//! solver ladder.
//!
//! The ROADMAP's north star is a system that runs "as fast as the
//! hardware allows", and the worst-case-optimal-join literature ("Skew
//! Strikes Back", Ngo et al. 2013; Leapfrog Triejoin, Veldhuizen 2014)
//! teaches that *skew-tolerant scheduling* is what separates theoretical
//! from practical optimality. A fixed wave/barrier schedule stalls every
//! wave on its slowest task; a work-stealing schedule lets idle workers
//! drain whatever queue still has work.
//!
//! # Design
//!
//! [`run_tasks`] owns the whole lifecycle: seed tasks are distributed
//! round-robin across per-worker deques, workers run under
//! [`std::thread::scope`], and each worker takes from three sources in
//! order:
//!
//! 1. its **own deque**, front first (FIFO — seeds run in index order);
//! 2. the **shared injector**, where [`Worker::spawn`]ed tasks land;
//! 3. **stealing** — the back of another worker's deque, scanning
//!    victims ring-wise from its own id.
//!
//! Deques are `Mutex<VecDeque>` — contention is per-task, and tasks in
//! this workspace are coarse (a sub-join, a heuristic run, a
//! branch-and-bound root), so a lock-free deque would buy nothing but
//! `unsafe`. Termination is a single `pending` count of queued + running
//! tasks; workers spin-yield only in the rare window where `pending > 0`
//! but every queue is momentarily empty.
//!
//! Results are returned **in task-index order** (seeds first, then
//! spawned tasks in spawn order), so output is deterministic regardless
//! of which worker ran what. Workers [`jp_obs::adopt`] into any active
//! scoped capture, and every event they emit carries their thread id, so
//! parallel traces stay attributable.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A caught worker panic, re-thrown on the calling thread.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A task tagged with its dense result index.
struct IndexedTask<T> {
    index: usize,
    payload: T,
}

/// State shared by all workers of one [`run_tasks`] call.
struct Shared<T> {
    /// Global queue for dynamically [`Worker::spawn`]ed tasks.
    injector: Mutex<VecDeque<IndexedTask<T>>>,
    /// One deque per worker; seeds are distributed round-robin.
    locals: Vec<Mutex<VecDeque<IndexedTask<T>>>>,
    /// Tasks queued or currently running; 0 means done.
    pending: AtomicUsize,
    /// Next free result index (seeds occupy `0..seed_count`).
    next_index: AtomicUsize,
    /// Successful steals, for the `par.steals` counter.
    steals: AtomicU64,
    /// Dynamically spawned tasks, for the `par.spawned` counter.
    spawned: AtomicU64,
    /// Set when a task panicked: all workers stop taking new tasks, and
    /// the first captured payload is re-thrown by [`run_tasks`]. Without
    /// this a panicking task would strand `pending` above zero and
    /// deadlock the surviving workers.
    abort: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle passed to the task closure: identifies the executing worker
/// and lets tasks enqueue more work.
pub struct Worker<'a, T> {
    shared: &'a Shared<T>,
    id: usize,
}

impl<T> Worker<'_, T> {
    /// The executing worker's index in `0..threads`.
    // audit:allow(obs-coverage) trivial accessor — the surrounding run_tasks span covers it
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueues `task` on the shared injector, where any worker may pick
    /// it up. Returns the task's result index: its result appears at
    /// that position of [`run_tasks`]'s output (spawned tasks follow the
    /// seeds, in spawn order).
    // audit:allow(obs-coverage) queue push on the task hot path — aggregated into the par.spawned counter instead of a per-call span
    pub fn spawn(&self, task: T) -> usize {
        // race:order(index allocation only needs uniqueness, not ordering — results are sorted by index after the join)
        let index = self.shared.next_index.fetch_add(1, Ordering::Relaxed);
        // Count the task as pending *before* it becomes visible: a thief
        // could otherwise pop and finish it and drive `pending` to zero
        // while it was never accounted for.
        // race:order(Release pairs with the Acquire loads in worker_loop: a worker that sees pending==0 also sees every spawn accounted)
        self.shared.pending.fetch_add(1, Ordering::Release);
        // race:order(monotonic statistic, read after the scoped join)
        self.shared.spawned.fetch_add(1, Ordering::Relaxed);
        jp_pulse::counter_add("par.spawned", 1);
        lock(&self.shared.injector).push_back(IndexedTask {
            index,
            payload: task,
        });
        index
    }

    /// Own deque front → injector front → steal from a victim's back.
    fn next_task(&self) -> Option<IndexedTask<T>> {
        if let Some(deque) = self.shared.locals.get(self.id) {
            if let Some(t) = lock(deque).pop_front() {
                return Some(t);
            }
        }
        if let Some(t) = lock(&self.shared.injector).pop_front() {
            return Some(t);
        }
        let n = self.shared.locals.len();
        for k in 1..n {
            let Some(victim) = self.shared.locals.get((self.id + k) % n) else {
                continue;
            };
            // Bind the pop so the victim's deque guard dies at the `;` —
            // the pulse counter below must not run under that lock.
            let stolen = lock(victim).pop_back();
            if let Some(t) = stolen {
                // race:order(monotonic statistic, read after the scoped join)
                self.shared.steals.fetch_add(1, Ordering::Relaxed);
                jp_pulse::counter_add("par.steals", 1);
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop<'a, T, R, F>(
    shared: &'a Shared<T>,
    id: usize,
    run_span: Option<u64>,
    run_request: Option<u64>,
    f: &F,
) -> Vec<(usize, R)>
where
    F: Fn(&Worker<'a, T>, T) -> R,
{
    // Join any active scoped obs capture for this worker's lifetime —
    // without this, a ScopedSink would drop our events as cross-talk.
    let _adopt = jp_obs::adopt();
    // Same for an active pulse scope: live gauges published here must
    // land in the sampler's registry, not be filtered as cross-talk.
    let _pulse = jp_pulse::adopt();
    // Allocation attribution: everything this worker does defaults to
    // the `par` scope; solver/memo entry points override by nesting.
    let _mem = jp_pulse::mem_scope(jp_pulse::MemScope::Par);
    // Nest everything this worker emits (task spans included) under the
    // runtime's `par.run` span, which outlives every worker — so traces
    // form one tree with zero orphaned parents.
    let _link = jp_obs::link_parent(run_span);
    // Inherit the caller's serve-request context: a parallel solve run
    // on behalf of one request stamps that request's id from every
    // worker, not just the thread that called run_tasks. Inert (None)
    // outside a request.
    let _req = jp_obs::with_request(run_request);
    // Start/stop markers bracket the worker's lifetime; their `start`
    // offsets are what `trace summary` turns into the utilization
    // timeline.
    jp_obs::counter("par", "worker.start", 1);
    // Live per-worker utilization: busy time spent inside tasks over
    // wall time since the worker started. Published as a pulse gauge
    // after every task, so `jp pulse top` shows load while we run.
    let started = std::time::Instant::now();
    let mut busy = std::time::Duration::ZERO;
    let util_gauge = format!("par.worker.{id}.util_pct");
    let worker = Worker { shared, id };
    let mut out = Vec::new();
    loop {
        // race:order(Acquire on pending pairs with the Release bumps/decrements; Acquire on abort pairs with the Release store below so an observed abort also shows the filled panic slot)
        if shared.pending.load(Ordering::Acquire) == 0 || shared.abort.load(Ordering::Acquire) {
            break;
        }
        match worker.next_task() {
            Some(task) => {
                let pulsing = jp_pulse::enabled();
                let task_start = pulsing.then(std::time::Instant::now);
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(&worker, task.payload))) {
                    Ok(result) => out.push((task.index, result)),
                    Err(payload) => {
                        let mut slot = lock(&shared.panic);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        // Upgraded from Relaxed: Release publishes the
                        // slot write to workers that observe the latch
                        // without ever taking the panic mutex.
                        // race:order(Release pairs with the Acquire latch check at the top of the loop)
                        shared.abort.store(true, Ordering::Release);
                    }
                }
                // race:order(Release pairs with the Acquire loads: the 0-observer sees all task effects)
                shared.pending.fetch_sub(1, Ordering::Release);
                if let Some(t0) = task_start {
                    busy += t0.elapsed();
                    let wall = started.elapsed().as_micros().max(1);
                    let pct = (busy.as_micros().saturating_mul(100) / wall) as u64;
                    jp_pulse::gauge_set(&util_gauge, pct.min(100));
                    jp_pulse::gauge_set(
                        "par.queue_depth",
                        // race:order(Acquire pairs with the Release bumps; the gauge is a live snapshot either way)
                        shared.pending.load(Ordering::Acquire) as u64,
                    );
                }
            }
            // pending > 0 but every queue momentarily empty: the last
            // tasks are running elsewhere and may still spawn more.
            None => std::thread::yield_now(),
        }
    }
    jp_obs::counter("par", "worker_tasks", out.len() as u64);
    jp_obs::counter("par", "worker.stop", 1);
    out
}

/// Runs `tasks` across `threads` workers and returns the results in
/// task-index order: seed results first (matching the input order), then
/// results of [`Worker::spawn`]ed tasks in spawn order.
///
/// `threads == 1` (or any value clamped up to 1) runs everything on the
/// calling thread — no spawn overhead, strictly sequential FIFO order —
/// so single-threaded behaviour is the exact baseline the parallel runs
/// are compared against.
///
/// If a task panics, workers stop taking new tasks and the first panic
/// payload is re-thrown on the calling thread.
///
/// ```
/// let squares = jp_par::run_tasks(4, (0u64..32).collect(), |_, x| x * x);
/// assert_eq!(squares, (0u64..32).map(|x| x * x).collect::<Vec<_>>());
/// ```
pub fn run_tasks<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: for<'a> Fn(&Worker<'a, T>, T) -> R + Sync,
{
    let _span = jp_obs::span("par", "run");
    // The seq the span reserved: workers link it as their parent so
    // cross-thread task spans still nest under this `par.run`.
    let run_span = jp_obs::current_span();
    // The request context at the call site, inherited by every worker.
    let run_request = jp_obs::current_request();
    let seed_count = tasks.len();
    if seed_count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1);
    let shared = Shared {
        injector: Mutex::new(VecDeque::new()),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(seed_count),
        next_index: AtomicUsize::new(seed_count),
        steals: AtomicU64::new(0),
        spawned: AtomicU64::new(0),
        abort: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    for (index, payload) in tasks.into_iter().enumerate() {
        if let Some(deque) = shared.locals.get(index % threads) {
            lock(deque).push_back(IndexedTask { index, payload });
        }
    }
    let collected: Vec<(usize, R)> = if threads == 1 {
        worker_loop(&shared, 0, run_span, run_request, &f)
    } else {
        let shared_ref = &shared;
        let f_ref = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|id| {
                    s.spawn(move || worker_loop(shared_ref, id, run_span, run_request, f_ref))
                })
                .collect();
            let mut all = Vec::new();
            for handle in handles {
                match handle.join() {
                    Ok(part) => all.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            all
        })
    };
    if let Some(payload) = lock(&shared.panic).take() {
        std::panic::resume_unwind(payload);
    }
    // Every load below runs after the scoped join (or the sequential
    // worker_loop return), which already synchronizes all worker writes.
    if jp_obs::enabled() {
        jp_obs::counter("par", "workers", threads as u64);
        jp_obs::counter(
            "par",
            "tasks",
            // race:order(read after the scoped join; Acquire is belt-and-braces)
            shared.next_index.load(Ordering::Acquire) as u64,
        );
        // race:order(statistics read after the scoped join)
        jp_obs::counter("par", "steals", shared.steals.load(Ordering::Relaxed));
        jp_obs::counter("par", "spawned", shared.spawned.load(Ordering::Relaxed));
    }
    if jp_pulse::enabled() {
        jp_pulse::gauge_set("par.workers", threads as u64);
        jp_pulse::gauge_set(
            "par.tasks",
            // race:order(read after the scoped join; Acquire is belt-and-braces)
            shared.next_index.load(Ordering::Acquire) as u64,
        );
    }
    // race:order(read after the scoped join; Acquire is belt-and-braces)
    let total = shared.next_index.load(Ordering::Acquire);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for (index, result) in collected {
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every task index completes exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn results_preserve_task_order() {
        for threads in [1, 2, 4, 9] {
            let out = run_tasks(threads, (0u64..100).collect(), |_, x| x * 2);
            assert_eq!(out, (0u64..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        let out: Vec<u32> = run_tasks(4, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let out = run_tasks(0, vec![1, 2, 3], |w, x| {
            assert_eq!(w.id(), 0);
            x + 10
        });
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_tasks(8, vec![5u64, 7], |w, x| {
            assert!(w.id() < 8);
            x
        });
        assert_eq!(out, vec![5, 7]);
    }

    #[test]
    fn skewed_seeds_get_stolen() {
        // Two workers; worker 0's first seed blocks until one of worker
        // 0's other seeds (even index) has executed on worker 1 — i.e.
        // until a steal demonstrably happened. Worker 1's seeds are all
        // trivial, so it drains its own deque and must steal to help.
        let stolen = AtomicBool::new(false);
        let out = run_tasks(2, (0usize..12).collect(), |w, x| {
            if x % 2 == 0 && x != 0 && w.id() == 1 {
                stolen.store(true, Ordering::SeqCst);
            }
            if x == 0 {
                for _ in 0..5000 {
                    if stolen.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            x
        });
        assert!(stolen.load(Ordering::SeqCst), "worker 1 never stole");
        assert_eq!(out, (0usize..12).collect::<Vec<_>>());
    }

    #[test]
    fn spawned_tasks_run_and_append_results() {
        for threads in [1, 3] {
            let out = run_tasks(threads, vec![10u64, 20], |w, x| {
                if x == 10 {
                    let index = w.spawn(11);
                    assert_eq!(index, 2, "first spawn lands after the seeds");
                }
                x
            });
            assert_eq!(out, vec![10, 20, 11], "threads = {threads}");
        }
    }

    #[test]
    fn recursive_spawns_terminate() {
        // Each task < 8 spawns its successor; all must complete.
        let out = run_tasks(2, vec![0u64], |w, x| {
            if x < 8 {
                w.spawn(x + 1);
            }
            x
        });
        assert_eq!(out, (0u64..=8).collect::<Vec<_>>());
    }

    #[test]
    fn workers_adopt_into_scoped_captures() {
        let sink = std::sync::Arc::new(jp_obs::MemorySink::new());
        let _guard = jp_obs::ScopedSink::install(sink.clone());
        let out = run_tasks(3, (0u64..9).collect(), |_, x| {
            jp_obs::counter("par", "task_seen", x);
            x
        });
        assert_eq!(out.len(), 9);
        let events = sink.events();
        let seen = events.iter().filter(|e| e.name == "task_seen").count();
        assert_eq!(seen, 9, "worker events must reach the scoped capture");
        let worker_reports: Vec<_> = events.iter().filter(|e| e.name == "worker_tasks").collect();
        assert_eq!(worker_reports.len(), 3, "one summary per worker");
        let distinct: std::collections::BTreeSet<u64> =
            worker_reports.iter().map(|e| e.thread).collect();
        assert_eq!(distinct.len(), 3, "each worker has its own thread id");
        let tasks = events
            .iter()
            .find(|e| e.component == "par" && e.name == "tasks")
            .expect("par.tasks counter");
        assert_eq!(tasks.value, 9);
        // Every worker brackets its lifetime and parents its events
        // under the par.run span (which is emitted last, after joining).
        let run = events
            .iter()
            .find(|e| e.component == "par" && e.name == "run")
            .expect("par.run span");
        let starts: Vec<_> = events.iter().filter(|e| e.name == "worker.start").collect();
        let stops: Vec<_> = events.iter().filter(|e| e.name == "worker.stop").collect();
        assert_eq!(starts.len(), 3);
        assert_eq!(stops.len(), 3);
        for e in starts.iter().chain(&stops) {
            assert_eq!(e.parent, Some(run.seq), "{} on thread {}", e.name, e.thread);
            assert!(run.seq < e.seq, "parents reserve seqs before children");
        }
        for e in events.iter().filter(|e| e.name == "task_seen") {
            assert_eq!(e.parent, Some(run.seq));
        }
    }

    #[test]
    fn workers_inherit_the_callers_request_context() {
        let sink = std::sync::Arc::new(jp_obs::MemorySink::new());
        let _guard = jp_obs::ScopedSink::install(sink.clone());
        let _req = jp_obs::with_request(Some(512));
        let out = run_tasks(3, (0u64..6).collect(), |_, x| {
            jp_obs::counter("par", "task_req", x);
            x
        });
        assert_eq!(out.len(), 6);
        let events = sink.events();
        for e in events.iter().filter(|e| e.name == "task_req") {
            assert_eq!(e.request, Some(512), "thread {}", e.thread);
        }
        let run = events.iter().find(|e| e.name == "run").expect("par.run");
        assert_eq!(run.request, Some(512));
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_tasks(2, vec![0u32, 1], |_, x| {
                assert_ne!(x, 1, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
