//! `jp` — command-line interface for the join-predicates reproduction.
//!
//! ```text
//! jp generate spider 8 --out g.json      # graph families as JSON
//! jp info g.json                         # m, β₀, bounds, classification
//! jp pebble g.json --algo exact          # pebble with any solver
//! jp realize g.json --as containment     # Lemma 3.3 / 3.4 instances
//! jp join --workload zipf --n 1000       # run join algorithms
//! ```
//!
//! Run `jp help` for the full reference.

use jp_cli::{run, CliError};

/// Attribute every allocation to the innermost pulse memory scope so
/// `--pulse` snapshots carry `mem.*` samples. Compiled out (and the
/// binary falls back to the system allocator untouched) when the
/// `alloc-track` feature is disabled.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: jp_pulse::TrackingAlloc = jp_pulse::TrackingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdout()) {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", jp_cli::USAGE);
            std::process::exit(2);
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
