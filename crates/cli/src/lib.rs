//! Implementation of the `jp` command-line tool.
//!
//! Kept as a library so the command dispatch and argument parsing are
//! unit-testable; [`run`] writes to any `Write` sink.

mod args;
mod commands;

pub use args::{CliError, ParsedArgs};

/// Top-level usage text.
pub const USAGE: &str = "\
jp — the join-predicates pebbling toolbox (PODS 2001 reproduction)

USAGE:
  jp generate <family> [params…] [--out FILE]   create a join graph
  jp info <graph.json>                          stats, bounds, classification
  jp pebble <graph.json> [--algo A] [--out F] [--steps true]
                                                pebble a join graph
  jp realize <graph.json> --as KIND             build a join instance for it
  jp join --workload W [opts]                   run join algorithms
  jp replay <scheme.json> <graph.json>          validate a stored scheme
  jp fragment <graph.json> [--p P] [--q Q]      §5 fragment-mapping plan
  jp buffers <graph.json> [--b B]               B-buffer fetch schedule
  jp help                                       this text

FAMILIES (jp generate):
  complete-bipartite K L      equijoin component K_{K,L} (Lemma 3.2)
  matching M                  M disjoint edges (Lemma 2.4)
  path M | cycle K | star N   classic traceable families
  spider N                    the Figure 1 worst-case family G_N (Thm 3.3)
  random K L P SEED           Erdős–Rényi bipartite G(K,L,P)
  random-connected K L M SEED connected with exactly M edges

ALGORITHMS (jp pebble --algo):
  auto       equijoin pebbler when applicable, else dfs (default)
  equijoin   Theorem 4.1 linear-time perfect pebbler (equijoin graphs only)
  dfs        Theorem 3.1 construction, guaranteed ≤ 1.25m
  euler      linear-time Euler-trail pebbler
  cover      greedy path cover
  nn         nearest neighbour
  exact      Held–Karp optimum (components ≤ 20 edges)
  bb         branch-and-bound optimum (budgeted)
  all        run every applicable solver and compare

REALIZATIONS (jp realize --as):
  containment   Lemma 3.3: r_i = {i}, s_j = {neighbours of j}
  spatial       comb-shaped rectilinear regions (universal)
  equijoin      only for unions of complete bipartite graphs

WORKLOADS (jp join --workload):
  zipf    equijoin on Zipf keys    [--n N] [--keys K] [--theta T] [--seed S]
  sets    set containment          [--n N] [--universe U] [--planted P] [--seed S]
  rects   spatial overlap          [--n N] [--extent E] [--side L] [--seed S]
";

/// Runs the CLI with the given arguments, writing reports to `out`.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    match cmd.as_str() {
        "generate" => commands::generate(rest, out),
        "info" => commands::info(rest, out),
        "pebble" => commands::pebble(rest, out),
        "realize" => commands::realize(rest, out),
        "join" => commands::join(rest, out),
        "replay" => commands::replay(rest, out),
        "fragment" => commands::fragment(rest, out),
        "buffers" => commands::buffers(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(CliError::io)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("jp generate"));
    }

    #[test]
    fn no_command_is_usage_error() {
        assert!(matches!(run_str(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        assert!(matches!(run_str(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn generate_info_pebble_pipeline() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        let p = path.to_str().unwrap();

        let out = run_str(&["generate", "spider", "6", "--out", p]).unwrap();
        assert!(out.contains("m = 12"));

        let out = run_str(&["info", p]).unwrap();
        assert!(out.contains("β₀ = 1"));
        assert!(out.contains("equijoin-realizable: no"));

        let out = run_str(&["pebble", p, "--algo", "exact"]).unwrap();
        assert!(out.contains("π = 14"), "G_6 optimum is 14, got:\n{out}");

        let out = run_str(&["pebble", p, "--algo", "dfs"]).unwrap();
        assert!(out.contains("jumps"));

        let out = run_str(&["pebble", p, "--algo", "all"]).unwrap();
        assert!(out.contains("exact"));
        assert!(out.contains("euler-trails"));

        let out = run_str(&["realize", p, "--as", "containment"]).unwrap();
        assert!(out.contains("round-trip: ok"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pebble_equijoin_on_wrong_graph_is_runtime_error() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        let p = path.to_str().unwrap();
        run_str(&["generate", "spider", "3", "--out", p]).unwrap();
        let err = run_str(&["pebble", p, "--algo", "equijoin"]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_and_fragment_commands() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gp = dir.join("g.json");
        let sp = dir.join("s.json");
        run_str(&["generate", "spider", "5", "--out", gp.to_str().unwrap()]).unwrap();
        run_str(&[
            "pebble",
            gp.to_str().unwrap(),
            "--algo",
            "euler",
            "--out",
            sp.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&["replay", sp.to_str().unwrap(), gp.to_str().unwrap()]).unwrap();
        assert!(out.contains("scheme is valid"));
        let out = run_str(&["fragment", gp.to_str().unwrap(), "--p", "2", "--q", "2"]).unwrap();
        assert!(out.contains("sub-joins scheduled"));
        let out = run_str(&["buffers", gp.to_str().unwrap(), "--b", "3"]).unwrap();
        assert!(out.contains("loads"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn join_workloads_run() {
        let out = run_str(&["join", "--workload", "zipf", "--n", "200"]).unwrap();
        assert!(out.contains("hash_join"));
        let out = run_str(&["join", "--workload", "sets", "--n", "80"]).unwrap();
        assert!(out.contains("inverted_index"));
        let out = run_str(&["join", "--workload", "rects", "--n", "150"]).unwrap();
        assert!(out.contains("rtree"));
    }
}
