#![forbid(unsafe_code)]
//! Implementation of the `jp` command-line tool.
//!
//! Kept as a library so the command dispatch and argument parsing are
//! unit-testable; [`run`] writes to any `Write` sink.

mod args;
mod commands;

pub use args::{CliError, ParsedArgs};

/// Top-level usage text.
pub const USAGE: &str = "\
jp — the join-predicates pebbling toolbox (PODS 2001 reproduction)

USAGE:
  jp generate <family> [params…] [--out FILE]   create a join graph
  jp info <graph.json>                          stats, bounds, classification
  jp pebble <graph.json> [--algo A] [--threads N] [--memo true]
            [--memo-file F] [--out F] [--steps true]
                                                pebble a join graph
  jp realize <graph.json> --as KIND             build a join instance for it
  jp join --workload W [opts]                   run join algorithms
  jp replay <scheme.json> <graph.json>          validate a stored scheme
  jp fragment <graph.json> [--p P] [--q Q]      §5 fragment-mapping plan
  jp buffers <graph.json> [--b B]               B-buffer fetch schedule
  jp explain <triangle|clique4|bowtie> [--n N] [--deg D] [--seed S]
           [--algo lftj|generic|cascade] [--skewed true] [--threads N]
           [--json true] [--out F]              the worst-case-optimal plan
                                                (variable order, trie key
                                                orders, AGM bound) annotated
                                                with observed run counters
  jp trace summary <trace.jsonl>                aggregate a recorded trace
  jp trace flame <trace.jsonl> [--out F] [--request ID]
                                                folded stacks for flamegraphs
                                                (optionally one request only)
  jp trace diff <a.jsonl> <b.jsonl>             compare two recorded runs
  jp trace check <trace.jsonl> --baseline BENCH.json
           --family F --solver S [--threads N]  gate against a baseline
  jp trace request <id|all> <trace.jsonl> [--json true] [--min-complete PCT]
                                                one request's cross-thread
                                                critical path + blame breakdown
                                                (`all`: table + completeness
                                                gate for CI)
  jp pulse top <pulse.jsonl> [--watch N] [--every-ms M]
                                                render the latest live-metrics
                                                snapshot (N refreshes when
                                                watching, default 500 ms apart)
  jp pulse export <pulse.jsonl> [--out F]       Prometheus-style text exposition
  jp serve [--addr A] [--threads N] [--memo-file F]
           [--max-pending N] [--max-edges N] [--budget NODES]
           [--max-requests N] [--slow-us µS] [--xray-file F] [--xray-ring N]
                                                long-lived planning service over
                                                a warm memo store; --xray-file
                                                tail-samples slow/errored
                                                requests (see SERVING)
  jp loadgen [--addr A] [--clients N] [--requests N] [--theta T]
           [--seed S] [--pool K] [--verify false] [--shutdown true]
           [--out F]                            drive a server with a Zipf-skewed
                                                query mix, verifying every answer
  jp help                                       this text

GLOBAL OPTIONS (any command):
  --trace FILE   append instrumentation events (counters, span timings)
                 as JSON Lines to FILE
  --stats        print an aggregated counter/span summary (with exact
                 p50/p95/p99/max span percentiles) after the command finishes
  --pulse        sample live metrics (counters, gauges, histograms, memory
                 scopes) into pulse.jsonl while the command runs
  --pulse-file FILE        write the pulse samples to FILE instead
  --pulse-interval MS      sampler period in milliseconds (default 25)

FAMILIES (jp generate):
  complete-bipartite K L      equijoin component K_{K,L} (Lemma 3.2)
  matching M                  M disjoint edges (Lemma 2.4)
  path M | cycle K | star N   classic traceable families
  spider N                    the Figure 1 worst-case family G_N (Thm 3.3)
  random K L P SEED           Erdős–Rényi bipartite G(K,L,P)
  random-connected K L M SEED connected with exactly M edges

ALGORITHMS (jp pebble --algo):
  auto       equijoin pebbler when applicable, else dfs (default)
  equijoin   Theorem 4.1 linear-time perfect pebbler (equijoin graphs only)
  dfs        Theorem 3.1 construction, guaranteed ≤ 1.25m
  euler      linear-time Euler-trail pebbler
  cover      greedy path cover
  nn         nearest neighbour
  exact      Held–Karp optimum (components ≤ 20 edges)
  bb         branch-and-bound optimum (budgeted, [--budget NODES])
  portfolio  race the whole ladder on a work-stealing runtime
  all        run every applicable solver and compare

  --threads N  worker threads for portfolio and bb (default 1); the
               returned cost is identical for every thread count

MEMOIZATION (jp pebble / jp join):
  --memo true     cache solved components under their canonical form —
                  closed-form families (complete bipartite, matching,
                  path, even cycle, spider) are recognized outright, and
                  isomorphic repeats become validated hash lookups
                  (applies to --algo auto, exact and portfolio)
  --memo-file F   persist the cache as JSON Lines and reload it on the
                  next run (implies --memo true; corrupt lines are
                  skipped per entry, never fatal)

REALIZATIONS (jp realize --as):
  containment   Lemma 3.3: r_i = {i}, s_j = {neighbours of j}
  spatial       comb-shaped rectilinear regions (universal)
  equijoin      only for unions of complete bipartite graphs

WORKLOADS (jp join --workload):
  zipf    equijoin on Zipf keys    [--n N] [--keys K] [--theta T] [--seed S]
  sets    set containment          [--n N] [--universe U] [--planted P] [--seed S]
  rects   spatial overlap          [--n N] [--extent E] [--side L] [--seed S]

  triangle | clique4 | bowtie      worst-case-optimal multiway joins over
          trie indexes             [--n N] [--deg D] [--seed S] [--threads N]
  --algo lftj|generic|cascade|all  Leapfrog Triejoin, generic join, the
                  binary nested-loops cascade baseline, or all three
                  (default all); output rows are checked against the AGM
                  fractional-cover bound on every run
  --skewed true   (triangle only) the adversarial star instance: the
                  cascade materializes a quadratic intermediate result,
                  the worst-case-optimal engines stay linear

  --pebble true   also build the workload's join graph and schedule it
                  with the pebbling solver (honours --memo, --memo-file
                  and --threads); conjunctive queries pebble the disjoint
                  union of their pairwise shared-variable equijoin graphs

SERVING (jp serve / jp loadgen):
  jp serve answers length-prefixed JSON frames over TCP from a shared
  warm memo store, scheduling solver batches on the jp-par runtime.
  Admission control rejects with a named reason instead of queueing
  without bound: --max-edges caps graph size, --max-pending caps
  admitted-but-unanswered jobs, --budget bounds branch-and-bound
  requests. A Shutdown request (jp loadgen --shutdown true) drains
  in-flight work, then the memo is checkpointed atomically to
  --memo-file. jp loadgen replays a deterministic Zipf mix (--pool
  shapes, skew --theta, base --seed) from --clients concurrent
  connections, --requests each, checking every cost against the
  sequential solver unless --verify false.

  Every frame carries a client-minted tracing id, stamped into each
  jp-obs event the request causes across threads. With --xray-file the
  server tail-samples: requests slower than --slow-us (or errored)
  keep every span, the rest shrink to their root span, bounded by the
  --xray-ring buffer. jp trace request <id> rebuilds one request's
  critical path and blames queue/solve/memo/wcoj/wire; the loadgen's
  --out JSON records the ids of the slowest-p99 and mismatched
  requests to feed it.
";

/// The global options every subcommand accepts, stripped out of the
/// argument list before subcommand parsing sees them.
struct GlobalOpts {
    rest: Vec<String>,
    trace: Option<String>,
    stats: bool,
    /// Pulse file to sample live metrics into, when `--pulse` (default
    /// `pulse.jsonl`) or `--pulse-file FILE` was given.
    pulse: Option<String>,
    /// Sampler period in milliseconds (`--pulse-interval`, default 25).
    pulse_interval_ms: u64,
}

/// Strips the global observability options (`--trace FILE`, `--stats`,
/// `--pulse`, `--pulse-file FILE`, `--pulse-interval MS`) out of `args`
/// before subcommand parsing sees them. `--stats` and `--pulse` are the
/// only value-less options in the CLI, so they are handled here rather
/// than in [`ParsedArgs`].
fn split_global_opts(args: &[String]) -> Result<GlobalOpts, CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut trace = None;
    let mut stats = false;
    let mut pulse: Option<String> = None;
    let mut pulse_interval_ms = 25u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                let Some(path) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
                    return Err(CliError::Usage("option --trace needs a file path".into()));
                };
                if trace.replace(path.clone()).is_some() {
                    return Err(CliError::Usage("option --trace given twice".into()));
                }
                i += 2;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            "--pulse" => {
                // value-less: the pulse file defaults to pulse.jsonl so
                // `jp pebble g.json --pulse` can't eat a positional arg
                pulse.get_or_insert_with(|| "pulse.jsonl".to_string());
                i += 1;
            }
            "--pulse-file" => {
                let Some(path) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
                    return Err(CliError::Usage(
                        "option --pulse-file needs a file path".into(),
                    ));
                };
                pulse = Some(path.clone());
                i += 2;
            }
            "--pulse-interval" => {
                let parsed = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
                let Some(ms) = parsed else {
                    return Err(CliError::Usage(
                        "option --pulse-interval needs a millisecond count".into(),
                    ));
                };
                pulse_interval_ms = ms;
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    Ok(GlobalOpts {
        rest,
        trace,
        stats,
        pulse,
        pulse_interval_ms,
    })
}

/// Runs the CLI with the given arguments, writing reports to `out`.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let GlobalOpts {
        rest: args,
        trace,
        stats,
        pulse,
        pulse_interval_ms,
    } = split_global_opts(args)?;
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("no command given".into()));
    };

    // The pulse sampler runs for the duration of the command and stops
    // (writing one final snapshot) before the report below, so the last
    // snapshot always carries the run's final counter values.
    let sampler = match &pulse {
        Some(path) => Some(
            jp_pulse::Sampler::start(
                std::path::Path::new(path),
                std::time::Duration::from_millis(pulse_interval_ms),
            )
            .map_err(|e| CliError::Runtime(format!("opening pulse file {path}: {e}")))?,
        ),
        None => None,
    };

    // Install the requested sinks for the duration of the command. The
    // scoped guard serializes concurrent `run` calls that both request
    // instrumentation (the sink registry is process-wide); runs with
    // neither option never touch it.
    let stats_sink = stats.then(|| std::sync::Arc::new(jp_obs::StatsSink::new()));
    let _scope = if trace.is_some() || stats {
        let mut sinks: Vec<std::sync::Arc<dyn jp_obs::Sink>> = Vec::new();
        if let Some(path) = &trace {
            let jsonl = jp_obs::JsonlSink::to_file(path)
                .map_err(|e| CliError::Runtime(format!("opening trace file {path}: {e}")))?;
            sinks.push(std::sync::Arc::new(jsonl));
        }
        if let Some(s) = &stats_sink {
            sinks.push(s.clone());
        }
        let sink: std::sync::Arc<dyn jp_obs::Sink> = if sinks.len() == 1 {
            sinks.pop().expect("one sink")
        } else {
            std::sync::Arc::new(jp_obs::FanoutSink::new(sinks))
        };
        Some(jp_obs::ScopedSink::install(sink))
    } else {
        None
    };

    let result = match cmd.as_str() {
        "generate" => commands::generate(rest, out),
        "info" => commands::info(rest, out),
        "pebble" => commands::pebble(rest, out),
        "realize" => commands::realize(rest, out),
        "join" => commands::join(rest, out),
        "replay" => commands::replay(rest, out),
        "fragment" => commands::fragment(rest, out),
        "buffers" => commands::buffers(rest, out),
        "trace" => commands::trace(rest, out),
        "explain" => commands::explain(rest, out),
        "pulse" => commands::pulse(rest, out),
        "serve" => commands::serve(rest, out),
        "loadgen" => commands::loadgen(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(CliError::io)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };

    drop(_scope); // flush the trace file before reporting
    if let Some(sampler) = sampler {
        let report = sampler.stop();
        if result.is_ok() {
            if let Some(path) = &pulse {
                writeln!(
                    out,
                    "pulse: {} snapshot(s) written to {path}",
                    report.snapshots
                )
                .map_err(CliError::io)?;
                if report.write_errors > 0 {
                    writeln!(
                        out,
                        "pulse: WARNING — {} snapshot write error(s); {path} is missing data",
                        report.write_errors
                    )
                    .map_err(CliError::io)?;
                }
            }
        }
    }
    if result.is_ok() {
        if let Some(s) = &stats_sink {
            write!(
                out,
                "\n== observability summary ==\n{}",
                s.snapshot().render()
            )
            .map_err(CliError::io)?;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("jp generate"));
    }

    #[test]
    fn no_command_is_usage_error() {
        assert!(matches!(run_str(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        assert!(matches!(run_str(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn generate_info_pebble_pipeline() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        let p = path.to_str().unwrap();

        let out = run_str(&["generate", "spider", "6", "--out", p]).unwrap();
        assert!(out.contains("m = 12"));

        let out = run_str(&["info", p]).unwrap();
        assert!(out.contains("β₀ = 1"));
        assert!(out.contains("equijoin-realizable: no"));

        let out = run_str(&["pebble", p, "--algo", "exact"]).unwrap();
        assert!(out.contains("π = 14"), "G_6 optimum is 14, got:\n{out}");

        let out = run_str(&["pebble", p, "--algo", "dfs"]).unwrap();
        assert!(out.contains("jumps"));

        let out = run_str(&["pebble", p, "--algo", "all"]).unwrap();
        assert!(out.contains("exact"));
        assert!(out.contains("euler-trails"));

        let out = run_str(&["realize", p, "--as", "containment"]).unwrap();
        assert!(out.contains("round-trip: ok"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pebble_equijoin_on_wrong_graph_is_runtime_error() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        let p = path.to_str().unwrap();
        run_str(&["generate", "spider", "3", "--out", p]).unwrap();
        let err = run_str(&["pebble", p, "--algo", "equijoin"]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_and_fragment_commands() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gp = dir.join("g.json");
        let sp = dir.join("s.json");
        run_str(&["generate", "spider", "5", "--out", gp.to_str().unwrap()]).unwrap();
        run_str(&[
            "pebble",
            gp.to_str().unwrap(),
            "--algo",
            "euler",
            "--out",
            sp.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&["replay", sp.to_str().unwrap(), gp.to_str().unwrap()]).unwrap();
        assert!(out.contains("scheme is valid"));
        let out = run_str(&["fragment", gp.to_str().unwrap(), "--p", "2", "--q", "2"]).unwrap();
        assert!(out.contains("sub-joins scheduled"));
        // a zero-sized grid is a classified usage error, not a panic
        for (p, q) in [("0", "2"), ("2", "0"), ("0", "0")] {
            let err = run_str(&["fragment", gp.to_str().unwrap(), "--p", p, "--q", q]).unwrap_err();
            match err {
                CliError::Usage(m) => assert!(m.contains("at least 1"), "{m}"),
                other => panic!("--p {p} --q {q}: expected Usage error, got {other:?}"),
            }
        }
        let out = run_str(&["buffers", gp.to_str().unwrap(), "--b", "3"]).unwrap();
        assert!(out.contains("loads"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_loadgen_round_trip() {
        // grab a free loopback port, then hand it to `jp serve`
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        let serve_addr = addr.clone();
        let server = std::thread::spawn(move || run_str(&["serve", "--addr", &serve_addr]));
        // wait for the listener to come up
        let mut up = false;
        for _ in 0..200 {
            if std::net::TcpStream::connect(addr.as_str()).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(up, "server never started listening on {addr}");
        let out = run_str(&[
            "loadgen",
            "--addr",
            &addr,
            "--clients",
            "3",
            "--requests",
            "5",
            "--shutdown",
            "true",
        ])
        .unwrap();
        assert!(out.contains("15 sent, 15 ok"), "{out}");
        assert!(out.contains("0 mismatch(es)"), "{out}");
        assert!(out.contains("latency p50"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("drained cleanly"), "{served}");
        assert!(served.contains("15 completed"), "{served}");
    }

    #[test]
    fn explain_annotates_the_plan_with_observed_counters() {
        let out = run_str(&[
            "explain", "triangle", "--n", "120", "--deg", "4", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("variable order:"), "{out}");
        assert!(out.contains("AGM bound"), "{out}");
        assert!(out.contains("trie key order"), "{out}");
        assert!(out.contains("intersect"), "{out}");
        assert!(out.contains("— match"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");

        // the skewed star instance and the other query shapes all render
        let out = run_str(&["explain", "triangle", "--n", "96", "--skewed", "true"]).unwrap();
        assert!(out.contains("(skewed)"), "{out}");
        for (wl, algo) in [("clique4", "generic"), ("bowtie", "cascade")] {
            let out = run_str(&["explain", wl, "--n", "80", "--algo", algo]).unwrap();
            assert!(out.contains("— match"), "{wl}/{algo}: {out}");
        }

        // JSON mode carries the counter-match verdict and the plan
        let dir = std::env::temp_dir().join(format!("jp-cli-explain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = dir.join("explain.json");
        let out = run_str(&[
            "explain",
            "bowtie",
            "--n",
            "60",
            "--json",
            "true",
            "--out",
            j.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("written to"), "{out}");
        let text = std::fs::read_to_string(&j).unwrap();
        for needle in [
            "\"counters_match\": true",
            "\"variable_order\"",
            "\"agm_bound\"",
            "wcoj.seek",
            "wcoj.emit",
            "wcoj.intermediate",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        std::fs::remove_dir_all(&dir).ok();

        // misuse is classified
        let err = run_str(&["explain", "nonsense"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_str(&["explain", "clique4", "--skewed", "true"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn trace_request_reconstructs_a_traced_serve_run() {
        let dir = std::env::temp_dir().join(format!("jp-cli-xray-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("serve.jsonl");
        let xray = dir.join("xray.jsonl");
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        let serve_args: Vec<String> = [
            "serve",
            "--addr",
            &addr,
            "--slow-us",
            "0",
            "--xray-file",
            xray.to_str().unwrap(),
            "--xray-ring",
            "32",
            "--trace",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            run(&serve_args, &mut buf).map(|()| String::from_utf8(buf).unwrap())
        });
        let mut up = false;
        for _ in 0..200 {
            if std::net::TcpStream::connect(addr.as_str()).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(up, "server never started listening on {addr}");
        let out = run_str(&[
            "loadgen",
            "--addr",
            &addr,
            "--clients",
            "3",
            "--requests",
            "5",
            "--shutdown",
            "true",
        ])
        .unwrap();
        assert!(out.contains("slowest request id"), "{out}");
        // the loadgen names its slowest request's tracing id — the handle
        // `jp trace request` takes
        let id = out
            .lines()
            .find_map(|l| l.strip_prefix("loadgen: slowest request id "))
            .and_then(|r| r.split_whitespace().next())
            .expect("a slowest-request id in the loadgen output")
            .to_string();
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("serve: xray"), "{served}");
        assert!(served.contains("exemplar(s)"), "{served}");

        // The capture reconstructs this run's 15 requests. Other tests'
        // servers running concurrently in this process may bleed extra
        // requests into the process-wide scope, so assert on the floor
        // and on our own request, not on an exact total.
        // "N request(s), M complete (P%)" → (N, M)
        fn head_counts(report: &str) -> (u64, u64) {
            report
                .lines()
                .next()
                .and_then(|l| {
                    let mut nums = l
                        .split(|c: char| !c.is_ascii_digit())
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse::<u64>().unwrap());
                    Some((nums.next()?, nums.next()?))
                })
                .unwrap_or((0, 0))
        }
        let all = run_str(&["trace", "request", "all", trace.to_str().unwrap()]).unwrap();
        let (seen, complete) = head_counts(&all);
        assert!(seen >= 15, "expected ≥15 requests, got {seen}:\n{all}");
        assert!(
            complete >= 15,
            "expected ≥15 complete, got {complete}:\n{all}"
        );

        // our slowest request: blame breakdown + critical path, and a
        // flamegraph filtered to just that request
        let one = run_str(&["trace", "request", &id, trace.to_str().unwrap()]).unwrap();
        assert!(one.contains("COMPLETE"), "{one}");
        assert!(one.contains("serve.request"), "{one}");
        assert!(one.contains("blame"), "{one}");
        let folded =
            run_str(&["trace", "flame", trace.to_str().unwrap(), "--request", &id]).unwrap();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            assert!(line.starts_with("thread-"), "{line}");
        }

        // the tail-sampled xray file: at --slow-us 0 every finished
        // request is an exemplar — 15 pebble solves plus the stats and
        // shutdown frames — and each flushed request is self-contained
        // (outside parent links severed), so the 15 rooted ones
        // reconstruct COMPLETE from the sidecar alone
        let xout = run_str(&["trace", "request", "all", xray.to_str().unwrap()]).unwrap();
        let (xseen, xcomplete) = head_counts(&xout);
        assert!(
            xseen >= 15,
            "expected ≥15 xray requests, got {xseen}:\n{xout}"
        );
        assert!(
            xcomplete >= 15,
            "expected ≥15 complete xray requests, got {xcomplete}:\n{xout}"
        );

        // unknown ids and bad gates are classified
        let err = run_str(&["trace", "request", "0", trace.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
        let err = run_str(&["trace", "request", "bogus", trace.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_request_min_complete_gate_fails_on_orphaned_requests() {
        let dir = std::env::temp_dir().join(format!("jp-cli-xray2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        // request 5 is complete (a rooted serve.request span); request 6
        // is a wire span whose parent resolves nowhere in the capture
        let mut ok = jp_obs::Event::span("serve", "request", 300);
        ok.seq = 1;
        ok.request = Some(5);
        let mut orphaned = jp_obs::Event::span("serve", "wire", 10);
        orphaned.seq = 3;
        orphaned.request = Some(6);
        orphaned.parent = Some(99);
        let text = format!(
            "{}\n{}\n",
            serde_json::to_string(&ok).unwrap(),
            serde_json::to_string(&orphaned).unwrap()
        );
        std::fs::write(&path, text).unwrap();

        let out = run_str(&["trace", "request", "all", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("2 request(s), 1 complete (50%)"), "{out}");
        assert!(out.contains("INCOMPLETE"), "{out}");
        let err = run_str(&[
            "trace",
            "request",
            "all",
            path.to_str().unwrap(),
            "--min-complete",
            "95",
        ])
        .unwrap_err();
        match err {
            CliError::Runtime(m) => assert!(m.contains("50% of 2 request(s)"), "{m}"),
            other => panic!("expected Runtime error, got {other:?}"),
        }
        // at or below the observed rate the gate passes
        run_str(&[
            "trace",
            "request",
            "all",
            path.to_str().unwrap(),
            "--min-complete",
            "50",
        ])
        .unwrap();
        // the single-request view names the hole
        let one = run_str(&["trace", "request", "6", path.to_str().unwrap()]).unwrap();
        assert!(one.contains("INCOMPLETE"), "{one}");
        assert!(one.contains("orphaned"), "{one}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_zero_clients_is_a_usage_error() {
        for args in [
            &["loadgen", "--clients", "0"][..],
            &["loadgen", "--requests", "0"][..],
            &["serve", "--threads", "0"][..],
        ] {
            let err = run_str(args).unwrap_err();
            match err {
                CliError::Usage(m) => assert!(m.contains("at least 1"), "{m}"),
                other => panic!("{args:?}: expected Usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bb_budget_exhaustion_is_reported_cleanly() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.json");
        run_str(&["generate", "spider", "8", "--out", p.to_str().unwrap()]).unwrap();
        let err = run_str(&[
            "pebble",
            p.to_str().unwrap(),
            "--algo",
            "bb",
            "--budget",
            "1",
        ])
        .unwrap_err();
        match err {
            CliError::Runtime(m) => {
                assert!(m.contains("budget of 1 exhausted"), "{m}");
                assert!(m.contains("larger --budget"), "{m}");
            }
            other => panic!("expected Runtime error, got {other:?}"),
        }
        // a generous budget succeeds on the same graph
        let out = run_str(&[
            "pebble",
            p.to_str().unwrap(),
            "--algo",
            "bb",
            "--budget",
            "5000000",
        ])
        .unwrap();
        assert!(out.contains("π = 19"), "G_8 optimum is 19, got:\n{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pebble_portfolio_with_threads() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.json");
        run_str(&["generate", "spider", "6", "--out", p.to_str().unwrap()]).unwrap();
        // the portfolio returns the same (optimal) cost at any thread count
        for threads in ["1", "4"] {
            let out = run_str(&[
                "pebble",
                p.to_str().unwrap(),
                "--algo",
                "portfolio",
                "--threads",
                threads,
            ])
            .unwrap();
            assert!(out.contains("π = 14"), "threads {threads}, got:\n{out}");
        }
        // bb accepts the flag too
        let out = run_str(&[
            "pebble",
            p.to_str().unwrap(),
            "--algo",
            "bb",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("π = 14"), "{out}");
        let err = run_str(&[
            "pebble",
            p.to_str().unwrap(),
            "--algo",
            "portfolio",
            "--threads",
            "0",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_writes_jsonl_and_stats_prints_summary() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.json");
        let t = dir.join("t.jsonl");
        run_str(&["generate", "spider", "6", "--out", g.to_str().unwrap()]).unwrap();
        let out = run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "all",
            "--trace",
            t.to_str().unwrap(),
            "--stats",
        ])
        .unwrap();
        assert!(out.contains("exact"));
        assert!(out.contains("== observability summary =="), "{out}");

        // the --stats summary now carries exact span percentiles
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("p95"), "{out}");

        // Every line must round-trip as an Event; seqs are distinct (a
        // span reserves its seq when it opens, so emission order is not
        // seq order) and every parent link resolves to an earlier span.
        let text = std::fs::read_to_string(&t).unwrap();
        let mut spans = std::collections::HashMap::<String, usize>::new();
        let mut counters = std::collections::HashMap::<String, usize>::new();
        let mut seqs = std::collections::HashSet::new();
        for line in text.lines() {
            let ev: jp_obs::Event = serde_json::from_str(line).unwrap();
            assert!(seqs.insert(ev.seq), "seq {} repeated", ev.seq);
            if let Some(p) = ev.parent {
                assert!(p < ev.seq, "parent seq {} not before child {}", p, ev.seq);
            }
            match ev.kind {
                jp_obs::EventKind::Span => *spans.entry(ev.component).or_default() += 1,
                jp_obs::EventKind::Counter => *counters.entry(ev.component).or_default() += 1,
            }
        }
        // and the jp-lens reader consumes the file without a single skip
        let (events, report) = jp_trace::parse_trace(&text);
        assert_eq!(report.skipped(), 0, "{:?}", report.samples);
        let analysis = jp_trace::Analysis::from_events(&events);
        assert_eq!(analysis.orphans, 0, "orphaned parent links in trace");
        for component in [
            "exact",
            "bb",
            "approx.dfs_partition",
            "approx.euler_trails",
            "approx.path_cover",
            "approx.matching_cover",
            "approx.nn",
        ] {
            assert!(
                spans.get(component).copied().unwrap_or(0) >= 1,
                "expected a span from {component}; spans: {spans:?}"
            );
            assert!(
                counters.get(component).copied().unwrap_or(0) >= 3,
                "expected ≥3 counters from {component}; counters: {counters:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_subcommands_consume_a_recorded_portfolio_run() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test8-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.json");
        let t = dir.join("t.jsonl");
        let folded = dir.join("flame.folded");
        run_str(&["generate", "spider", "6", "--out", g.to_str().unwrap()]).unwrap();
        run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "portfolio",
            "--threads",
            "4",
            "--trace",
            t.to_str().unwrap(),
        ])
        .unwrap();

        let out = run_str(&["trace", "summary", t.to_str().unwrap()]).unwrap();
        assert!(out.contains("threads:"), "{out}");
        assert!(out.contains("orphaned parents 0"), "{out}");
        assert!(out.contains("p50"), "{out}");

        let out = run_str(&[
            "trace",
            "flame",
            t.to_str().unwrap(),
            "--out",
            folded.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("folded format"), "{out}");
        // every folded line is `frame(;frame)* value` with a thread root
        let text = std::fs::read_to_string(&folded).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert!(stack.starts_with("thread-"), "{line}");
            value.parse::<u64>().unwrap();
        }
        // a 4-thread portfolio run fans tasks out across worker threads
        let threads: std::collections::HashSet<&str> =
            text.lines().filter_map(|l| l.split(';').next()).collect();
        assert!(
            threads.len() > 1,
            "expected multi-thread stacks: {threads:?}"
        );

        // a trace diffed against itself has no hard findings
        let out = run_str(&["trace", "diff", t.to_str().unwrap(), t.to_str().unwrap()]).unwrap();
        assert!(out.contains("PASS"), "{out}");

        let err = run_str(&["trace", "nonsense"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_str(&["trace", "check", t.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_trace_is_usage_error() {
        let err = run_str(&["help", "--trace", "a", "--trace", "b"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_str(&["help", "--trace"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn pebble_memo_persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!("jp-cli-test7-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.json");
        let f = dir.join("memo.jsonl");
        let fp = f.to_str().unwrap();
        // a shape with no closed form, so the cache (not a recognizer)
        // must serve the repeat
        run_str(&[
            "generate",
            "random-connected",
            "4",
            "4",
            "9",
            "7",
            "--out",
            g.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "exact",
            "--memo-file",
            fp,
        ])
        .unwrap();
        assert!(out.contains("memo:"), "{out}");
        assert!(out.contains("written to"), "{out}");
        // second run reloads the file and reports the reuse
        let out = run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "exact",
            "--memo-file",
            fp,
        ])
        .unwrap();
        assert!(out.contains("loaded"), "{out}");
        // a memoized K_{5,5} sails past the Held–Karp wall (Lemma 3.2)
        run_str(&[
            "generate",
            "complete-bipartite",
            "5",
            "5",
            "--out",
            g.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_str(&["pebble", g.to_str().unwrap(), "--algo", "exact"]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
        let out = run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "exact",
            "--memo",
            "true",
        ])
        .unwrap();
        assert!(out.contains("π = 25"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn join_pebble_with_memo_reports_cache_stats() {
        let out = run_str(&[
            "join",
            "--workload",
            "zipf",
            "--n",
            "120",
            "--keys",
            "12",
            "--pebble",
            "true",
            "--memo",
            "true",
        ])
        .unwrap();
        assert!(out.contains("pebbling π ="), "{out}");
        assert!(out.contains("memo:"), "{out}");
    }

    #[test]
    fn join_workloads_run() {
        let out = run_str(&["join", "--workload", "zipf", "--n", "200"]).unwrap();
        assert!(out.contains("hash_join"));
        let out = run_str(&["join", "--workload", "sets", "--n", "80"]).unwrap();
        assert!(out.contains("inverted_index"));
        let out = run_str(&["join", "--workload", "rects", "--n", "150"]).unwrap();
        assert!(out.contains("rtree"));
    }

    /// Pulls `"memo: R recognized, H hits, M misses, I inserts, …"`
    /// apart into (recognized, hits, misses, inserts).
    fn memo_stats_line(out: &str) -> (u64, u64, u64, u64) {
        let line = out
            .lines()
            .find(|l| l.starts_with("memo:") && l.contains("recognized"))
            .unwrap_or_else(|| panic!("no memo stats line in:\n{out}"));
        let nums: Vec<u64> = line
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        (nums[0], nums[1], nums[2], nums[3])
    }

    #[test]
    fn pulse_snapshot_matches_final_memo_counters_and_top_renders_workers() {
        let dir = std::env::temp_dir().join(format!("jp-cli-pulse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.json");
        let pf = dir.join("pulse.jsonl");
        run_str(&["generate", "spider", "10", "--out", g.to_str().unwrap()]).unwrap();

        let out = run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "portfolio",
            "--threads",
            "4",
            "--memo",
            "true",
            "--pulse-file",
            pf.to_str().unwrap(),
            "--pulse-interval",
            "5",
        ])
        .unwrap();
        assert!(out.contains("snapshot(s) written to"), "{out}");
        let (recognized, hits, misses, inserts) = memo_stats_line(&out);

        // The pulse file parses with the damage-tolerant trace reader and
        // its final snapshot carries the run's final memo counters — the
        // live registry and the jp-obs/memo accounting must agree exactly.
        let (events, report) = jp_trace::read_trace(&pf).unwrap();
        assert_eq!(report.skipped(), 0, "pulse file has corrupt lines");
        let snaps = jp_trace::pulse_snapshots(&events);
        assert!(!snaps.is_empty(), "no snapshots in pulse file");
        let last = snaps.last().unwrap();
        let sample = |k: &str| last.samples.get(k).copied().unwrap_or(0);
        assert_eq!(sample("memo.recognized"), recognized);
        assert_eq!(sample("memo.hit"), hits);
        assert_eq!(sample("memo.miss"), misses);
        assert_eq!(sample("memo.insert"), inserts);
        assert!(
            recognized + hits + misses > 0,
            "run exercised no memo path at all:\n{out}"
        );
        // the par runtime published per-worker utilization gauges
        assert!(
            last.samples.keys().any(|k| k.starts_with("par.worker.")),
            "no worker gauges in final snapshot: {:?}",
            last.samples.keys().collect::<Vec<_>>()
        );

        // `pulse top` renders the worker gauges as bars…
        let top = run_str(&["pulse", "top", pf.to_str().unwrap()]).unwrap();
        assert!(top.contains("jp pulse · snapshot #"), "{top}");
        assert!(top.contains("worker "), "{top}");
        // …and `pulse export` writes Prometheus-style exposition.
        let ef = dir.join("pulse.prom");
        let out = run_str(&[
            "pulse",
            "export",
            pf.to_str().unwrap(),
            "--out",
            ef.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("exported to"), "{out}");
        let expo = std::fs::read_to_string(&ef).unwrap();
        assert!(expo.contains("# TYPE jp_par_workers gauge"), "{expo}");
        assert!(expo.contains("jp_memo_recognized"), "{expo}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_pulse_flag_defaults_to_pulse_jsonl_and_keeps_positionals() {
        // --pulse is value-less: the graph path after it must survive as
        // a positional argument, and samples land in ./pulse.jsonl.
        let dir = std::env::temp_dir().join(format!("jp-cli-pulse2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.json");
        run_str(&["generate", "path", "6", "--out", g.to_str().unwrap()]).unwrap();
        let opts = split_global_opts(&[
            "pebble".into(),
            "--pulse".into(),
            g.to_str().unwrap().to_string(),
        ])
        .unwrap();
        assert_eq!(opts.pulse.as_deref(), Some("pulse.jsonl"));
        assert_eq!(opts.rest.len(), 2, "positional after --pulse kept");
        assert_eq!(opts.pulse_interval_ms, 25, "default sampler period");
        std::fs::remove_dir_all(&dir).ok();

        let err = run_str(&["pebble", "--pulse-interval"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_str(&["pebble", "--pulse-file"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn pulse_subcommand_usage_and_missing_snapshots() {
        let err = run_str(&["pulse"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_str(&["pulse", "flop", "x.jsonl"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));

        // a trace with events but no pulse markers is a runtime error
        let dir = std::env::temp_dir().join(format!("jp-cli-pulse3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = dir.join("t.jsonl");
        let g = dir.join("g.json");
        run_str(&["generate", "path", "5", "--out", g.to_str().unwrap()]).unwrap();
        run_str(&[
            "pebble",
            g.to_str().unwrap(),
            "--algo",
            "dfs",
            "--trace",
            t.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_str(&["pulse", "top", t.to_str().unwrap()]).unwrap_err();
        match err {
            CliError::Runtime(m) => assert!(m.contains("no pulse snapshots"), "{m}"),
            other => panic!("expected Runtime error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_summary_on_empty_or_corrupt_file_is_classified_error() {
        let dir = std::env::temp_dir().join(format!("jp-cli-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // an empty file: runtime error naming the path and the zero counts
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        for cmd in ["summary", "flame"] {
            let err = run_str(&["trace", cmd, empty.to_str().unwrap()]).unwrap_err();
            match err {
                CliError::Runtime(m) => {
                    assert!(m.contains("is empty"), "trace {cmd}: {m}");
                    assert!(m.contains("0 lines"), "trace {cmd}: {m}");
                }
                other => panic!("trace {cmd}: expected Runtime error, got {other:?}"),
            }
        }

        // all-corrupt input: the classified skip counts and a line number
        let garbage = dir.join("garbage.jsonl");
        std::fs::write(&garbage, "not json\n{\"also\": \"not an event\"}\n").unwrap();
        let err = run_str(&["trace", "summary", garbage.to_str().unwrap()]).unwrap_err();
        match err {
            CliError::Runtime(m) => {
                assert!(m.contains("corrupt"), "{m}");
                assert!(m.contains("line 1"), "{m}");
            }
            other => panic!("expected Runtime error, got {other:?}"),
        }

        // `trace diff` is covered by the same loader on either side
        let err = run_str(&[
            "trace",
            "diff",
            empty.to_str().unwrap(),
            garbage.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));

        std::fs::remove_dir_all(&dir).ok();
    }
}
