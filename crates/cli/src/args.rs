//! Tiny dependency-free argument parsing: positionals plus `--flag value`
//! options.

use std::collections::HashMap;

/// CLI errors: usage problems (exit code 2) vs runtime failures (exit 1).
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; usage text should be shown.
    Usage(String),
    /// The command itself failed.
    Runtime(String),
}

impl CliError {
    /// Wraps an I/O error as a runtime failure.
    pub fn io(e: std::io::Error) -> Self {
        CliError::Runtime(e.to_string())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed arguments: positionals in order, `--key value` options by key.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

impl ParsedArgs {
    /// Splits `args` into positionals and `--key value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                // a following `--flag` token is the next option, not a
                // value (single-dash negatives like "-1" remain valid)
                let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
                let Some(value) = value else {
                    return Err(CliError::Usage(format!("option --{key} needs a value")));
                };
                if out.options.insert(key.to_string(), value.clone()).is_some() {
                    return Err(CliError::Usage(format!("option --{key} given twice")));
                }
                i += 2;
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Positional argument `idx`, required.
    pub fn pos(&self, idx: usize, what: &str) -> Result<&str, CliError> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }

    /// All positionals.
    pub fn positionals(&self) -> &[String] {
        &self.positional
    }

    /// Option value, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Option parsed to a type, with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} got unparsable value {v:?}"))),
        }
    }

    /// Positional parsed to a type.
    pub fn pos_parse<T: std::str::FromStr>(&self, idx: usize, what: &str) -> Result<T, CliError> {
        let raw = self.pos(idx, what)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("{what} got unparsable value {raw:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ParsedArgs {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn positionals_and_options_mix() {
        let p = parse(&["spider", "8", "--out", "g.json", "tail"]);
        assert_eq!(p.positionals(), &["spider", "8", "tail"]);
        assert_eq!(p.opt("out"), Some("g.json"));
        assert_eq!(p.opt("missing"), None);
    }

    #[test]
    fn typed_accessors() {
        let p = parse(&["7", "--n", "42"]);
        assert_eq!(p.pos_parse::<u32>(0, "n").unwrap(), 7);
        assert_eq!(p.opt_parse("n", 0usize).unwrap(), 42);
        assert_eq!(p.opt_parse("absent", 9usize).unwrap(), 9);
    }

    #[test]
    fn missing_option_value_is_usage_error() {
        let v = vec!["--out".to_string()];
        assert!(matches!(ParsedArgs::parse(&v), Err(CliError::Usage(_))));
    }

    #[test]
    fn unparsable_values_are_usage_errors() {
        let p = parse(&["abc", "--n", "xyz"]);
        assert!(matches!(
            p.pos_parse::<u32>(0, "k"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            p.opt_parse::<u32>("n", 0),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn adjacent_flags_are_not_swallowed_as_values() {
        let v: Vec<String> = ["--out", "--algo"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(ParsedArgs::parse(&v), Err(CliError::Usage(_))));
        // single-dash negatives still parse as values
        let p = parse(&["--b", "-1"]);
        assert_eq!(p.opt("b"), Some("-1"));
    }

    #[test]
    fn duplicate_option_is_usage_error() {
        // Silently keeping the last value hid typos like
        // `--seed 1 ... --seed 2`; a duplicate is now rejected.
        let v: Vec<String> = ["--seed", "1", "--seed", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match ParsedArgs::parse(&v) {
            Err(CliError::Usage(m)) => assert!(m.contains("--seed"), "{m}"),
            other => panic!("expected Usage error, got {other:?}"),
        }
    }

    #[test]
    fn missing_positional_is_usage_error() {
        let p = parse(&[]);
        assert!(matches!(p.pos(0, "family"), Err(CliError::Usage(_))));
    }
}
